//! Concurrency contract of the serving runtime (gdim-shard): reader
//! threads keep answering searches from published snapshots while a
//! background rebuild runs and while a writer mutates — the search
//! path never blocks on either (readers only ever touch an atomic
//! version check plus, on a version change, one pointer-clone lock).
//! Installs are atomic: every search answers against exactly one
//! snapshot.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use gdim::prelude::*;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn build(db: Vec<Graph>, shards: usize) -> ShardedIndex {
    ShardedIndex::build(
        db,
        ShardedOptions::new(shards).with_index(IndexOptions::default().with_dimensions(24)),
    )
}

/// Readers search continuously while a full background rebuild
/// (re-mine → re-select → re-split) runs; the rebuild installs
/// atomically, and every answer — before and after — is well-formed
/// and self-consistent. The searches overlap the rebuild by
/// construction: each reader loops until the rebuild task reports
/// finished, and only then does the main thread install it.
#[test]
fn readers_search_through_a_background_rebuild_without_blocking() {
    let db = chem(48, 7);
    let handle = ServingHandle::new(build(db.clone(), 4));
    let v0 = handle.version();
    let searches_during_rebuild = AtomicUsize::new(0);
    let rebuild_running = AtomicBool::new(true);

    let task = handle.snapshot().spawn_rebuild();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let reader = handle.reader();
            let db = &db;
            let (counter, running) = (&searches_during_rebuild, &rebuild_running);
            scope.spawn(move || {
                let mut i = 0usize;
                // At least one search always runs; then keep serving
                // until the rebuild ends.
                loop {
                    let q = &db[(i * 7) % db.len()];
                    let resp = reader.search(q, &SearchRequest::new(3)).unwrap();
                    assert_eq!(resp.hits[0].distance, 0.0, "self-query ranks first");
                    assert!(resp.hits.len() <= 3);
                    counter.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                    if !running.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
        // Wait out the rebuild on the main thread, then install. The
        // readers keep counting searches the whole time.
        while !task.is_finished() {
            std::thread::yield_now();
        }
        rebuild_running.store(false, Ordering::Relaxed);
        // `task` was spawned from the snapshot the handle currently
        // serves, and nothing mutated: install must succeed.
        assert!(handle.write(|idx| idx.install(task)).unwrap());
    });

    assert!(
        searches_during_rebuild.load(Ordering::Relaxed) >= 3,
        "every reader must have served at least once during the rebuild"
    );
    assert_eq!(handle.version(), v0 + 1, "one install, one publish");
    let rebuilt = handle.snapshot();
    assert!(rebuilt.epoch() >= 1);
    // The installed index equals a fresh sharded build over the same
    // graphs (full rebuilds re-run the identical global pipeline).
    let fresh = build(db.clone(), 4);
    for q in db.iter().take(3) {
        let req = SearchRequest::new(5);
        let a: Vec<(u64, f64)> = rebuilt
            .search(q, &req)
            .unwrap()
            .hits
            .iter()
            .map(|h| (rebuilt.seq_of(h.id).unwrap(), h.distance))
            .collect();
        let b: Vec<(u64, f64)> = fresh
            .search(q, &req)
            .unwrap()
            .hits
            .iter()
            .map(|h| (fresh.seq_of(h.id).unwrap(), h.distance))
            .collect();
        assert_eq!(a, b);
    }
}

/// A writer streams inserts (each a copy-on-write of one shard + a
/// publish) while readers search; every search answers against one
/// coherent snapshot, and the final snapshot holds every insert.
#[test]
fn concurrent_inserts_and_reads_stay_coherent() {
    let base = chem(20, 11);
    let extra = chem(10, 1234);
    let handle = ServingHandle::new(build(base.clone(), 2));
    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let reader = handle.reader();
            let base = &base;
            let (stop, served) = (&stop, &served);
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = reader.current();
                    let n_before = snapshot.live_len();
                    let resp = snapshot
                        .search(&base[i % base.len()], &SearchRequest::new(4))
                        .unwrap();
                    // One coherent snapshot: the answer reports
                    // exactly the rows that snapshot holds.
                    assert_eq!(resp.stats.live_graphs, n_before);
                    assert_eq!(resp.hits[0].distance, 0.0);
                    served.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for g in &extra {
            let gid = handle.insert(g.clone());
            // The published snapshot already contains the insert.
            assert_eq!(handle.snapshot().graph(gid).unwrap(), g);
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(served.load(Ordering::Relaxed) > 0);
    let finale = handle.snapshot();
    assert_eq!(finale.live_len(), base.len() + extra.len());
    // Readers that refreshed at the end see every inserted graph rank
    // itself first.
    let reader = handle.reader();
    for g in &extra {
        let resp = reader.search(g, &SearchRequest::new(1)).unwrap();
        assert_eq!(resp.hits[0].distance, 0.0);
    }
}

/// Reader snapshot caching: the steady state reuses the cached `Arc`
/// (no publish → same snapshot pointer); a publish moves every reader
/// to the new snapshot on its next search.
#[test]
fn readers_cache_snapshots_until_a_publish() {
    let handle = ServingHandle::new(build(chem(12, 13), 2));
    let reader = handle.reader();
    let a = reader.current();
    let b = reader.current();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "steady state reuses the cache"
    );
    let before = handle.version();
    handle.insert(chem(1, 99).remove(0));
    assert_eq!(handle.version(), before + 1);
    let c = reader.current();
    assert!(
        !std::sync::Arc::ptr_eq(&a, &c),
        "publish refreshes the reader"
    );
    assert_eq!(c.live_len(), a.live_len() + 1);
}

/// No-op and failed mutations publish nothing: readers are never
/// forced to refetch an identical snapshot, and `version()` counts
/// only effective publishes.
#[test]
fn noop_and_failed_mutations_do_not_publish() {
    let handle = ServingHandle::new(build(chem(8, 21), 2));
    let gid = handle.snapshot().id_for_seq(0).unwrap();
    assert!(handle.remove(gid).unwrap());
    let v = handle.version();
    assert!(!handle.remove(gid).unwrap(), "already tombstoned");
    assert!(handle.remove(GraphId(u32::MAX)).is_err());
    assert!(handle.rebuild_shard(ShardId(9)).is_err());
    assert_eq!(handle.version(), v, "no-ops and failures must not publish");
    // An effective mutation still publishes exactly once.
    handle.insert(chem(1, 5).remove(0));
    assert_eq!(handle.version(), v + 1);
}

/// Background **shard** rebuild through the handle: tombstone a few
/// rows of one shard, compact it off-thread, install — answers are
/// unchanged, the tombstones are gone, and other shards never moved.
#[test]
fn background_shard_rebuild_installs_through_the_handle() {
    let db = chem(16, 17);
    let handle = ServingHandle::new(build(db.clone(), 2));
    // Tombstone two rows of shard 0 (seqs 0..8 live there).
    for seq in [1u64, 3] {
        let gid = handle.snapshot().id_for_seq(seq).unwrap();
        assert!(handle.remove(gid).unwrap());
    }
    let snapshot = handle.snapshot();
    let q = db[10].clone();
    let before: Vec<(u64, f64)> = snapshot
        .search(&q, &SearchRequest::new(6))
        .unwrap()
        .hits
        .iter()
        .map(|h| (snapshot.seq_of(h.id).unwrap(), h.distance))
        .collect();

    let task = handle.spawn_shard_rebuild(ShardId(0)).unwrap();
    while !task.is_finished() {
        std::thread::yield_now();
    }
    assert!(handle.install_shard(task).unwrap());
    let after = handle.snapshot();
    assert_eq!(after.shard(ShardId(0)).unwrap().tombstone_count(), 0);
    assert_eq!(after.live_len(), db.len() - 2);
    let hits: Vec<(u64, f64)> = after
        .search(&q, &SearchRequest::new(6))
        .unwrap()
        .hits
        .iter()
        .map(|h| (after.seq_of(h.id).unwrap(), h.distance))
        .collect();
    assert_eq!(hits, before, "compaction must not change answers");
}

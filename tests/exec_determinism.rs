//! Cross-crate determinism contract of the shared exec runtime: every
//! parallel kernel must produce **byte-identical** results for any
//! thread budget. This is what lets callers tune `ExecConfig` freely
//! without re-validating outputs.

use gdim::core::dspm::dspm;
use gdim::prelude::*;

fn db(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

/// End-to-end: `GraphIndex::build → search` over DSPM is identical for
/// `threads = 1` and `threads = N`.
#[test]
fn index_build_and_search_identical_across_thread_budgets() {
    let build = |threads: usize| {
        GraphIndex::build(
            db(30, 11),
            IndexOptions::default()
                .with_dimensions(20)
                .with_strategy(SelectionStrategy::Dspm)
                .with_threads(threads),
        )
    };
    let serial = build(1);
    let reqs = [
        SearchRequest::new(10),
        SearchRequest::new(10).ranker(Ranker::Refined { candidates: 12 }),
        SearchRequest::new(10).ranker(Ranker::Exact),
    ];
    for threads in [2usize, 8] {
        let parallel = build(threads);
        assert_eq!(
            serial.dimensions(),
            parallel.dimensions(),
            "threads = {threads}"
        );
        assert_eq!(serial.weights(), parallel.weights(), "threads = {threads}");
        for qi in [0usize, 7, 19] {
            let q = serial.graph(qi).unwrap().clone();
            for req in &reqs {
                assert_eq!(
                    serial.search(&q, req).unwrap().hits,
                    parallel.search(&q, req).unwrap().hits,
                    "threads = {threads}, query {qi}, {:?}",
                    req.ranker
                );
            }
        }
    }
}

/// Same contract through the DSPMap path (SharedDelta sub-blocks).
#[test]
fn dspmap_index_identical_across_thread_budgets() {
    let build = |threads: usize| {
        GraphIndex::build(
            db(40, 13),
            IndexOptions::default()
                .with_dimensions(15)
                .with_strategy(SelectionStrategy::Dspmap { partition_size: 10 })
                .with_threads(threads),
        )
    };
    let serial = build(1);
    let parallel = build(8);
    assert_eq!(serial.dimensions(), parallel.dimensions());
    assert_eq!(serial.weights(), parallel.weights());
    let q = serial.graph(3).unwrap().clone();
    let req = SearchRequest::new(5);
    assert_eq!(
        serial.search(&q, &req).unwrap().hits,
        parallel.search(&q, &req).unwrap().hits
    );
    let batch = db(4, 99);
    let hits =
        |resps: Vec<gdim::core::search::SearchResponse>| -> Vec<Vec<gdim::core::search::Hit>> {
            resps.into_iter().map(|r| r.hits).collect()
        };
    assert_eq!(
        hits(serial.search_batch(&batch, &req).unwrap()),
        hits(parallel.search_batch(&batch, &req).unwrap())
    );
}

/// δ-matrix bytes are independent of the thread budget.
#[test]
fn delta_matrix_bytes_identical_across_thread_budgets() {
    let graphs = db(25, 17);
    let cfg = |threads: usize| DeltaConfig {
        exec: ExecConfig::new(threads),
        ..DeltaConfig::default()
    };
    let serial = DeltaMatrix::compute(&graphs, &cfg(1));
    for threads in [2usize, 8] {
        let parallel = DeltaMatrix::compute(&graphs, &cfg(threads));
        assert_eq!(
            serial.condensed(),
            parallel.condensed(),
            "threads = {threads}"
        );
    }
}

/// Exact ranking and DSPM weights are independent of the thread budget.
#[test]
fn exact_ranking_and_dspm_identical_across_thread_budgets() {
    let graphs = db(20, 19);
    let mcs = McsOptions::default();
    let serial = exact_ranking(
        &graphs,
        &graphs[2],
        Dissimilarity::AvgNorm,
        &mcs,
        &ExecConfig::serial(),
    );
    for threads in [2usize, 8] {
        let parallel = exact_ranking(
            &graphs,
            &graphs[2],
            Dissimilarity::AvgNorm,
            &mcs,
            &ExecConfig::new(threads),
        );
        assert_eq!(serial, parallel, "threads = {threads}");
    }

    let feats = mine(
        &graphs,
        &MinerConfig::new(Support::Relative(0.15)).with_max_edges(3),
    );
    let space = FeatureSpace::build(graphs.len(), feats);
    let delta = DeltaMatrix::compute(&graphs, &DeltaConfig::default());
    let run = |threads: usize| {
        dspm(
            &space,
            &delta,
            &DspmConfig {
                exec: ExecConfig::new(threads),
                ..DspmConfig::new(10)
            },
        )
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.weights, parallel.weights);
    assert_eq!(serial.selected, parallel.selected);
    assert_eq!(serial.objective_trace, parallel.objective_trace);
}

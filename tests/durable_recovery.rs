//! Durability contract of the serving stack (gdim-wal + gdim-shard):
//! **no acked mutation is ever lost, and recovery is bit-identical.**
//!
//! The headline harness is the crash-cut proptest: apply an arbitrary
//! mutation stream through a [`DurableHandle`] (fsync-per-record), cut
//! the write-ahead log at an arbitrary byte offset — simulating a
//! crash at any instant, including mid-frame — reopen, and assert the
//! recovered index answers **bit-identically** (hits and distances) to
//! an index built from exactly the mutation prefix whose log frames
//! survived the cut, across mappings, rankers, shard counts {1,2,8},
//! and thread budgets {1,2,8}. Torn tails surface as reports (and
//! damaged trusted prefixes as typed [`GdimError`]s), never panics.

use proptest::prelude::*;

use gdim::prelude::*;
use gdim::wal::{WalWriter, MAX_RECORD_BYTES};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const THREADS: [usize; 3] = [1, 2, 8];

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn opts() -> IndexOptions {
    IndexOptions::default().with_dimensions(12)
}

fn requests() -> Vec<SearchRequest> {
    vec![
        SearchRequest::new(5),
        SearchRequest::new(5).mapping(MappingKind::Weighted),
        SearchRequest::new(4).ranker(Ranker::Refined { candidates: 6 }),
        SearchRequest::new(3).ranker(Ranker::Exact),
    ]
}

fn tmp_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gdim-durable-{tag}-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One replayable mutation, as also applied to the reference index.
#[derive(Clone)]
enum Op {
    Ins(Graph),
    Rem(GraphId),
}

/// A deterministic mutation stream: inserts from `extra`, removes of
/// ids known live, steered by `seed` (no RNG — proptest shrinks the
/// seed instead).
fn mutation_stream(durable: &DurableHandle, extra: &[Graph], seed: u64) -> (Vec<Op>, Vec<u64>) {
    let mut live: Vec<GraphId> = Vec::new();
    let mut ops = Vec::new();
    let mut boundaries = Vec::new();
    let mut next_extra = 0usize;
    for i in 0..extra.len() + 3 {
        let pick = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64 * 7919);
        let remove = pick.is_multiple_of(3) && !live.is_empty();
        if remove {
            let id = live.remove((pick / 3) as usize % live.len());
            assert!(durable.remove(id).unwrap(), "removes target live rows");
            ops.push(Op::Rem(id));
        } else if next_extra < extra.len() {
            let g = extra[next_extra].clone();
            next_extra += 1;
            let id = durable.insert(g.clone()).unwrap();
            live.push(id);
            ops.push(Op::Ins(g));
        } else {
            break;
        }
        // Under SyncPolicy::Always this offset is on disk when the op
        // acks: the crash-cut contract is defined over these marks.
        boundaries.push(durable.wal_bytes());
    }
    (ops, boundaries)
}

/// Applies the first `n` ops of a stream to a plain index — the
/// "never crashed, applied exactly the acked prefix" reference.
fn apply_prefix(base: &ShardedIndex, ops: &[Op], n: usize) -> ShardedIndex {
    let mut idx = base.clone();
    for op in &ops[..n] {
        match op {
            Op::Ins(g) => {
                idx.insert(g.clone());
            }
            Op::Rem(id) => {
                idx.remove(*id).unwrap();
            }
        }
    }
    idx
}

fn hits(idx: &ShardedIndex, q: &Graph, req: &SearchRequest) -> Vec<(u32, u64)> {
    idx.search(q, req)
        .unwrap()
        .hits
        .iter()
        .map(|h| (h.id.get(), h.distance.to_bits()))
        .collect()
}

/// Bit-identity across every request, for several queries and thread
/// budgets.
fn assert_identical(got: &ShardedIndex, want: &ShardedIndex, queries: &[Graph], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    assert_eq!(got.live_len(), want.live_len(), "{ctx}: live count");
    for threads in THREADS {
        let mut got = got.clone();
        let mut want = want.clone();
        got.set_exec(ExecConfig::new(threads));
        want.set_exec(ExecConfig::new(threads));
        for q in queries {
            for req in requests() {
                assert_eq!(
                    hits(&got, q, &req),
                    hits(&want, q, &req),
                    "{ctx}: threads {threads}, {req:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// THE crash-cut theorem: for any mutation stream and any byte
    /// offset cut of the log, reopen recovers exactly the acked
    /// prefix, bit-identically, for every shard count.
    #[test]
    fn any_byte_cut_recovers_exactly_the_acked_prefix(seed in 0u64..500, frac in 0.0f64..=1.0) {
        let base_db = chem(10, seed);
        let extra = chem(5, !seed);
        let queries: Vec<Graph> = base_db.iter().take(2).chain(extra.iter().take(1)).cloned().collect();
        for shards in SHARD_COUNTS {
            let base = ShardedIndex::build(base_db.clone(), ShardedOptions::new(shards).with_index(opts()));
            let dir = tmp_dir("cut", seed.wrapping_add(shards as u64));
            let durable = DurableHandle::create(&dir, base.clone(), SyncPolicy::Always).unwrap();
            let (ops, boundaries) = mutation_stream(&durable, &extra, seed);
            let total = durable.wal_bytes();
            prop_assert_eq!(*boundaries.last().unwrap(), total);
            drop(durable);

            // The crash: the log survives only up to an arbitrary byte.
            let cut = (frac * total as f64) as u64;
            let wal_path = dir.join(gdim::shard::durable::wal_file(0));
            let bytes = std::fs::read(&wal_path).unwrap();
            std::fs::write(&wal_path, &bytes[..cut as usize]).unwrap();

            let (recovered, report) = DurableHandle::open(&dir, SyncPolicy::Always).unwrap();
            let acked = boundaries.iter().filter(|&&b| b <= cut).count();
            let trusted = if acked == 0 { 0 } else { boundaries[acked - 1] };
            prop_assert_eq!(report.wal_records, acked as u64, "shards {}", shards);
            prop_assert_eq!(report.wal_bytes_trusted, trusted);
            prop_assert_eq!(report.wal_bytes_total, cut);
            prop_assert_eq!(report.tail.is_some(), cut != trusted,
                "a defect iff the cut fell inside a frame: {:?}", report.tail);

            let want = apply_prefix(&base, &ops, acked);
            let got = recovered.serving().snapshot();
            assert_identical(&got, &want, &queries, &format!("shards {shards}, cut {cut}/{total}"));

            // Life goes on after recovery: the next acked mutation
            // lands on the truncated log and both sides still agree.
            let g = extra.last().unwrap().clone();
            let id_got = recovered.insert(g.clone()).unwrap();
            let mut want_more = want.clone();
            let id_want = want_more.insert(g);
            prop_assert_eq!(id_got, id_want, "replayed placement is deterministic");
            assert_identical(&recovered.serving().snapshot(), &want_more, &queries, "post-recovery insert");
            drop(recovered);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Checkpoints fold the log into a new generation: after a
    /// checkpoint + more mutations + reopen, the recovered index still
    /// equals the reference, the generation advanced, and only the
    /// records after the checkpoint replay.
    #[test]
    fn checkpoint_folds_the_log_and_recovery_continues_after_it(seed in 0u64..500) {
        let base_db = chem(10, seed);
        let extra = chem(6, !seed);
        let queries: Vec<Graph> = base_db.iter().take(2).cloned().collect();
        let base = ShardedIndex::build(base_db, ShardedOptions::new(2).with_index(opts()));
        let dir = tmp_dir("ckpt", seed);
        let durable = DurableHandle::create(&dir, base.clone(), SyncPolicy::Always).unwrap();

        let (ops_a, _) = mutation_stream(&durable, &extra[..3], seed);
        prop_assert_eq!(durable.checkpoint().unwrap(), 1);
        prop_assert_eq!(durable.wal_records(), 0, "the fold truncates the log");
        let (ops_b, _) = mutation_stream(&durable, &extra[3..], seed ^ 1);
        let after_ckpt = ops_b.len() as u64;
        drop(durable);

        // The old generation and log are gone; the new ones exist.
        prop_assert!(!dir.join(gdim::shard::durable::generation_dir(0)).exists());
        prop_assert!(!dir.join(gdim::shard::durable::wal_file(0)).exists());
        prop_assert!(dir.join(gdim::shard::durable::generation_dir(1)).exists());

        let (recovered, report) = DurableHandle::open(&dir, SyncPolicy::Always).unwrap();
        prop_assert_eq!(report.generation, 1);
        prop_assert_eq!(report.wal_records, after_ckpt);
        prop_assert!(report.tail.is_none());

        let mut want = apply_prefix(&base, &ops_a, ops_a.len());
        want = apply_prefix(&want, &ops_b, ops_b.len());
        assert_identical(&recovered.serving().snapshot(), &want, &queries, "post-checkpoint reopen");
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn damaged_stores_surface_typed_errors_never_panics() {
    let base = ShardedIndex::build(chem(8, 21), ShardedOptions::new(2).with_index(opts()));
    let dir = tmp_dir("damage", 21);
    let durable = DurableHandle::create(&dir, base, SyncPolicy::Always).unwrap();
    durable.insert(chem(1, 3).remove(0)).unwrap();
    drop(durable);

    // A CRC-valid frame whose payload is not a mutation record: the
    // trusted prefix itself is damaged → TornLog.
    {
        let wal = dir.join(gdim::shard::durable::wal_file(0));
        let report = gdim::wal::WalReader::scan(&std::fs::read(&wal).unwrap());
        let mut w = gdim::wal::WalWriter::open_trusted(
            &wal,
            report.trusted_bytes,
            report.records,
            SyncPolicy::Always,
        )
        .unwrap();
        w.append(&[9, 1, 2, 3]).unwrap(); // unknown record tag 9
        drop(w);
        match DurableHandle::open(&dir, SyncPolicy::Always) {
            Err(GdimError::TornLog { detail, .. }) => {
                assert!(detail.contains("undecodable"), "{detail}")
            }
            other => panic!("expected TornLog, got {other:?}"),
        }
        assert!(matches!(
            DurableHandle::verify(&dir),
            Err(GdimError::TornLog { .. })
        ));
        // Scrub the bad record again so the next stages start clean.
        let mut w = gdim::wal::WalWriter::open_trusted(
            &wal,
            report.trusted_bytes,
            report.records,
            SyncPolicy::Always,
        )
        .unwrap();
        w.sync().unwrap();
    }

    // A truncated shard snapshot file → CorruptCheckpoint naming the
    // generation.
    {
        let shard_file = dir
            .join(gdim::shard::durable::generation_dir(0))
            .join("shard-0000.idx");
        let bytes = std::fs::read(&shard_file).unwrap();
        std::fs::write(&shard_file, &bytes[..bytes.len() / 2]).unwrap();
        match DurableHandle::open(&dir, SyncPolicy::Always) {
            Err(GdimError::CorruptCheckpoint { generation: 0, .. }) => {}
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
        std::fs::write(&shard_file, &bytes).unwrap(); // restore
        DurableHandle::open(&dir, SyncPolicy::Always).expect("restored store opens");
    }

    // Garbage in CURRENT → CorruptCheckpoint, not a parse panic.
    {
        std::fs::write(dir.join("CURRENT"), b"not-a-number\n").unwrap();
        assert!(matches!(
            DurableHandle::open(&dir, SyncPolicy::Always),
            Err(GdimError::CorruptCheckpoint { .. })
        ));
    }

    // A directory that was never a durable store → Io(NotFound), the
    // signal `gdim serve --durable` uses to seed a fresh one.
    let empty = tmp_dir("empty", 21);
    std::fs::create_dir_all(&empty).unwrap();
    match DurableHandle::open(&empty, SyncPolicy::Always) {
        Err(GdimError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

/// Satellite: readers keep searching — lock-free, bit-identically —
/// while a checkpoint folds the log in the background. The checkpoint
/// holds the durable (writer) lock, never the read path; no mutation
/// lands during the fold, so every answer during it must equal the
/// answer before and after it.
#[test]
fn readers_stay_lock_free_and_bit_identical_during_a_background_checkpoint() {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let base_db = chem(24, 31);
    let base = ShardedIndex::build(base_db.clone(), ShardedOptions::new(2).with_index(opts()));
    let dir = tmp_dir("bg-ckpt", 31);
    let durable = DurableHandle::create(&dir, base, SyncPolicy::Always).unwrap();
    for g in chem(3, !31) {
        durable.insert(g).unwrap();
    }

    let req = SearchRequest::new(5);
    let queries: Vec<Graph> = base_db.iter().take(3).cloned().collect();
    let want: Vec<_> = {
        let snap = durable.serving().snapshot();
        queries.iter().map(|q| hits(&snap, q, &req)).collect()
    };

    let folding = AtomicBool::new(true);
    let searches = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..3 {
            let reader = durable.serving().reader();
            let (queries, want, req) = (&queries, &want, &req);
            let (folding, searches) = (&folding, &searches);
            scope.spawn(move || loop {
                let q = &queries[t % queries.len()];
                let resp = reader.search(q, req).unwrap();
                let got: Vec<_> = resp
                    .hits
                    .iter()
                    .map(|h| (h.id.get(), h.distance.to_bits()))
                    .collect();
                assert_eq!(
                    got,
                    want[t % queries.len()],
                    "mid-checkpoint answer drifted"
                );
                searches.fetch_add(1, Ordering::Relaxed);
                if !folding.load(Ordering::Relaxed) {
                    break;
                }
            });
        }
        // Fold twice while the readers hammer away.
        assert_eq!(durable.checkpoint().unwrap(), 1);
        assert_eq!(durable.checkpoint().unwrap(), 2);
        folding.store(false, Ordering::Relaxed);
    });
    assert!(
        searches.load(Ordering::Relaxed) >= 3,
        "every reader served during the folds"
    );
    assert_eq!(durable.generation(), 2);
    assert_eq!(durable.wal_records(), 0);

    // And the folded store reopens to the same answers.
    drop(durable);
    let (reopened, report) = DurableHandle::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!((report.generation, report.wal_records), (2, 0));
    let snap = reopened.serving().snapshot();
    for (q, w) in queries.iter().zip(&want) {
        assert_eq!(&hits(&snap, q, &req), w);
    }
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}

/// A rebuild reassigns ids in memory *before* its checkpoint
/// publishes them. If that checkpoint fails, the served index is
/// ahead of what `CURRENT` names, and any mutation logged from then
/// on would be validated against ids the on-disk state cannot
/// reproduce — so the handle must refuse all further mutations
/// (typed, not panicking) until the directory is reopened. A plain
/// checkpoint failure, by contrast, moves nothing in memory and must
/// stay fully recoverable.
#[test]
fn failed_rebuild_checkpoint_poisons_mutations_until_reopen() {
    let base = ShardedIndex::build(chem(10, 41), ShardedOptions::new(2).with_index(opts()));
    let dir = tmp_dir("poison", 41);
    let durable = DurableHandle::create(&dir, base.clone(), SyncPolicy::Always).unwrap();
    let extra = chem(3, !41);
    durable.insert(extra[0].clone()).unwrap();

    // Block every checkpoint: a plain file where generation 1 would
    // be staged makes the snapshot save fail.
    let staging = dir.join("gen-000001.tmp");
    std::fs::write(&staging, b"in the way").unwrap();

    // A plain checkpoint failure is recoverable — nothing moved in
    // memory, so mutations keep flowing.
    assert!(durable.checkpoint().is_err());
    assert!(!durable.is_poisoned());
    let acked_id = durable.insert(extra[1].clone()).unwrap();

    // A rebuild failure is not: the in-memory index now holds
    // post-rebuild ids that were never published.
    let err = durable.rebuild().unwrap_err();
    assert!(
        !matches!(err, GdimError::DurablePoisoned { .. }),
        "the rebuild itself surfaces the underlying checkpoint error: {err:?}"
    );
    assert!(durable.is_poisoned());
    match durable.insert(extra[2].clone()) {
        Err(e @ GdimError::DurablePoisoned { .. }) => {
            assert_eq!(e.code(), "durable_poisoned");
        }
        other => panic!("expected DurablePoisoned, got {other:?}"),
    }
    assert!(matches!(
        durable.remove(acked_id),
        Err(GdimError::DurablePoisoned { .. })
    ));
    assert!(matches!(
        durable.checkpoint(),
        Err(GdimError::DurablePoisoned { .. })
    ));
    assert!(matches!(
        durable.sync(),
        Err(GdimError::DurablePoisoned { .. })
    ));
    // Reads keep serving.
    durable
        .serving()
        .snapshot()
        .search(&extra[0], &SearchRequest::new(3))
        .unwrap();
    drop(durable);

    // Reopening recovers exactly the pre-rebuild acked state (both
    // acked inserts, generation 0) and mutations work again.
    std::fs::remove_file(&staging).unwrap();
    let (recovered, report) = DurableHandle::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(report.generation, 0);
    assert_eq!(report.wal_records, 2);
    let mut want = base.clone();
    want.insert(extra[0].clone());
    want.insert(extra[1].clone());
    assert_identical(
        &recovered.serving().snapshot(),
        &want,
        &extra[..1],
        "post-poison reopen",
    );
    recovered.insert(extra[2].clone()).unwrap();
    assert_eq!(recovered.checkpoint().unwrap(), 1);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: oversized WAL payloads are refused at append time, and
/// the durable-facing constant is what the frame layer enforces.
#[test]
fn wal_rejects_payloads_beyond_the_frame_cap() {
    let dir = tmp_dir("cap", 1);
    std::fs::create_dir_all(&dir).unwrap();
    let mut w = WalWriter::create(dir.join("cap.log"), SyncPolicy::Never).unwrap();
    let too_big = vec![0u8; MAX_RECORD_BYTES as usize + 1];
    assert!(w.append(&too_big).is_err());
    assert_eq!(w.len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

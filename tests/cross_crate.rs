//! Cross-crate consistency tests: text-format round trips through the
//! whole stack, fingerprint/fragment-vocabulary synchronization, and
//! the mining → feature-space → query-mapping contract.

use gdim::core::fingerprint::{fingerprint, FRAGMENT_BIT_RANGE};
use gdim::graph::io;
use gdim::prelude::*;

#[test]
fn generated_databases_roundtrip_through_text_format() {
    let chem = gdim::datagen::chem_db(30, &gdim::datagen::ChemConfig::default(), 3);
    let synth = gdim::datagen::synth_db(30, &gdim::datagen::SynthConfig::default(), 3);
    for db in [chem, synth] {
        let text = io::write_db(&db);
        let back = io::parse_db(&text).expect("own output parses");
        assert_eq!(db, back);
    }
}

#[test]
fn mining_results_survive_serialization() {
    // Mining the parsed copy must give identical features and supports.
    let db = gdim::datagen::chem_db(25, &gdim::datagen::ChemConfig::default(), 5);
    let back = io::parse_db(&io::write_db(&db)).unwrap();
    let cfg = MinerConfig::new(Support::Relative(0.2)).with_max_edges(3);
    let a = mine(&db, &cfg);
    let b = mine(&back, &cfg);
    assert_eq!(a.len(), b.len());
    for (fa, fb) in a.iter().zip(&b) {
        assert_eq!(fa.code, fb.code);
        assert_eq!(fa.support, fb.support);
    }
}

#[test]
fn fingerprint_fragment_vocabulary_matches_datagen_dictionary() {
    // Each dictionary fragment must set its own fragment bit — this is
    // the contract between gdim-core's fingerprint (which inlines the
    // vocabulary to avoid a dependency cycle) and gdim-datagen.
    let dict = gdim::datagen::fragment_dictionary();
    assert_eq!(
        dict.len(),
        FRAGMENT_BIT_RANGE.len(),
        "fragment vocabulary size drifted from the fingerprint layout"
    );
    for (i, frag) in dict.iter().enumerate() {
        let bits = fingerprint(frag);
        assert!(
            bits.get(FRAGMENT_BIT_RANGE.start + i),
            "fragment {i} does not set its own fingerprint bit"
        );
    }
}

#[test]
fn query_mapping_agrees_between_full_space_and_mapped_database() {
    // FeatureSpace::map_query (with parent pruning) and
    // MappedDatabase::map_query (plain VF2 over selected features) must
    // agree on the selected coordinates.
    let db = gdim::datagen::chem_db(30, &gdim::datagen::ChemConfig::default(), 9);
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4),
    );
    let space = FeatureSpace::build(db.len(), features);
    let selected: Vec<u32> = (0..space.num_features() as u32).step_by(3).collect();
    let mapped =
        MappedDatabase::new(&space, &selected, Mapping::Binary).expect("selection in range");
    let queries = gdim::datagen::chem_db(5, &gdim::datagen::ChemConfig::default(), 123);
    for q in &queries {
        let full = space.map_query(q);
        let sub = mapped.map_query(q);
        for (col, &r) in selected.iter().enumerate() {
            assert_eq!(
                sub.get(col),
                full.get(r as usize),
                "coordinate {col} (feature {r}) disagrees"
            );
        }
    }
}

#[test]
fn features_support_lists_match_vf2_ground_truth() {
    // gSpan support lists (used as IF inverted lists without re-testing)
    // must equal brute-force VF2 containment.
    let db = gdim::datagen::chem_db(20, &gdim::datagen::ChemConfig::default(), 29);
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
    );
    for f in &features {
        let brute: Vec<u32> = db
            .iter()
            .enumerate()
            .filter(|(_, g)| gdim::graph::vf2::is_subgraph_iso(&f.graph, g))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(f.support, brute, "support mismatch for {:?}", f.graph);
    }
}

#[test]
fn delta_matrix_and_shared_delta_agree() {
    let db = gdim::datagen::chem_db(15, &gdim::datagen::ChemConfig::default(), 31);
    let cfg = DeltaConfig::default();
    let full = DeltaMatrix::compute(&db, &cfg);
    let shared = gdim::core::SharedDelta::new(&db, cfg);
    let ids: Vec<u32> = (0..db.len() as u32).collect();
    let sub = shared.submatrix(&ids);
    for i in 0..db.len() {
        for j in 0..db.len() {
            assert_eq!(full.get(i, j), sub.get(i, j), "({i},{j})");
        }
    }
}

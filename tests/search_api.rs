//! Serving-layer contract tests for the typed search API: the
//! filter-then-verify ranker's equivalence to the exact reference, the
//! persistence round trip, deterministic tie-breaking, and the
//! well-formedness of every edge-case request.

use proptest::prelude::*;

use gdim::prelude::*;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn index(n: usize, seed: u64, p: usize) -> GraphIndex {
    GraphIndex::build(chem(n, seed), IndexOptions::default().with_dimensions(p))
}

fn hit_pairs(resp: &SearchResponse) -> Vec<(u32, f64)> {
    resp.hits.iter().map(|h| (h.id.get(), h.distance)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `Refined { candidates: n }` re-ranks the *entire* database with
    /// the exact dissimilarity, so it must equal the `Exact` ranker
    /// hit-for-hit — on any seeded chem database, for seen and unseen
    /// queries alike.
    #[test]
    fn refined_over_all_candidates_equals_exact(seed in 0u64..1000, k in 1usize..8) {
        let n = 12;
        let idx = index(n, seed, 15);
        let exact_req = SearchRequest::new(k).ranker(Ranker::Exact);
        let refined_req = SearchRequest::new(k).ranker(Ranker::Refined { candidates: n });
        let unseen = chem(2, seed ^ 0xdead);
        let queries: Vec<&Graph> = idx.graphs().iter().take(2).chain(&unseen).collect();
        for q in queries {
            let exact = idx.search(q, &exact_req).unwrap();
            let refined = idx.search(q, &refined_req).unwrap();
            prop_assert_eq!(hit_pairs(&refined), hit_pairs(&exact));
            prop_assert_eq!(refined.stats.mcs_calls, n);
        }
    }
}

#[test]
fn save_load_roundtrip_yields_byte_identical_hits() {
    let idx = index(25, 42, 20);
    let path = std::env::temp_dir().join(format!("gdim-search-api-{}.idx", std::process::id()));
    idx.save(&path).expect("save");
    let loaded = GraphIndex::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let queries = chem(4, 7);
    // Approx rides with ef covering the whole store, so its beam is
    // exhaustive and the saved/loaded answers must also agree — and
    // both sides build the same deterministic proximity graph, so the
    // final byte-stability check covers the persisted ANN section.
    let reqs = [
        SearchRequest::new(6),
        SearchRequest::new(6).mapping(MappingKind::Weighted),
        SearchRequest::new(6).ranker(Ranker::Refined { candidates: 10 }),
        SearchRequest::new(6).ranker(Ranker::Exact),
        SearchRequest::new(6).ranker(Ranker::Approx {
            ef: 25,
            verify: None,
        }),
    ];
    for q in &queries {
        for req in &reqs {
            let a = idx.search(q, req).unwrap();
            let b = loaded.search(q, req).unwrap();
            // Byte-identical: compare the exact f64 bit patterns.
            let bits = |r: &SearchResponse| -> Vec<(u32, u64)> {
                r.hits
                    .iter()
                    .map(|h| (h.id.get(), h.distance.to_bits()))
                    .collect()
            };
            assert_eq!(bits(&a), bits(&b), "{:?}", req.ranker);
        }
    }
    // And the serialized form itself is stable across the round trip.
    assert_eq!(idx.to_bytes(), loaded.to_bytes());
}

#[test]
fn edge_case_requests_are_well_formed() {
    let idx = index(10, 5, 12);
    let q = chem(1, 99).remove(0);
    let rankers = [
        Ranker::Mapped,
        Ranker::Exact,
        Ranker::Refined { candidates: 0 },
        Ranker::Refined { candidates: 500 },
        Ranker::Approx {
            ef: 0,
            verify: None,
        },
        Ranker::Approx {
            ef: 64,
            verify: Some(500),
        },
    ];
    // k = 0: empty hits, no work charged to MCS beyond the candidates.
    for r in rankers {
        let resp = idx.search(&q, &SearchRequest::new(0).ranker(r)).unwrap();
        assert!(resp.hits.is_empty(), "{r:?}");
    }
    // k > n: clamped to the database size, still sorted.
    for r in rankers {
        let resp = idx
            .search(&q, &SearchRequest::new(1_000_000).ranker(r))
            .unwrap();
        assert!(resp.hits.len() <= idx.len(), "{r:?}");
        for w in resp.hits.windows(2) {
            assert!(
                w[0].distance < w[1].distance
                    || (w[0].distance == w[1].distance && w[0].id < w[1].id),
                "{r:?}: not sorted by (distance, id)"
            );
        }
    }
    // Empty database: every request answers with zero hits.
    let empty = GraphIndex::build(Vec::new(), IndexOptions::default());
    for r in rankers {
        let resp = empty.search(&q, &SearchRequest::new(5).ranker(r)).unwrap();
        assert!(resp.hits.is_empty(), "{r:?}");
    }
    let batch = empty
        .search_batch(std::slice::from_ref(&q), &SearchRequest::new(3))
        .unwrap();
    assert_eq!(batch.len(), 1);
    assert!(batch[0].hits.is_empty());
}

#[test]
fn tie_breaking_is_stable_by_id_and_batch_agrees() {
    // Duplicate every graph: each pair maps to identical vectors, so
    // every distance ties and the order must fall back to ascending id.
    let mut db = chem(12, 31);
    let dup = db.clone();
    db.extend(dup);
    let idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(15));
    let queries = chem(3, 77);
    let req = SearchRequest::new(24);
    for q in &queries {
        let hits = idx.search(q, &req).unwrap().hits;
        for w in hits.windows(2) {
            assert!(
                w[0].distance < w[1].distance
                    || (w[0].distance == w[1].distance && w[0].id < w[1].id),
                "tie not broken by ascending id"
            );
        }
        // Graph i and its duplicate i+12 tie exactly; i must rank first.
        let pos = |id: u32| hits.iter().position(|h| h.id.get() == id).unwrap();
        for i in 0..12u32 {
            assert!(pos(i) < pos(i + 12), "duplicate {i} ranked before original");
        }
    }
    // Batch and single-query paths agree for every thread budget.
    for threads in [1usize, 2, 8] {
        let idx_t = GraphIndex::build(
            idx.graphs().to_vec(),
            IndexOptions::default()
                .with_dimensions(15)
                .with_threads(threads),
        );
        let batch = idx_t.search_batch(&queries, &req).unwrap();
        for (q, resp) in queries.iter().zip(&batch) {
            assert_eq!(
                idx_t.search(q, &req).unwrap().hits,
                resp.hits,
                "threads = {threads}"
            );
        }
    }
}

#[test]
fn load_rejects_non_index_files() {
    let path = std::env::temp_dir().join(format!("gdim-not-an-index-{}", std::process::id()));
    std::fs::write(&path, b"t # 0\nv 0 1\n").unwrap();
    let err = GraphIndex::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, GdimError::Corrupt(_)), "{err}");
    let missing = GraphIndex::load("/nonexistent/gdim.idx").unwrap_err();
    assert!(matches!(missing, GdimError::Io(_)), "{missing}");
}

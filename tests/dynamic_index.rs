//! Equivalence contract of the dynamic index (PR 4): an index grown by
//! online `insert` and compacted by the epoch rebuild must be
//! **bit-identical** to `GraphIndex::build` over the same final graph
//! set — hits and order, binary and weighted mappings, every thread
//! budget — and `remove` + rebuild must match building without the
//! removed graphs. Before a rebuild, tombstoned rows must never
//! surface from any ranker.

use proptest::prelude::*;

use gdim::prelude::*;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn opts(threads: usize) -> IndexOptions {
    IndexOptions::default()
        .with_dimensions(16)
        .with_threads(threads)
}

/// Hits of one search as raw `(id, distance)` pairs.
fn hits(idx: &GraphIndex, q: &Graph, req: &SearchRequest) -> Vec<(u32, f64)> {
    idx.search(q, req)
        .unwrap()
        .hits
        .iter()
        .map(|h| (h.id.get(), h.distance))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Grow a base index by `insert` until the rebuild policy trips,
    /// rebuild, and compare against a fresh batch build over the same
    /// final graph set: answers must agree bit-for-bit for both
    /// mappings, the mapped and refined rankers, and threads 1/2/8.
    #[test]
    fn insert_grown_index_equals_fresh_build(seed in 0u64..500) {
        let base = chem(10, seed);
        let extra = chem(4, seed.wrapping_mul(7) ^ 0xD15C);
        let queries = chem(2, !seed);
        let mut all = base.clone();
        all.extend(extra.iter().cloned());
        for threads in [1usize, 2, 8] {
            let opts = opts(threads).with_rebuild_policy(RebuildPolicy {
                max_inserts: extra.len(),
                max_tombstone_frac: 0.25,
            });
            let mut grown = GraphIndex::build(base.clone(), opts.clone());
            for (j, g) in extra.iter().enumerate() {
                let id = grown.insert(g.clone());
                prop_assert_eq!(id.index(), base.len() + j);
            }
            prop_assert!(grown.is_stale(), "policy must trip at max_inserts");
            prop_assert!(grown.rebuild_if_stale());
            prop_assert_eq!(grown.epoch(), 1);

            let fresh = GraphIndex::build(all.clone(), opts);
            prop_assert_eq!(grown.dimensions(), fresh.dimensions());
            prop_assert_eq!(grown.weights(), fresh.weights());
            for q in all.iter().take(3).chain(&queries) {
                for mapping in [MappingKind::Binary, MappingKind::Weighted] {
                    let req = SearchRequest::new(6).mapping(mapping);
                    prop_assert_eq!(
                        hits(&grown, q, &req),
                        hits(&fresh, q, &req),
                        "threads {}, mapping {:?}", threads, mapping
                    );
                }
                let req = SearchRequest::new(4)
                    .ranker(Ranker::Refined { candidates: 8 });
                prop_assert_eq!(hits(&grown, q, &req), hits(&fresh, q, &req));
            }
        }
    }

    /// `remove` + rebuild equals building without the removed graphs
    /// (later ids shift down, so compare answers, which carry the
    /// compacted ids of both sides).
    #[test]
    fn remove_then_rebuild_equals_build_without_removed(seed in 0u64..500, kill in 1usize..5) {
        let db = chem(12, seed ^ 0xBEE5);
        let dead: Vec<usize> = (0..db.len()).filter(|i| (i * 31 + seed as usize) % 12 < kill).collect();
        let survivors: Vec<Graph> = db
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .map(|(_, g)| g.clone())
            .collect();
        let mut pruned = GraphIndex::build(db.clone(), opts(2));
        for &i in &dead {
            prop_assert!(pruned.remove(GraphId(i as u32)).unwrap());
        }
        pruned.rebuild();
        let fresh = GraphIndex::build(survivors.clone(), opts(2));
        prop_assert_eq!(pruned.len(), fresh.len());
        prop_assert_eq!(pruned.tombstone_count(), 0);
        prop_assert_eq!(pruned.dimensions(), fresh.dimensions());
        for q in db.iter().take(4) {
            for ranker in [Ranker::Mapped, Ranker::Exact] {
                let req = SearchRequest::new(5).ranker(ranker);
                prop_assert_eq!(
                    hits(&pruned, q, &req),
                    hits(&fresh, q, &req),
                    "ranker {:?}", ranker
                );
            }
        }
    }

    /// Between a remove and the rebuild, tombstoned rows never appear
    /// in hits — any ranker, any mapping — and the scan counters keep
    /// accounting for every row.
    #[test]
    fn tombstoned_rows_never_surface_before_the_rebuild(seed in 0u64..500) {
        let db = chem(15, seed.wrapping_add(99));
        let mut idx = GraphIndex::build(db.clone(), opts(2));
        let dead: Vec<u32> = (0..15u32).filter(|i| (i * 7 + seed as u32).is_multiple_of(5)).collect();
        for &i in &dead {
            prop_assert!(idx.remove(GraphId(i)).unwrap());
        }
        prop_assert!(!dead.is_empty());
        let live = 15 - dead.len();
        for q in db.iter().take(4) {
            for (ranker, mapping) in [
                (Ranker::Mapped, MappingKind::Binary),
                (Ranker::Mapped, MappingKind::Weighted),
                (Ranker::Refined { candidates: 15 }, MappingKind::Binary),
                (Ranker::Exact, MappingKind::Binary),
            ] {
                let req = SearchRequest::new(15).ranker(ranker).mapping(mapping);
                let resp = idx.search(q, &req).unwrap();
                for h in &resp.hits {
                    prop_assert!(!dead.contains(&h.id.get()), "{:?}: dead {} in hits", ranker, h.id);
                }
                prop_assert_eq!(resp.hits.len(), live, "{:?}", ranker);
                prop_assert_eq!(resp.stats.live_graphs, live);
                if matches!(ranker, Ranker::Mapped) {
                    prop_assert_eq!(resp.stats.tombstones_skipped, dead.len());
                    prop_assert_eq!(
                        resp.stats.candidates_scanned
                            + resp.stats.early_abandoned
                            + resp.stats.tombstones_skipped,
                        15
                    );
                }
            }
        }
    }

    /// Before any rebuild, an inserted graph is served from exactly
    /// its query mapping: its stored vector equals `map_query`, a
    /// self-query ranks it first at distance 0, and a save/load round
    /// trip of the dirty index answers identically.
    #[test]
    fn pre_rebuild_inserts_serve_consistently(seed in 0u64..500) {
        let base = chem(10, seed ^ 0xF00D);
        let extra = chem(3, seed.wrapping_mul(13) + 5);
        let mut idx = GraphIndex::build(base, opts(1));
        for g in &extra {
            let id = idx.insert(g.clone());
            prop_assert_eq!(idx.mapped().vector(id.index()), idx.map_query(g));
            // The inserted graph scores distance 0 against itself (an
            // older graph with an identical vector may win the id
            // tie-break, but the 0-distance band must include it).
            let resp = idx.search(g, &SearchRequest::new(idx.len())).unwrap();
            prop_assert_eq!(resp.hits[0].distance, 0.0);
            let own = resp.hits.iter().find(|h| h.id == id).expect("inserted id present");
            prop_assert_eq!(own.distance, 0.0);
        }
        prop_assert_eq!(idx.epoch(), 0, "no rebuild ran");
        idx.remove(GraphId(11)).unwrap(); // one inserted row dies too
        let back = GraphIndex::from_bytes(&idx.to_bytes()).unwrap();
        for q in extra.iter() {
            for ranker in [Ranker::Mapped, Ranker::Exact] {
                let req = SearchRequest::new(6).ranker(ranker);
                prop_assert_eq!(
                    hits(&idx, q, &req),
                    hits(&back, q, &req),
                    "ranker {:?}", ranker
                );
            }
        }
    }
}

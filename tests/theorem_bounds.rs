//! Property tests for the paper's theory (§4.1): Lemma 4.1, Theorems
//! 4.1–4.3 and the corollaries' building blocks, validated on random
//! labeled graphs with the exact MCS engine.

use proptest::prelude::*;

use gdim::graph::mcs::{mcs_edges, McsOptions};
use gdim::graph::{Dissimilarity, Graph, GraphBuilder};

/// Random connected labeled graph (small enough for exact MCS).
fn graph(max_n: usize, extra: usize, vl: u32, el: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n, 0..=extra).prop_flat_map(move |(n, ex)| {
        let vlabels = proptest::collection::vec(0..vl, n);
        let tree = proptest::collection::vec((any::<prop::sample::Index>(), 0..el), n - 1);
        let extras = proptest::collection::vec(
            (
                any::<prop::sample::Index>(),
                any::<prop::sample::Index>(),
                0..el,
            ),
            ex,
        );
        (vlabels, tree, extras).prop_map(move |(vlabels, tree, extras)| {
            let mut b = GraphBuilder::with_vertices(vlabels);
            for (i, (parent, elb)) in tree.into_iter().enumerate() {
                let _ = b.edge(parent.index(i + 1) as u32, (i + 1) as u32, elb);
            }
            for (iu, iv, elb) in extras {
                let (u, v) = (iu.index(n) as u32, iv.index(n) as u32);
                if u != v && !b.has_edge(u, v) {
                    let _ = b.edge(u, v, elb);
                }
            }
            b.build()
        })
    })
}

fn exact_mcs(a: &Graph, b: &Graph) -> u32 {
    let out = mcs_edges(a, b, &McsOptions::default());
    assert!(out.exact, "graphs small enough for exact search");
    out.edges
}

/// Random edge-subgraph q' ⊆ q with at least one edge.
fn subgraph_of(q: &Graph, mask: u64) -> Graph {
    let m = q.edge_count() as u32;
    let mut eids: Vec<u32> = (0..m).filter(|i| mask >> (i % 64) & 1 == 1).collect();
    if eids.is_empty() {
        eids.push((mask % m as u64) as u32);
    }
    q.edge_subgraph(&eids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 4.1: 0 ≤ |E(mcs(q,g))| − |E(mcs(q',g))| ≤ |E(q)| − |E(q')|.
    #[test]
    fn lemma_4_1_mcs_difference_bound(
        q in graph(6, 2, 2, 2),
        g in graph(6, 2, 2, 2),
        mask in any::<u64>(),
    ) {
        let q_sub = subgraph_of(&q, mask);
        let big = exact_mcs(&q, &g) as i64;
        let small = exact_mcs(&q_sub, &g) as i64;
        let xi = big - small;
        prop_assert!(xi >= 0, "ξ = {xi} negative");
        let size_gap = q.edge_count() as i64 - q_sub.edge_count() as i64;
        prop_assert!(xi <= size_gap, "ξ = {xi} > |E(q)|−|E(q')| = {size_gap}");
    }

    /// Theorem 4.1: α − ε1l ≤ δ1(q', g) ≤ α + ε1r.
    #[test]
    fn theorem_4_1_delta1_bounds(
        q in graph(6, 2, 2, 2),
        g in graph(6, 2, 2, 2),
        mask in any::<u64>(),
    ) {
        let q_sub = subgraph_of(&q, mask);
        let (eq, eg, eqs) = (
            q.edge_count() as f64,
            g.edge_count() as f64,
            q_sub.edge_count() as f64,
        );
        let alpha = Dissimilarity::MaxNorm.eval(&q, &g, exact_mcs(&q, &g));
        let d_sub = Dissimilarity::MaxNorm.eval(&q_sub, &g, exact_mcs(&q_sub, &g));
        let min_sg = eqs.min(eg);
        let eps_l = (eq - min_sg) / min_sg * (1.0 - alpha);
        let eps_r = (eq - eqs) / eg;
        prop_assert!(
            d_sub >= alpha - eps_l - 1e-9,
            "δ1(q',g) = {d_sub} < α − ε1l = {}",
            alpha - eps_l
        );
        prop_assert!(
            d_sub <= alpha + eps_r + 1e-9,
            "δ1(q',g) = {d_sub} > α + ε1r = {}",
            alpha + eps_r
        );
    }

    /// Theorem 4.2: α − (1−α)ε2 ≤ δ2(q', g) ≤ α + (1+α)ε2.
    #[test]
    fn theorem_4_2_delta2_bounds(
        q in graph(6, 2, 2, 2),
        g in graph(6, 2, 2, 2),
        mask in any::<u64>(),
    ) {
        let q_sub = subgraph_of(&q, mask);
        let (eq, eg, eqs) = (
            q.edge_count() as f64,
            g.edge_count() as f64,
            q_sub.edge_count() as f64,
        );
        let alpha = Dissimilarity::AvgNorm.eval(&q, &g, exact_mcs(&q, &g));
        let d_sub = Dissimilarity::AvgNorm.eval(&q_sub, &g, exact_mcs(&q_sub, &g));
        let eps2 = (eq - eqs) / (eqs + eg);
        prop_assert!(d_sub >= alpha - (1.0 - alpha) * eps2 - 1e-9);
        prop_assert!(d_sub <= alpha + (1.0 + alpha) * eps2 + 1e-9);
    }
}

/// Theorem 4.3 on a real mapped space: for q' ⊆ q,
/// |d(y_q', y_g) − d(y_q, y_g)| ≤ √(t/p) with t = |F(q)| − |F(q')|.
#[test]
fn theorem_4_3_mapped_distance_bound() {
    use gdim::prelude::*;
    let db = gdim::datagen::chem_db(40, &gdim::datagen::ChemConfig::default(), 5);
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.15)).with_max_edges(4),
    );
    let space = FeatureSpace::build(db.len(), features);
    let selected: Vec<u32> = (0..space.num_features() as u32).collect();
    let mapped =
        MappedDatabase::new(&space, &selected, Mapping::Binary).expect("selection in range");
    let p = mapped.p() as f64;

    let queries = gdim::datagen::chem_db(10, &gdim::datagen::ChemConfig::default(), 100);
    for (qi, q) in queries.iter().enumerate() {
        let q_sub = gdim::datagen::connected_edge_subgraph(q, 0.6, qi as u64);
        let yq = mapped.map_query(q);
        let yq_sub = mapped.map_query(&q_sub);
        // Anti-monotonicity: F(q') ⊆ F(q).
        for bit in yq_sub.iter_ones() {
            assert!(yq.get(bit), "feature of q' missing from q");
        }
        let t = (yq.count_ones() - yq_sub.count_ones()) as f64;
        let bound = (t / p).sqrt();
        for g in 0..db.len() {
            let gap = (mapped.distance_to(&yq, g) - mapped.distance_to(&yq_sub, g)).abs();
            assert!(
                gap <= bound + 1e-9,
                "query {qi}, graph {g}: gap {gap} > √(t/p) = {bound}"
            );
        }
    }
}

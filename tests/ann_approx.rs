//! Contract tests for the approximate serving tier (`Ranker::Approx`):
//! the one deliberately inexact ranker must still be *safe* — hits are
//! always live rows carrying genuine kernel distances, stats admit
//! `approximate: true`, tombstoned and edge-case requests stay
//! well-formed — and with `verify` enabled its answers are
//! bit-identical to [`Ranker::Refined`] over the same candidate set.

use proptest::prelude::*;

use gdim::core::bitset::weighted_sq_xor_words;
use gdim::prelude::*;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn index(n: usize, seed: u64, p: usize) -> GraphIndex {
    GraphIndex::build(chem(n, seed), IndexOptions::default().with_dimensions(p))
}

fn approx(k: usize, ef: usize) -> SearchRequest {
    SearchRequest::new(k).ranker(Ranker::Approx { ef, verify: None })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the beam does, its output is trustworthy: every hit is
    /// a live (never tombstoned) row, every distance is exactly the
    /// kernel distance of that row under the requested mapping, order
    /// is strict by `(distance, id)`, and stats say `approximate`.
    #[test]
    fn approx_hits_are_live_rows_with_genuine_distances(
        seed in 0u64..500,
        k in 1usize..8,
        ef in 1usize..48,
    ) {
        let mut idx = index(20, seed, 16);
        // Tombstone a third of the rows, including ones the graph has
        // already folded in.
        for id in [1u32, 7, 13, 16, 19, 4, 10] {
            idx.remove(GraphId(id)).unwrap();
        }
        let queries = chem(2, !seed);
        for q in &queries {
            let qvec = idx.map_query(q);
            for mapping in [MappingKind::Binary, MappingKind::Weighted] {
                let req = approx(k, ef).mapping(mapping);
                let resp = idx.search(q, &req).unwrap();
                prop_assert!(resp.stats.approximate);
                prop_assert_eq!(resp.stats.ef, ef);
                prop_assert!(resp.hits.len() <= k);
                for w in resp.hits.windows(2) {
                    prop_assert!(
                        w[0].distance < w[1].distance
                            || (w[0].distance == w[1].distance && w[0].id < w[1].id),
                        "not sorted by (distance, id)"
                    );
                }
                for h in &resp.hits {
                    prop_assert!(
                        !idx.tombstones().is_dead(h.id.get() as usize),
                        "dead row {} surfaced", h.id
                    );
                    let want = match mapping {
                        MappingKind::Weighted => weighted_sq_xor_words(
                            qvec.words(),
                            idx.mapped().store().row(h.id.get() as usize),
                            idx.weighted_w_sq(),
                        )
                        .sqrt(),
                        _ => idx.mapped().distance_to(&qvec, h.id.get() as usize),
                    };
                    prop_assert_eq!(
                        h.distance.to_bits(),
                        want.to_bits(),
                        "fabricated distance for row {}", h.id
                    );
                }
            }
        }
    }

    /// With `ef` covering the whole store the beam is exhaustive (the
    /// database is small enough that layer 0 never trims), so
    /// `Approx { verify: Some(c) }` sees the same candidate set as
    /// `Refined { candidates: c }` and must answer bit-identically —
    /// the acceptance contract for the verification tier.
    #[test]
    fn verified_approx_equals_refined_bit_for_bit(
        seed in 0u64..500,
        k in 1usize..6,
        c in 1usize..12,
    ) {
        let n = 18; // ≤ 2m + 1, so the layer-0 graph stays complete
        let idx = index(n, seed, 16);
        let queries = chem(3, seed ^ 0xA11C);
        for q in queries.iter().chain(idx.graphs().iter().take(2)) {
            for mapping in [MappingKind::Binary, MappingKind::Weighted] {
                let approx_req = SearchRequest::new(k)
                    .ranker(Ranker::Approx { ef: n, verify: Some(c) })
                    .mapping(mapping);
                let refined_req = SearchRequest::new(k)
                    .ranker(Ranker::Refined { candidates: c })
                    .mapping(mapping);
                let a = idx.search(q, &approx_req).unwrap();
                let r = idx.search(q, &refined_req).unwrap();
                let bits = |resp: &SearchResponse| -> Vec<(u32, u64)> {
                    resp.hits
                        .iter()
                        .map(|h| (h.id.get(), h.distance.to_bits()))
                        .collect()
                };
                prop_assert_eq!(bits(&a), bits(&r), "verify must equal Refined");
                prop_assert_eq!(a.stats.mcs_calls, r.stats.mcs_calls);
                prop_assert!(a.stats.approximate && !r.stats.approximate);
            }
        }
    }
}

#[test]
fn edge_cases_are_well_formed() {
    let idx = index(10, 5, 12);
    let q = chem(1, 99).remove(0);
    // k = 0 answers empty without touching (or building) the graph.
    assert!(idx.search(&q, &approx(0, 32)).unwrap().hits.is_empty());
    // k > n clamps; ef = 0 still answers (the beam floor is k).
    let resp = idx.search(&q, &approx(1_000_000, 0)).unwrap();
    assert!(resp.hits.len() <= idx.len());
    // Empty database: zero hits, stats still honest.
    let empty = GraphIndex::build(Vec::new(), IndexOptions::default());
    let resp = empty.search(&q, &approx(5, 16)).unwrap();
    assert!(resp.hits.is_empty());
    assert!(resp.stats.approximate);
}

#[test]
fn pending_inserts_are_served_exactly_until_rebuild() {
    let mut idx = index(16, 8, 14);
    // Force the graph before inserting: the new rows land in the
    // pending tail, outside the built graph.
    idx.ann();
    let built = idx.ann_if_built().unwrap().built_n();
    let extra = chem(3, 4242);
    let ids: Vec<GraphId> = extra.iter().map(|g| idx.insert(g.clone())).collect();
    assert_eq!(built, 16, "inserts must not rebuild the graph");
    // Self-queries must surface the inserted row at distance 0: the
    // tail is scanned exactly, so a pending row can never be missed
    // (an older row with an identical mapped vector may win the id
    // tiebreak, so the pending row is asserted present, not first).
    for (g, id) in extra.iter().zip(&ids) {
        let resp = idx.search(g, &approx(1, 8)).unwrap();
        assert_eq!(resp.hits[0].distance, 0.0);
        assert!(resp.stats.candidates_scanned >= extra.len());
        let wide = idx.search(g, &approx(19, 64)).unwrap();
        assert!(wide.hits.iter().any(|h| h.id == *id));
    }
    // A tombstoned pending row disappears immediately.
    idx.remove(ids[0]).unwrap();
    let resp = idx.search(&extra[0], &approx(16, 64)).unwrap();
    assert!(resp.hits.iter().all(|h| h.id != ids[0]));
    // Rebuild folds the tail in and drops the stale graph.
    idx.rebuild();
    assert!(idx.ann_if_built().is_none(), "rebuild must invalidate");
    let resp = idx.search(&extra[1], &approx(1, 32)).unwrap();
    assert_eq!(resp.hits[0].distance, 0.0);
}

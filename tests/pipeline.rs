//! End-to-end integration tests across all crates: the full paper
//! pipeline on seeded data, with the qualitative claims of §6 asserted
//! as invariants (DSPM ≥ Sample quality, DSPMap ≈ DSPM, mapped query
//! returns the graph itself, ...).

use gdim::core::measures::{precision, topk_ids};
use gdim::core::{dspmap, DspmapConfig, SharedDelta};
use gdim::prelude::*;

struct Pipeline {
    db: Vec<Graph>,
    queries: Vec<Graph>,
    space: FeatureSpace,
    delta: DeltaMatrix,
}

fn build_pipeline(n: usize, seed: u64) -> Pipeline {
    let db = gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed);
    let queries = gdim::datagen::chem_db(12, &gdim::datagen::ChemConfig::default(), seed ^ 0xff);
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.08)).with_max_edges(4),
    );
    let space = FeatureSpace::build(db.len(), features);
    let delta = DeltaMatrix::compute(
        &db,
        &DeltaConfig {
            mcs: McsOptions {
                node_budget: 8_192,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    Pipeline {
        db,
        queries,
        space,
        delta,
    }
}

fn mean_precision(pl: &Pipeline, selection: &[u32], truth: &[Vec<u32>], k: usize) -> f64 {
    let mapped =
        MappedDatabase::new(&pl.space, selection, Mapping::Binary).expect("selection in range");
    let mut total = 0.0;
    for (q, exact) in pl.queries.iter().zip(truth) {
        let ids = topk_ids(&mapped.topk(&mapped.map_query(q), k), k);
        total += precision(&ids, &exact[..k]);
    }
    total / pl.queries.len() as f64
}

fn ground_truth(pl: &Pipeline) -> Vec<Vec<u32>> {
    let mcs = McsOptions {
        node_budget: 16_384,
        ..Default::default()
    };
    pl.queries
        .iter()
        .map(|q| {
            exact_ranking(
                &pl.db,
                q,
                Dissimilarity::AvgNorm,
                &mcs,
                &ExecConfig::default(),
            )
            .into_iter()
            .map(|(id, _)| id)
            .collect()
        })
        .collect()
}

#[test]
fn dspm_beats_random_sampling_on_precision() {
    let pl = build_pipeline(80, 3);
    let truth = ground_truth(&pl);
    let p = 50.min(pl.space.num_features());
    let k = 10;

    let dspm_sel = dspm(&pl.space, &pl.delta, &DspmConfig::new(p)).selected;
    let dspm_prec = mean_precision(&pl, &dspm_sel, &truth, k);

    // Average Sample over several seeds to reduce variance.
    let mut sample_prec = 0.0;
    for seed in 0..5 {
        let sel = gdim::baselines::sample_select(&pl.space, p, seed);
        sample_prec += mean_precision(&pl, &sel, &truth, k);
    }
    sample_prec /= 5.0;

    assert!(
        dspm_prec > sample_prec,
        "DSPM precision {dspm_prec:.3} should beat Sample {sample_prec:.3}"
    );
}

#[test]
fn dspmap_tracks_dspm_quality() {
    let pl = build_pipeline(80, 7);
    let truth = ground_truth(&pl);
    let p = 40.min(pl.space.num_features());
    let k = 10;

    let dspm_sel = dspm(&pl.space, &pl.delta, &DspmConfig::new(p)).selected;
    let dspm_prec = mean_precision(&pl, &dspm_sel, &truth, k);

    let sdelta = SharedDelta::new(
        &pl.db,
        DeltaConfig {
            mcs: McsOptions {
                node_budget: 8_192,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let map_sel = dspmap(
        &pl.space,
        &sdelta,
        &DspmapConfig::new(p).with_partition_size(20).with_seed(5),
    )
    .selected;
    let map_prec = mean_precision(&pl, &map_sel, &truth, k);

    // The paper reports DSPMap within 1-2% of DSPM; allow slack for the
    // small scale of this test.
    assert!(
        map_prec >= dspm_prec - 0.15,
        "DSPMap precision {map_prec:.3} too far below DSPM {dspm_prec:.3}"
    );
}

#[test]
fn database_graphs_retrieve_themselves() {
    let pl = build_pipeline(50, 11);
    let p = 40.min(pl.space.num_features());
    let sel = dspm(&pl.space, &pl.delta, &DspmConfig::new(p)).selected;
    let mapped = MappedDatabase::new(&pl.space, &sel, Mapping::Binary).expect("selection in range");
    for i in (0..pl.db.len()).step_by(7) {
        let qvec = mapped.map_query(&pl.db[i]);
        let top = mapped.topk(&qvec, 1);
        assert_eq!(top[0].1, 0.0, "graph {i}: distance to itself must be 0");
    }
}

#[test]
fn every_baseline_plugs_into_the_query_engine() {
    let pl = build_pipeline(40, 13);
    let p = 20.min(pl.space.num_features());
    let selections: Vec<(&str, Vec<u32>)> = vec![
        ("original", gdim::baselines::original_select(&pl.space)),
        ("sample", gdim::baselines::sample_select(&pl.space, p, 1)),
        (
            "sfs",
            gdim::baselines::sfs_select(&pl.space, &pl.delta, &gdim::baselines::SfsConfig { p }),
        ),
        (
            "mici",
            gdim::baselines::mici_select(&pl.space, &gdim::baselines::MiciConfig { p }),
        ),
        (
            "mcfs",
            gdim::baselines::mcfs_select(&pl.space, &gdim::baselines::McfsConfig::new(p)),
        ),
        (
            "udfs",
            gdim::baselines::udfs_select(&pl.space, &gdim::baselines::UdfsConfig::new(p)),
        ),
        (
            "ndfs",
            gdim::baselines::ndfs_select(&pl.space, &gdim::baselines::NdfsConfig::new(p)),
        ),
    ];
    for (name, sel) in selections {
        let mapped =
            MappedDatabase::new(&pl.space, &sel, Mapping::Binary).expect("selection in range");
        let qvec = mapped.map_query(&pl.queries[0]);
        let top = mapped.topk(&qvec, 5);
        assert_eq!(top.len(), 5, "{name}: top-k underfilled");
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1, "{name}: ranking not sorted");
        }
    }
}

#[test]
fn fingerprint_benchmark_is_a_reasonable_ranker() {
    // The benchmark ranker must be meaningfully better than random on
    // the exact ground truth (it anchors the relative measures of §6).
    let pl = build_pipeline(60, 17);
    let truth = ground_truth(&pl);
    let k = 10;
    let fp = FingerprintIndex::build(&pl.db);
    let mut fp_prec = 0.0;
    for (q, exact) in pl.queries.iter().zip(&truth) {
        let ids = topk_ids(&fp.topk(q, k), k);
        fp_prec += precision(&ids, &exact[..k]);
    }
    fp_prec /= pl.queries.len() as f64;
    let random_baseline = k as f64 / pl.db.len() as f64;
    assert!(
        fp_prec > 2.0 * random_baseline,
        "fingerprint precision {fp_prec:.3} not above random {random_baseline:.3}"
    );
}

#[test]
fn weighted_mapping_ablation_runs() {
    let pl = build_pipeline(40, 19);
    let p = 25.min(pl.space.num_features());
    let res = dspm(&pl.space, &pl.delta, &DspmConfig::new(p));
    let weighted =
        MappedDatabase::new(&pl.space, &res.selected, Mapping::Weighted(&res.weights)).unwrap();
    let binary = MappedDatabase::new(&pl.space, &res.selected, Mapping::Binary).unwrap();
    let q = &pl.queries[0];
    let (vw, vb) = (weighted.map_query(q), binary.map_query(q));
    assert_eq!(vw, vb, "query mapping is independent of the weighting");
    // Distances differ in general, but both are proper metrics on {0,1}^p.
    let dw = weighted.topk(&vw, 3);
    let db_ = binary.topk(&vb, 3);
    assert_eq!(dw.len(), 3);
    assert_eq!(db_.len(), 3);
}

//! Equivalence contract of the optimized online query path (PR 3):
//! the flat SoA scan kernel must select and order **exactly** the hits
//! of the naive full-sort reference scan, and the containment-pruned
//! query mapping must set exactly the bits of the brute-force VF2
//! loop — for binary and weighted mappings, every edge-case `k`, and
//! every thread budget.

use proptest::prelude::*;

use gdim::prelude::*;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

/// The naive pre-optimization scan: full ranking (sorted over all `n`
/// entries) truncated to `k` — what `MappedDatabase::topk` did before
/// the bounded kernel. `ranking` / `ranking_with` are kept in-tree as
/// reference implementations precisely for this comparison.
fn naive_topk(mapped: &MappedDatabase, qvec: &Bitset, k: usize) -> Vec<(u32, f64)> {
    let mut full = mapped.ranking(qvec);
    full.truncate(k);
    full
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scan kernel == naive reference, hits and order, for both
    /// mappings and all edge-case `k`.
    #[test]
    fn scan_kernel_equals_naive_ranking(seed in 0u64..500, p in 8usize..40) {
        let n = 30;
        let db = chem(n, seed);
        let feats = mine(&db, &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4));
        let space = FeatureSpace::build(db.len(), feats);
        let m = space.num_features();
        let selected: Vec<u32> = (0..m.min(p) as u32).collect();
        let weights: Vec<f64> = (0..m).map(|r| ((r * 13 + 7) % 10) as f64 / 10.0).collect();
        for mapping in [Mapping::Binary, Mapping::Weighted(&weights)] {
            let mapped = MappedDatabase::new(&space, &selected, mapping).unwrap();
            for qi in [0usize, 7, 19] {
                let qvec = mapped.map_query(&db[qi]);
                for k in [0usize, 1, n, n + 5] {
                    let fast = mapped.topk(&qvec, k);
                    let naive = naive_topk(&mapped, &qvec, k);
                    prop_assert_eq!(&fast, &naive, "kind {:?}, query {}, k {}", mapped.kind(), qi, k);
                }
            }
        }
    }

    /// Containment-pruned query mapping is bit-identical to the
    /// unpruned per-feature VF2 loop, and the pruning counters add up.
    #[test]
    fn pruned_mapping_is_bit_identical(seed in 0u64..500) {
        let db = chem(18, seed);
        let idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(30));
        let unseen = chem(3, !seed);
        for q in idx.graphs().iter().take(3).chain(&unseen) {
            let (bits, stats) = idx.map_query_with_stats(q);
            prop_assert_eq!(&bits, &idx.mapped().map_query_unpruned(q));
            prop_assert_eq!(stats.vf2_calls + stats.vf2_pruned, idx.dimensions().len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The serving layer on top of the kernel: `Mapped` and `Refined`
    /// search hits are byte-identical to the naive reference scan for
    /// every thread budget, under both request mappings, and batch
    /// answers (which run the exec-chunked scan) equal single answers.
    #[test]
    fn search_rankers_equal_naive_scan_for_any_thread_budget(seed in 0u64..500) {
        let n = 20;
        let db = chem(n, seed ^ 0xbeef);
        let queries = chem(3, seed.wrapping_mul(31) + 1);
        for threads in [1usize, 2, 8] {
            let idx = GraphIndex::build(
                db.clone(),
                IndexOptions::default().with_dimensions(24).with_threads(threads),
            );
            for q in idx.graphs().iter().take(2).chain(&queries) {
                let qvec = idx.map_query(q);
                for mapping in [MappingKind::Binary, MappingKind::Weighted] {
                    let naive = match mapping {
                        MappingKind::Weighted => {
                            // The weighted request is served from the same
                            // binary vectors with the DSPM-derived weights;
                            // rebuild that reference through the public
                            // reference scan.
                            let mut full = idx.mapped().ranking_with(
                                &qvec,
                                &weighted_reference_w_sq(&idx),
                            );
                            full.truncate(6);
                            full
                        }
                        _ => naive_topk(idx.mapped(), &qvec, 6),
                    };
                    let req = SearchRequest::new(6).mapping(mapping);
                    let resp = idx.search(q, &req).unwrap();
                    let got: Vec<(u32, f64)> =
                        resp.hits.iter().map(|h| (h.id.get(), h.distance)).collect();
                    prop_assert_eq!(&got, &naive, "threads {}, mapping {:?}", threads, mapping);
                }
            }
            // Refined candidate generation rides the same kernel: with
            // candidates == n every candidate is verified, so it must
            // equal the Exact ranker hit-for-hit.
            let q = &queries[0];
            let refined = idx
                .search(q, &SearchRequest::new(4).ranker(Ranker::Refined { candidates: n }))
                .unwrap();
            let exact = idx
                .search(q, &SearchRequest::new(4).ranker(Ranker::Exact))
                .unwrap();
            prop_assert_eq!(refined.hits, exact.hits);

            // Batch answers equal single answers.
            let req = SearchRequest::new(5);
            let batch = idx.search_batch(&queries, &req).unwrap();
            for (q, resp) in queries.iter().zip(&batch) {
                let single = idx.search(q, &req).unwrap();
                prop_assert_eq!(&single.hits, &resp.hits, "threads {}", threads);
            }
        }
    }
}

/// Deterministic word soup (splitmix64) for the store-level fused
/// proptests.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fused multi-query scans (PR 6) are **bit-identical** to the
    /// corresponding per-query single scans — for every available
    /// kernel, thread budgets 1/2/8, masked and unmasked stores, and
    /// the edge cases that stress the 8-row fused blocks: row counts
    /// off/at/past block boundaries, `Q ∈ {0, 1, …}`, `k` of 0 and
    /// larger than the store, dead rows sprinkled through blocks, and
    /// an all-dead store. Masked scans must never surface a dead row,
    /// and the fused work counters keep the scan-stats identity.
    #[test]
    fn fused_scans_equal_per_query_singles(
        seed in 0u64..500,
        n_pick in 0u64..8,
        bits_pick in 0u64..4,
        qn_pick in 0u64..4,
        k_pick in 0u64..4,
    ) {
        use gdim::core::scan::{available_kernels, KernelKind, Tombstones, VectorStore};
        use gdim::core::ExecConfig;

        let n = [0usize, 1, 7, 8, 9, 64, 130, 600][n_pick as usize];
        let bits = [1usize, 64, 256, 300][bits_pick as usize];
        let qn = [0usize, 1, 3, 9][qn_pick as usize];
        let k = [0usize, 1, 5, 200][k_pick as usize];
        let mut rng = seed ^ ((n as u64) << 32) ^ ((bits as u64) << 16) ^ (qn as u64);
        let stride = bits.div_ceil(64);
        let mut store = VectorStore::zeros(n, bits);
        for row in 0..n {
            for bit in 0..bits {
                if mix(&mut rng).is_multiple_of(3) {
                    store.set(row, bit);
                }
            }
        }
        let queries: Vec<Vec<u64>> = (0..qn)
            .map(|_| {
                let mut q: Vec<u64> = (0..stride).map(|_| mix(&mut rng)).collect();
                if !bits.is_multiple_of(64) {
                    if let Some(last) = q.last_mut() {
                        *last &= (1u64 << (bits % 64)) - 1;
                    }
                }
                q
            })
            .collect();
        let qrefs: Vec<&[u64]> = queries.iter().map(Vec::as_slice).collect();
        let w_sq: Vec<f64> = (0..bits).map(|b| ((b * 7 + 3) % 11) as f64 / 11.0).collect();

        // Unmasked, sprinkled-dead (hits block interiors and
        // boundaries), and all-dead tombstone shapes.
        let mut sprinkled = Tombstones::all_live(n);
        for i in 0..n {
            if mix(&mut rng).is_multiple_of(4) {
                sprinkled.mark_dead(i);
            }
        }
        let mut all_dead = Tombstones::all_live(n);
        for i in 0..n {
            all_dead.mark_dead(i);
        }
        let masks: [Option<&Tombstones>; 3] = [None, Some(&sprinkled), Some(&all_dead)];

        for threads in [1usize, 2, 8] {
            let exec = ExecConfig::new(threads);
            for dead in masks {
                for kernel in available_kernels() {
                    let fused = store.topk_binary_fused_kernel(&qrefs, k, dead, kernel, &exec);
                    prop_assert_eq!(fused.len(), qn);
                    for (q, (hits, stats)) in qrefs.iter().zip(&fused) {
                        let (single_hits, _) = store.topk_binary_kernel(q, k, dead, kernel);
                        prop_assert_eq!(hits, &single_hits,
                            "binary kernel {} threads {} masked {}",
                            kernel, threads, dead.is_some());
                        // The scan-stats identity covers scans that
                        // actually ran; k = 0 and all-dead stores
                        // short-circuit without touching rows.
                        if k > 0 && dead.is_none_or(|t| t.live_count() > 0) {
                            prop_assert_eq!(
                                stats.vectors_scanned + stats.early_abandoned
                                    + stats.tombstones_skipped,
                                n,
                                "fused binary stats identity (kernel {})", kernel
                            );
                        }
                        for &(id, _) in hits {
                            prop_assert!(
                                !dead.is_some_and(|t| t.is_dead(id as usize)),
                                "masked fused scan surfaced dead row {}", id
                            );
                        }
                    }
                }
                // Weighted fusion has no kernel parameter (the scalar
                // accumulation is the kernel); hits stay bit-identical
                // to singles even where multi-range counters diverge.
                let fused = store.topk_weighted_fused_masked(&qrefs, k, &w_sq, dead, &exec);
                for (q, (hits, stats)) in qrefs.iter().zip(&fused) {
                    let (single_hits, _) =
                        store.topk_weighted_kernel(q, k, &w_sq, dead, KernelKind::Scalar);
                    prop_assert_eq!(hits, &single_hits,
                        "weighted threads {} masked {}", threads, dead.is_some());
                    if k > 0 && dead.is_none_or(|t| t.live_count() > 0) {
                        prop_assert_eq!(
                            stats.vectors_scanned + stats.early_abandoned
                                + stats.tombstones_skipped,
                            n,
                            "fused weighted stats identity"
                        );
                    }
                    for &(id, _) in hits {
                        prop_assert!(
                            !dead.is_some_and(|t| t.is_dead(id as usize)),
                            "masked fused weighted scan surfaced dead row {}", id
                        );
                    }
                }
            }
        }
    }
}

/// The squared per-dimension weights a [`MappingKind::Weighted`]
/// request uses: the index's DSPM weights over the selected
/// dimensions, squared and normalized (mirrors the index-internal
/// derivation so the reference scan sees identical weights).
fn weighted_reference_w_sq(idx: &GraphIndex) -> Vec<f64> {
    let raw: Vec<f64> = idx
        .dimensions()
        .iter()
        .map(|&r| {
            let w = idx.weights()[r as usize];
            w * w
        })
        .collect();
    let total: f64 = raw.iter().sum();
    if total > 0.0 {
        raw.iter().map(|x| x / total).collect()
    } else {
        vec![1.0 / idx.dimensions().len().max(1) as f64; idx.dimensions().len()]
    }
}

#[test]
fn stats_counters_add_up_across_rankers() {
    let db = chem(25, 9);
    let idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(20));
    let q = idx.graph(2).unwrap().clone();
    for (req, expect_scan) in [
        (SearchRequest::new(5), true),
        (
            SearchRequest::new(5).ranker(Ranker::Refined { candidates: 8 }),
            true,
        ),
        (SearchRequest::new(5).ranker(Ranker::Exact), false),
    ] {
        let resp = idx.search(&q, &req).unwrap();
        let s = &resp.stats;
        if expect_scan {
            assert_eq!(
                s.candidates_scanned + s.early_abandoned,
                idx.len(),
                "{req:?}"
            );
            assert_eq!(s.vf2_calls + s.vf2_pruned, idx.dimensions().len());
            assert!(s.words_scanned > 0);
        } else {
            assert_eq!(s.candidates_scanned, 0);
            assert_eq!(s.words_scanned, 0);
            assert_eq!(s.vf2_calls, 0);
        }
    }
}

//! Equivalence contract of the optimized online query path (PR 3):
//! the flat SoA scan kernel must select and order **exactly** the hits
//! of the naive full-sort reference scan, and the containment-pruned
//! query mapping must set exactly the bits of the brute-force VF2
//! loop — for binary and weighted mappings, every edge-case `k`, and
//! every thread budget.

use proptest::prelude::*;

use gdim::prelude::*;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

/// The naive pre-optimization scan: full ranking (sorted over all `n`
/// entries) truncated to `k` — what `MappedDatabase::topk` did before
/// the bounded kernel. `ranking` / `ranking_with` are kept in-tree as
/// reference implementations precisely for this comparison.
fn naive_topk(mapped: &MappedDatabase, qvec: &Bitset, k: usize) -> Vec<(u32, f64)> {
    let mut full = mapped.ranking(qvec);
    full.truncate(k);
    full
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scan kernel == naive reference, hits and order, for both
    /// mappings and all edge-case `k`.
    #[test]
    fn scan_kernel_equals_naive_ranking(seed in 0u64..500, p in 8usize..40) {
        let n = 30;
        let db = chem(n, seed);
        let feats = mine(&db, &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4));
        let space = FeatureSpace::build(db.len(), feats);
        let m = space.num_features();
        let selected: Vec<u32> = (0..m.min(p) as u32).collect();
        let weights: Vec<f64> = (0..m).map(|r| ((r * 13 + 7) % 10) as f64 / 10.0).collect();
        for mapping in [Mapping::Binary, Mapping::Weighted(&weights)] {
            let mapped = MappedDatabase::new(&space, &selected, mapping).unwrap();
            for qi in [0usize, 7, 19] {
                let qvec = mapped.map_query(&db[qi]);
                for k in [0usize, 1, n, n + 5] {
                    let fast = mapped.topk(&qvec, k);
                    let naive = naive_topk(&mapped, &qvec, k);
                    prop_assert_eq!(&fast, &naive, "kind {:?}, query {}, k {}", mapped.kind(), qi, k);
                }
            }
        }
    }

    /// Containment-pruned query mapping is bit-identical to the
    /// unpruned per-feature VF2 loop, and the pruning counters add up.
    #[test]
    fn pruned_mapping_is_bit_identical(seed in 0u64..500) {
        let db = chem(18, seed);
        let idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(30));
        let unseen = chem(3, !seed);
        for q in idx.graphs().iter().take(3).chain(&unseen) {
            let (bits, stats) = idx.map_query_with_stats(q);
            prop_assert_eq!(&bits, &idx.mapped().map_query_unpruned(q));
            prop_assert_eq!(stats.vf2_calls + stats.vf2_pruned, idx.dimensions().len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The serving layer on top of the kernel: `Mapped` and `Refined`
    /// search hits are byte-identical to the naive reference scan for
    /// every thread budget, under both request mappings, and batch
    /// answers (which run the exec-chunked scan) equal single answers.
    #[test]
    fn search_rankers_equal_naive_scan_for_any_thread_budget(seed in 0u64..500) {
        let n = 20;
        let db = chem(n, seed ^ 0xbeef);
        let queries = chem(3, seed.wrapping_mul(31) + 1);
        for threads in [1usize, 2, 8] {
            let idx = GraphIndex::build(
                db.clone(),
                IndexOptions::default().with_dimensions(24).with_threads(threads),
            );
            for q in idx.graphs().iter().take(2).chain(&queries) {
                let qvec = idx.map_query(q);
                for mapping in [MappingKind::Binary, MappingKind::Weighted] {
                    let naive = match mapping {
                        MappingKind::Binary => naive_topk(idx.mapped(), &qvec, 6),
                        MappingKind::Weighted => {
                            // The weighted request is served from the same
                            // binary vectors with the DSPM-derived weights;
                            // rebuild that reference through the public
                            // reference scan.
                            let mut full = idx.mapped().ranking_with(
                                &qvec,
                                &weighted_reference_w_sq(&idx),
                            );
                            full.truncate(6);
                            full
                        }
                    };
                    let req = SearchRequest::topk(6).with_mapping(mapping);
                    let resp = idx.search(q, &req).unwrap();
                    let got: Vec<(u32, f64)> =
                        resp.hits.iter().map(|h| (h.id.get(), h.distance)).collect();
                    prop_assert_eq!(&got, &naive, "threads {}, mapping {:?}", threads, mapping);
                }
            }
            // Refined candidate generation rides the same kernel: with
            // candidates == n every candidate is verified, so it must
            // equal the Exact ranker hit-for-hit.
            let q = &queries[0];
            let refined = idx
                .search(q, &SearchRequest::topk(4).with_ranker(Ranker::Refined { candidates: n }))
                .unwrap();
            let exact = idx
                .search(q, &SearchRequest::topk(4).with_ranker(Ranker::Exact))
                .unwrap();
            prop_assert_eq!(refined.hits, exact.hits);

            // Batch answers equal single answers.
            let req = SearchRequest::topk(5);
            let batch = idx.search_batch(&queries, &req).unwrap();
            for (q, resp) in queries.iter().zip(&batch) {
                let single = idx.search(q, &req).unwrap();
                prop_assert_eq!(&single.hits, &resp.hits, "threads {}", threads);
            }
        }
    }
}

/// The squared per-dimension weights a [`MappingKind::Weighted`]
/// request uses: the index's DSPM weights over the selected
/// dimensions, squared and normalized (mirrors the index-internal
/// derivation so the reference scan sees identical weights).
fn weighted_reference_w_sq(idx: &GraphIndex) -> Vec<f64> {
    let raw: Vec<f64> = idx
        .dimensions()
        .iter()
        .map(|&r| {
            let w = idx.weights()[r as usize];
            w * w
        })
        .collect();
    let total: f64 = raw.iter().sum();
    if total > 0.0 {
        raw.iter().map(|x| x / total).collect()
    } else {
        vec![1.0 / idx.dimensions().len().max(1) as f64; idx.dimensions().len()]
    }
}

#[test]
fn stats_counters_add_up_across_rankers() {
    let db = chem(25, 9);
    let idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(20));
    let q = idx.graph(2).unwrap().clone();
    for (req, expect_scan) in [
        (SearchRequest::topk(5), true),
        (
            SearchRequest::topk(5).with_ranker(Ranker::Refined { candidates: 8 }),
            true,
        ),
        (SearchRequest::topk(5).with_ranker(Ranker::Exact), false),
    ] {
        let resp = idx.search(&q, &req).unwrap();
        let s = &resp.stats;
        if expect_scan {
            assert_eq!(
                s.candidates_scanned + s.early_abandoned,
                idx.len(),
                "{req:?}"
            );
            assert_eq!(s.vf2_calls + s.vf2_pruned, idx.dimensions().len());
            assert!(s.words_scanned > 0);
        } else {
            assert_eq!(s.candidates_scanned, 0);
            assert_eq!(s.words_scanned, 0);
            assert_eq!(s.vf2_calls, 0);
        }
    }
}

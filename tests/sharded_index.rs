//! Equivalence contract of the sharded index (gdim-shard): a
//! [`ShardedIndex`] must answer **bit-identically** to a single
//! [`GraphIndex`] over the same database — hits, order, distances —
//! for every ranker, mapping, shard count ∈ {1, 2, 8}, and thread
//! budget ∈ {1, 2, 8}, including after online insert/remove, after
//! per-shard (compaction) rebuilds, and after a full re-mine rebuild.
//! Sharded hits are translated through each row's sequence number,
//! which by construction equals the row id of the unsharded index
//! grown by the same operations. Also pins the manifest save → load →
//! save byte-identical round trip.

use proptest::prelude::*;

use gdim::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const THREADS: [usize; 3] = [1, 2, 8];

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn opts() -> IndexOptions {
    IndexOptions::default().with_dimensions(16)
}

/// Requests covering the ranker × mapping spectrum. The approximate
/// ranker is included with `ef` far above the database sizes used
/// here: the beams are exhaustive at that width, so even the one
/// deliberately inexact ranker must answer bit-identically to the
/// unsharded index in these tests.
fn requests() -> Vec<SearchRequest> {
    vec![
        SearchRequest::new(6),
        SearchRequest::new(6).mapping(MappingKind::Weighted),
        SearchRequest::new(4).ranker(Ranker::Refined { candidates: 7 }),
        SearchRequest::new(4).ranker(Ranker::Exact),
        SearchRequest::new(6).ranker(Ranker::Approx {
            ef: 64,
            verify: None,
        }),
        SearchRequest::new(4)
            .ranker(Ranker::Approx {
                ef: 64,
                verify: Some(7),
            })
            .mapping(MappingKind::Weighted),
    ]
}

/// Sharded hits as `(seq, distance)` — the sharded row's sequence
/// number is exactly the id the unsharded index gives the same row.
fn sharded_hits(idx: &ShardedIndex, q: &Graph, req: &SearchRequest) -> Vec<(u64, f64)> {
    idx.search(q, req)
        .unwrap()
        .hits
        .iter()
        .map(|h| (idx.seq_of(h.id).unwrap(), h.distance))
        .collect()
}

/// Unsharded hits as `(id, distance)` in the same coordinates.
fn flat_hits(idx: &GraphIndex, q: &Graph, req: &SearchRequest) -> Vec<(u64, f64)> {
    idx.search(q, req)
        .unwrap()
        .hits
        .iter()
        .map(|h| (h.id.get() as u64, h.distance))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fresh build: every shard count and thread budget answers every
    /// request bit-identically to the unsharded index.
    #[test]
    fn fresh_build_matches_unsharded_for_all_shard_and_thread_counts(seed in 0u64..500) {
        let db = chem(14, seed);
        let queries = chem(2, !seed);
        let mut flat = GraphIndex::build(db.clone(), opts());
        for shards in SHARD_COUNTS {
            let mut sharded = ShardedIndex::build(
                db.clone(),
                ShardedOptions::new(shards).with_index(opts()),
            );
            prop_assert_eq!(sharded.shard_count(), shards);
            prop_assert_eq!(sharded.len(), flat.len());
            for threads in THREADS {
                sharded.set_exec(ExecConfig::new(threads));
                flat.set_exec(ExecConfig::new(threads));
                for q in queries.iter().chain(db.iter().take(2)) {
                    for req in requests() {
                        prop_assert_eq!(
                            sharded_hits(&sharded, q, &req),
                            flat_hits(&flat, q, &req),
                            "shards {}, threads {}, {:?}", shards, threads, req
                        );
                    }
                }
                // Batch answers equal single answers, query for query.
                let req = SearchRequest::new(5);
                let batch = sharded.search_batch(&queries, &req).unwrap();
                for (q, resp) in queries.iter().zip(&batch) {
                    let single = sharded.search(q, &req).unwrap();
                    prop_assert_eq!(&single.hits, &resp.hits);
                }
            }
        }
    }

    /// Online churn: the same inserts and removes applied to both
    /// sides stay bit-identical — before any rebuild, after per-shard
    /// compaction rebuilds (which must not change answers at all), and
    /// after a full re-mine rebuild on both sides.
    #[test]
    fn churned_index_matches_unsharded_through_rebuilds(seed in 0u64..500) {
        let base = chem(12, seed);
        let extra = chem(5, seed.wrapping_mul(31) ^ 0xBEEF);
        let queries = chem(2, !seed);
        let policy = RebuildPolicy { max_inserts: 3, max_tombstone_frac: 0.2 };
        let build_opts = opts().with_rebuild_policy(policy);
        for shards in SHARD_COUNTS {
            let mut flat = GraphIndex::build(base.clone(), build_opts.clone());
            let mut sharded = ShardedIndex::build(
                base.clone(),
                ShardedOptions::new(shards).with_index(build_opts.clone()),
            );
            // Inserts: routed to the least-loaded shard, but the row's
            // sequence number always equals the unsharded id.
            for g in &extra {
                let flat_id = flat.insert(g.clone());
                let gid = sharded.insert(g.clone());
                prop_assert_eq!(sharded.seq_of(gid).unwrap(), flat_id.get() as u64);
            }
            // Removes: one base row, one inserted row.
            let dead = [2u64, base.len() as u64 + 1];
            for &seq in &dead {
                let gid = sharded.id_for_seq(seq).unwrap();
                prop_assert!(sharded.remove(gid).unwrap());
                prop_assert!(flat.remove(GraphId(seq as u32)).unwrap());
            }
            prop_assert_eq!(sharded.live_len(), flat.live_len());
            for q in &queries {
                for req in requests() {
                    prop_assert_eq!(
                        sharded_hits(&sharded, q, &req),
                        flat_hits(&flat, q, &req),
                        "pre-rebuild, shards {}, {:?}", shards, req
                    );
                }
            }
            // Per-shard compaction: only dirty shards rebuild, against
            // the retained global selection — answers must not move
            // (the unsharded side does nothing).
            prop_assert!(!sharded.stale_shards().is_empty(), "policy must trip");
            let rebuilt = sharded.rebuild_stale_shards();
            prop_assert!(rebuilt > 0);
            prop_assert!(sharded.stale_shards().is_empty());
            prop_assert!(sharded.epoch() >= 1, "compaction advances the shard epoch");
            for q in &queries {
                for req in requests() {
                    prop_assert_eq!(
                        sharded_hits(&sharded, q, &req),
                        flat_hits(&flat, q, &req),
                        "post-compaction, shards {}, {:?}", shards, req
                    );
                }
            }
            // Full rebuild on both sides: re-mine over the live graphs
            // (same sequence order), bit-identical again.
            sharded.rebuild();
            flat.rebuild();
            prop_assert_eq!(sharded.len(), flat.len());
            prop_assert_eq!(sharded.live_len(), sharded.len());
            for q in queries.iter().chain(extra.iter().take(1)) {
                for req in requests() {
                    prop_assert_eq!(
                        sharded_hits(&sharded, q, &req),
                        flat_hits(&flat, q, &req),
                        "post-full-rebuild, shards {}, {:?}", shards, req
                    );
                }
            }
        }
    }

    /// Persistence: save_dir → load_dir → save_dir reproduces every
    /// file byte-identically, and the reloaded index answers exactly
    /// like the saved one — including for a dirty (inserted + removed)
    /// index.
    #[test]
    fn manifest_roundtrip_is_byte_identical(seed in 0u64..500) {
        let base = chem(10, seed);
        let mut sharded = ShardedIndex::build(
            base.clone(),
            ShardedOptions::new(3).with_index(opts()),
        );
        for g in chem(2, seed ^ 0xF00D) {
            sharded.insert(g);
        }
        let gid = sharded.id_for_seq(4).unwrap();
        prop_assert!(sharded.remove(gid).unwrap());

        let root = std::env::temp_dir().join(format!(
            "gdim_shard_roundtrip_{}_{seed}",
            std::process::id()
        ));
        let dir_a = root.join("a");
        let dir_b = root.join("b");
        sharded.save_dir(&dir_a).unwrap();
        let mut reloaded = ShardedIndex::load_dir(&dir_a).unwrap();
        reloaded.save_dir(&dir_b).unwrap();
        // Byte-identical: the manifest and every shard file.
        let mut names: Vec<String> = std::fs::read_dir(&dir_a)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        prop_assert_eq!(names.len(), 1 + sharded.shard_count());
        for name in &names {
            let a = std::fs::read(dir_a.join(name)).unwrap();
            let b = std::fs::read(dir_b.join(name)).unwrap();
            prop_assert_eq!(a, b, "file {} drifted across the round trip", name);
        }
        // Identical answers (the exec budget is serving-machine state).
        reloaded.set_exec(*sharded.exec());
        prop_assert_eq!(reloaded.shard_count(), sharded.shard_count());
        prop_assert_eq!(reloaded.live_len(), sharded.live_len());
        for q in base.iter().take(2) {
            for req in requests() {
                prop_assert_eq!(
                    sharded_hits(&reloaded, q, &req),
                    sharded_hits(&sharded, q, &req),
                    "{:?}", req
                );
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn composed_ids_route_and_bad_ids_are_typed_errors() {
    let db = chem(10, 77);
    let mut idx = ShardedIndex::build(db, ShardedOptions::new(4).with_index(opts()));
    assert_eq!(idx.shard_bits(), 2);
    // Every row's composed id resolves to its own graph and seq.
    for seq in 0..10u64 {
        let gid = idx.id_for_seq(seq).unwrap();
        assert_eq!(idx.seq_of(gid).unwrap(), seq);
        let (s, local) = idx.split_id(gid);
        assert_eq!(idx.compose_id(s, local), gid);
    }
    // Unknown ids and shards are errors, not panics.
    assert!(matches!(
        idx.graph(GraphId(u32::MAX)),
        Err(GdimError::GraphOutOfRange { .. })
    ));
    assert!(matches!(
        idx.remove(GraphId(u32::MAX)),
        Err(GdimError::GraphOutOfRange { .. })
    ));
    assert!(matches!(
        idx.shard(ShardId(9)),
        Err(GdimError::ShardOutOfRange { id: 9, shards: 4 })
    ));
    assert!(matches!(
        idx.rebuild_shard(ShardId(9)),
        Err(GdimError::ShardOutOfRange { .. })
    ));
}

#[test]
fn shard_rebuild_snapshot_goes_stale_on_later_mutation() {
    let db = chem(10, 99);
    let mut idx = ShardedIndex::build(db, ShardedOptions::new(2).with_index(opts()));
    let gid = idx.id_for_seq(0).unwrap();
    idx.remove(gid).unwrap();
    let (owner, _) = idx.split_id(gid);

    // A mutation in the same shard after the snapshot: refused.
    let task = idx.spawn_shard_rebuild(owner).unwrap();
    idx.remove(idx.id_for_seq(1).unwrap()).unwrap(); // seq 1 lives in shard 0 too
    match idx.install_shard(task) {
        Err(GdimError::StaleRebuild { .. }) => {}
        other => panic!("expected StaleRebuild, got {other:?}"),
    }

    // A quiet shard installs: tombstones compact away, answers stay.
    let q = idx.shard_graphs(ShardId(1)).unwrap()[0].clone();
    let before = sharded_hits(&idx, &q, &SearchRequest::new(5));
    let task = idx.spawn_shard_rebuild(owner).unwrap();
    assert!(idx.install_shard(task).unwrap());
    assert_eq!(idx.shard(owner).unwrap().tombstone_count(), 0);
    assert_eq!(sharded_hits(&idx, &q, &SearchRequest::new(5)), before);

    // Full-rebuild snapshots are invalidated by any later event too.
    let task = idx.spawn_rebuild();
    idx.insert(chem(1, 5)[0].clone());
    match idx.install(task) {
        Err(GdimError::StaleRebuild { .. }) => {}
        other => panic!("expected StaleRebuild, got {other:?}"),
    }
    let task = idx.spawn_rebuild();
    assert!(idx.install(task).unwrap());
}

#[test]
fn empty_database_shards_and_serves() {
    let idx = ShardedIndex::build(Vec::new(), ShardedOptions::new(4).with_index(opts()));
    assert!(idx.is_empty());
    assert_eq!(idx.shard_count(), 4);
    let q = chem(1, 1).remove(0);
    for req in requests() {
        let resp = idx.search(&q, &req).unwrap();
        assert!(resp.hits.is_empty(), "{req:?}");
    }
}

//! Correctness contract of the observability histogram (PR 10): the
//! log₂-bucket recorder must (1) make merged per-shard snapshots
//! indistinguishable from one recorder that saw every sample, (2) put
//! boundary values (0, powers of two, `u64::MAX`) in well-defined
//! buckets, and (3) stay exact under concurrent recording — counters
//! are relaxed atomics, so nothing may be lost or double-counted.

use proptest::prelude::*;

use gdim::obs::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard-merge exactness: recording each value into one of K
    /// "shard" histograms and merging the snapshots gives *exactly*
    /// the snapshot of a single recorder that saw all values — same
    /// buckets, same count, same sum. This is what makes scatter-
    /// gather metrics trustworthy.
    #[test]
    fn merged_shard_snapshots_equal_a_single_recorder(
        values in proptest::collection::vec(any::<u64>(), 0..=300),
        shards in 1usize..=6,
    ) {
        let single = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::new();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, single.snapshot());
    }

    /// Quantiles never exceed the bucket upper bound that contains
    /// them, and are monotone in q.
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(any::<u64>(), 1..=200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let qs = [s.quantile(0.0), s.p50(), s.p90(), s.p99(), s.p999(), s.quantile(1.0)];
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "{qs:?}");
        }
    }
}

/// Bucket boundaries: 0 is its own bucket, each power of two starts a
/// new one, and `u64::MAX` lands in the final bucket instead of
/// overflowing.
#[test]
fn boundary_values_land_in_distinct_well_defined_buckets() {
    let h = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.buckets[0], 1, "zero has its own bucket");
    assert_eq!(s.buckets[1], 1, "one starts the first real bucket");
    assert_eq!(
        s.buckets[HISTOGRAM_BUCKETS - 1],
        1,
        "u64::MAX lands in the top bucket"
    );
    assert_eq!(s.count, 3);
    // Adjacent powers of two never share a bucket: 2^k closes the
    // [2^(k-1), 2^k - 1] bucket and opens the next.
    for k in 1..63u32 {
        let h = Histogram::new();
        h.record((1u64 << k) - 1);
        h.record(1u64 << k);
        let s = h.snapshot();
        assert_eq!(
            s.buckets.iter().filter(|&&c| c == 1).count(),
            2,
            "2^{k}-1 and 2^{k} must split"
        );
    }
}

/// Concurrent recording loses nothing: 8 threads hammer one histogram
/// and the final snapshot accounts for every sample exactly — count,
/// sum, and per-bucket totals all match the deterministic expectation.
#[test]
fn eight_threads_record_without_losing_samples() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = std::sync::Arc::new(Histogram::new());
    let expected = Histogram::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            expected.record(t * 1_000 + i);
        }
    }
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * 1_000 + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let got = h.snapshot();
    assert_eq!(got.count, THREADS * PER_THREAD);
    assert_eq!(got, expected.snapshot(), "bit-exact under contention");
}

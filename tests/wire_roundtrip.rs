//! Wire-faithfulness contract of the serving protocol (PR 7): a
//! serialize → transmit → parse cycle through the hand-rolled JSON
//! layer must reproduce `SearchRequest` and `SearchResponse` values
//! **exactly** — every option, every counter, and every distance bit
//! for bit — and graphs must survive the `{"v", "e"}` encoding
//! unchanged.

use std::time::Duration;

use proptest::prelude::*;

use gdim::core::scan::KernelKind;
use gdim::prelude::*;
use gdim::server::wire::{
    graph_from_json, graph_to_json, request_from_json, request_to_json, response_from_json,
    response_to_json,
};

fn reparse(j: &Json) -> Json {
    gdim::server::parse_json(&j.to_string_compact()).expect("server JSON reparses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request shape round-trips exactly: all four rankers
    /// (approximate with and without verification), both mappings,
    /// budget present and absent, every k.
    #[test]
    fn search_requests_round_trip_exactly(
        k in 0usize..200,
        ranker_pick in 0u8..5,
        candidates in 1usize..500,
        ef in 1usize..2000,
        weighted in any::<bool>(),
        budget in any::<u64>(),
        with_budget in any::<bool>(),
    ) {
        let mut req = SearchRequest::new(k).ranker(match ranker_pick {
            0 => Ranker::Mapped,
            1 => Ranker::Exact,
            2 => Ranker::Refined { candidates },
            3 => Ranker::Approx { ef, verify: None },
            _ => Ranker::Approx { ef, verify: Some(candidates) },
        });
        if weighted {
            req = req.mapping(MappingKind::Weighted);
        }
        if with_budget {
            req = req.budget(budget);
        }
        let back = request_from_json(&reparse(&request_to_json(&req))).unwrap();
        prop_assert_eq!(back, req);
    }

    /// Responses round-trip with bit-identical distances — including
    /// adversarial bit patterns, negative zero, and subnormals — and
    /// exact stats counters and durations.
    #[test]
    fn search_responses_round_trip_bit_for_bit(
        raw_hits in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..=24),
        counters in proptest::collection::vec(any::<u64>(), 11..=11),
        stage_ns in proptest::collection::vec(any::<u64>(), 7..=7),
        match_ns in any::<u64>(),
        wall_ns in any::<u64>(),
        kernel_pick in 0u8..5,
        fused in any::<bool>(),
        approximate in any::<bool>(),
    ) {
        let hits: Vec<Hit> = raw_hits
            .iter()
            .map(|&(id, bits)| Hit { id: GraphId(id), distance: f64::from_bits(bits) })
            .filter(|h| h.distance.is_finite()) // non-finite is not a wire value
            .collect();
        let stats = SearchStats {
            candidates_scanned: counters[0] as usize,
            early_abandoned: counters[1] as usize,
            tombstones_skipped: counters[2] as usize,
            words_scanned: counters[3] as usize,
            epoch: counters[4],
            live_graphs: counters[5] as usize,
            vf2_calls: counters[6] as usize,
            vf2_pruned: counters[7] as usize,
            mcs_calls: counters[8] as usize,
            match_time: Duration::from_nanos(match_ns),
            wall_time: Duration::from_nanos(wall_ns),
            kernel: match kernel_pick {
                0 => None,
                1 => Some(KernelKind::Scalar),
                2 => Some(KernelKind::Unrolled),
                3 => Some(KernelKind::Avx2),
                _ => Some(KernelKind::Avx512),
            },
            fused_batch: fused,
            approximate,
            ef: counters[9] as usize,
            beam_visited: counters[10] as usize,
            stages: {
                let mut s = gdim::obs::StageTimes::new();
                for (stage, &ns) in gdim::obs::Stage::ALL.iter().zip(&stage_ns) {
                    s.add_ns(*stage, ns);
                }
                s
            },
        };
        let resp = SearchResponse { hits, stats };
        let back = response_from_json(&reparse(&response_to_json(&resp))).unwrap();
        prop_assert_eq!(back.hits.len(), resp.hits.len());
        for (a, b) in back.hits.iter().zip(&resp.hits) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(
                a.distance.to_bits(), b.distance.to_bits(),
                "distance bits: {} vs {}", a.distance, b.distance
            );
        }
        let (s, t) = (&back.stats, &resp.stats);
        prop_assert_eq!(s.candidates_scanned, t.candidates_scanned);
        prop_assert_eq!(s.early_abandoned, t.early_abandoned);
        prop_assert_eq!(s.tombstones_skipped, t.tombstones_skipped);
        prop_assert_eq!(s.words_scanned, t.words_scanned);
        prop_assert_eq!(s.epoch, t.epoch);
        prop_assert_eq!(s.live_graphs, t.live_graphs);
        prop_assert_eq!(s.vf2_calls, t.vf2_calls);
        prop_assert_eq!(s.vf2_pruned, t.vf2_pruned);
        prop_assert_eq!(s.mcs_calls, t.mcs_calls);
        prop_assert_eq!(s.match_time, t.match_time);
        prop_assert_eq!(s.wall_time, t.wall_time);
        prop_assert_eq!(s.kernel, t.kernel);
        prop_assert_eq!(s.fused_batch, t.fused_batch);
        prop_assert_eq!(s.approximate, t.approximate);
        prop_assert_eq!(s.ef, t.ef);
        prop_assert_eq!(s.beam_visited, t.beam_visited);
        prop_assert_eq!(s.stages, t.stages, "stage ns are exact over the wire");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated molecule-like graphs survive the `{"v", "e"}` wire
    /// encoding with identical labels and edges.
    #[test]
    fn graphs_round_trip_through_the_wire_encoding(seed in 0u64..1000) {
        for g in gdim::datagen::chem_db(4, &gdim::datagen::ChemConfig::default(), seed) {
            let back = graph_from_json(&reparse(&graph_to_json(&g))).unwrap();
            prop_assert_eq!(back.vlabels(), g.vlabels());
            prop_assert_eq!(back.edges(), g.edges());
        }
    }
}

//! End-to-end protocol contract of the network serving layer (PR 7):
//! a real [`GdimServer`] on an ephemeral port, driven by raw TCP
//! clients — the happy path, keep-alive reuse, oversized bodies, torn
//! requests, unknown routes, and concurrent clients — with every
//! served answer pinned **bit-identical** to the in-process
//! [`ServingHandle`] answer for the same query.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use gdim::prelude::*;
use gdim::server::wire::response_from_json;

fn chem(n: usize, seed: u64) -> Vec<Graph> {
    gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), seed)
}

fn start_server(n: usize, seed: u64) -> GdimServer {
    let index = ShardedIndex::build(
        chem(n, seed),
        ShardedOptions::new(2).with_index(IndexOptions::default().with_dimensions(10)),
    );
    let cfg = ServerConfig::new()
        .with_workers(4)
        .with_poll_interval(Duration::from_millis(20));
    GdimServer::start(ServingHandle::new(index), cfg).expect("bind ephemeral port")
}

fn search_body(id: u32, k: usize) -> Json {
    Json::obj([
        ("query", Json::obj([("id", Json::U64(id as u64))])),
        ("k", Json::U64(k as u64)),
    ])
}

/// Reads exactly one HTTP response off `stream` (head + sized body);
/// returns `(status, connection_header, body)`.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "EOF before a full response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in head.split("\r\n").skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => content_length = value.trim().parse().unwrap(),
            "connection" => connection = value.trim().to_string(),
            _ => {}
        }
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    (status, connection, String::from_utf8(body).unwrap())
}

fn post_bytes(path: &str, body: &str, extra_headers: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n{extra_headers}\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Every served hit must equal the in-process answer bit for bit.
fn assert_bit_identical(served_json: &Json, snap: &ShardedIndex, id: u32, k: usize) {
    let served = response_from_json(served_json).expect("parse served response");
    let local = snap
        .search(snap.graph(GraphId(id)).unwrap(), &SearchRequest::new(k))
        .unwrap();
    assert_eq!(served.hits.len(), local.hits.len(), "hit count, query {id}");
    for (a, b) in served.hits.iter().zip(&local.hits) {
        assert_eq!(a.id, b.id, "hit id, query {id}");
        assert_eq!(
            a.distance.to_bits(),
            b.distance.to_bits(),
            "distance bits, query {id}"
        );
    }
}

#[test]
fn served_answers_are_bit_identical_to_the_serving_handle() {
    let server = start_server(20, 11);
    let snap = server.handle().snapshot();
    let mut client = Client::connect(server.addr()).unwrap();
    for seq in [0u64, 7, 19] {
        let id = snap.id_for_seq(seq).unwrap().get();
        let (status, j) = client.post("/search", &search_body(id, 5)).unwrap();
        assert_eq!(status, 200, "{j:?}");
        assert_bit_identical(&j, &snap, id, 5);
    }
    server.shutdown();
}

#[test]
fn keep_alive_carries_multiple_requests_on_one_connection() {
    let server = start_server(16, 12);
    let snap = server.handle().snapshot();
    let id = snap.id_for_seq(3).unwrap().get();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Two requests back to back on the same socket.
    for round in 0..2 {
        let body = search_body(id, 3).to_string_compact();
        stream.write_all(&post_bytes("/search", &body, "")).unwrap();
        let (status, connection, payload) = read_one_response(&mut stream);
        assert_eq!(status, 200, "round {round}");
        assert_eq!(connection, "keep-alive", "round {round}");
        let j = gdim::server::parse_json(&payload).unwrap();
        assert_bit_identical(&j, &snap, id, 3);
    }
    // `Connection: close` is honored: the reply says close and the
    // server hangs up.
    let body = search_body(id, 3).to_string_compact();
    stream
        .write_all(&post_bytes("/search", &body, "connection: close\r\n"))
        .unwrap();
    let (status, connection, _) = read_one_response(&mut stream);
    assert_eq!((status, connection.as_str()), (200, "close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after a closed exchange");
    server.shutdown();
}

#[test]
fn oversized_declared_bodies_answer_413_without_reading_them() {
    let server = start_server(12, 13);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Declare 2 MiB (over the 1 MiB default cap) but send nothing —
    // the refusal must come from the declaration alone.
    stream
        .write_all(b"POST /search HTTP/1.1\r\nhost: t\r\ncontent-length: 2097152\r\n\r\n")
        .unwrap();
    let (status, connection, payload) = read_one_response(&mut stream);
    assert_eq!(status, 413);
    assert_eq!(connection, "close");
    let j = gdim::server::parse_json(&payload).unwrap();
    assert_eq!(
        j.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("body_too_large")
    );
    server.shutdown();
}

#[test]
fn torn_requests_answer_400_torn_request() {
    let server = start_server(12, 14);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Half a request head, then EOF on the write side.
    stream
        .write_all(b"POST /search HTTP/1.1\r\ncontent-le")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let (status, _, payload) = read_one_response(&mut stream);
    assert_eq!(status, 400);
    let j = gdim::server::parse_json(&payload).unwrap();
    assert_eq!(
        j.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("torn_request")
    );
    server.shutdown();
}

#[test]
fn unknown_routes_answer_404_with_a_stable_code() {
    let server = start_server(12, 15);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /no/such/route HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, _, payload) = read_one_response(&mut stream);
    assert_eq!(status, 404);
    let j = gdim::server::parse_json(&payload).unwrap();
    assert_eq!(
        j.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_route")
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_bit_identical_answers() {
    let server = start_server(24, 16);
    let snap = server.handle().snapshot();
    let addr = server.addr();
    let ids: Vec<u32> = (0..24).map(|s| snap.id_for_seq(s).unwrap().get()).collect();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let ids = ids.clone();
            let snap = snap.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..10 {
                    let id = ids[(t * 7 + round * 3) % ids.len()];
                    let (status, j) = client.post("/search", &search_body(id, 4)).unwrap();
                    assert_eq!(status, 200, "thread {t} round {round}: {j:?}");
                    assert_bit_identical(&j, &snap, id, 4);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_without_dropping_a_full_request() {
    let server = start_server(12, 17);
    let snap = server.handle().snapshot();
    let id = snap.id_for_seq(0).unwrap().get();
    let mut client = Client::connect(server.addr()).unwrap();
    // A request right before the drain still answers.
    let (status, _) = client.post("/search", &search_body(id, 3)).unwrap();
    assert_eq!(status, 200);
    let (status, j) = client.post("/shutdown", &Json::Null).unwrap();
    assert_eq!(
        (status, j.get("stopping").and_then(Json::as_bool)),
        (200, Some(true))
    );
    server.wait();
    server.shutdown(); // must not hang
}

//! Vendored, dependency-free stand-in for the subset of `criterion`
//! this workspace uses (see `vendor/README.md`). Bench targets compile
//! and run against it: each benchmark executes a small fixed number of
//! timed iterations and prints a single median line — enough to smoke
//! the bench surface and get coarse numbers, without the statistical
//! machinery of real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque "prevent the optimizer from deleting this" hint.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Iteration driver handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `f` over a fixed number of samples and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then `samples` timed calls.
        black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const SHIM_SAMPLES: usize = 3;

fn report(group: Option<&str>, id: &str, median: Duration) {
    match group {
        Some(g) => println!("bench {g}/{id}: median {median:?} (vendored criterion shim)"),
        None => println!("bench {id}: median {median:?} (vendored criterion shim)"),
    }
}

impl Criterion {
    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: SHIM_SAMPLES,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(None, &id.id, b.median);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            samples: SHIM_SAMPLES,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (honoured loosely: the shim caps samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 5);
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(Some(&self.name), &id.id, b.median);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.id, b.median);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}

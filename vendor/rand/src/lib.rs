//! Vendored, dependency-free stand-in for the subset of the `rand`
//! crate this workspace uses. The build container has no network access
//! to crates.io, so the workspace ships this shim instead (see
//! `vendor/README.md`).
//!
//! Covered surface: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64 — *not* the upstream ChaCha12, so streams differ from
//! real `rand`, but every consumer in this workspace only relies on
//! determinism for a fixed seed), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen`] / [`Rng::gen_bool`],
//! [`RngCore::next_u64`], and [`seq::SliceRandom`].

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` state word.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample from the type's "standard" distribution (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo draw: bias is negligible for the small spans
                // used in this workspace and keeps the shim branch-free.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit: f64 = Standard::sample(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit: f64 = Standard::sample(rng);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: **xoshiro256++** with
    /// SplitMix64 seeding. Deterministic for a fixed seed; not
    /// stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        // gen() draws from [0, 1), so p = 1.0 always succeeds.
        assert!(rng.gen_bool(1.0));
    }
}

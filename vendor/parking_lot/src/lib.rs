//! Vendored stand-in for the subset of `parking_lot` this workspace
//! uses: [`RwLock`] and [`Mutex`] with the panic-free (non-poisoning)
//! guard API. Backed by `std::sync`; a poisoned std lock is recovered
//! transparently, matching parking_lot's "no poisoning" semantics.

use std::sync::PoisonError;

/// Reader–writer lock with parking_lot's `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}

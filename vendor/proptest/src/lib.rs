//! Vendored, dependency-free stand-in for the subset of `proptest`
//! this workspace uses. The build container cannot reach crates.io, so
//! property tests run against this shim instead (see
//! `vendor/README.md`).
//!
//! Supported: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!`, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], and [`sample::Index`].
//!
//! Deliberately **not** supported: shrinking (a failing case panics
//! with the concrete inputs via `Debug`-free messages), persistence
//! files, and custom runners. Cases are generated deterministically
//! from a seed derived from the test's module path and name, so a
//! failure always reproduces.

pub mod test_runner {
    //! Config, error type and the deterministic case generator.

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not a failure.
        Reject(String),
        /// `prop_assert*!` failed — the whole test fails.
        Fail(String),
    }

    /// Deterministic xoshiro256++ generator used for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from a single word.
        pub fn deterministic(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.next_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Index sampling (`prop::sample::Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A length-agnostic index: resolve with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// This index mapped into `0..len` (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! `proptest::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments for [`vec`](vec()).
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max == self.min {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access (`prop::sample::Index`, `prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// FNV-1a over the test path — the per-test base seed.
#[doc(hidden)]
pub fn __fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The property-test macro. See the crate docs for the supported
/// subset; the grammar matches upstream `proptest!` for the forms used
/// in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base_seed =
                $crate::__fnv(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u64 = 0;
            let mut attempt: u64 = 0;
            while passed < config.cases {
                attempt += 1;
                if rejected > (config.cases as u64) * 16 + 64 {
                    panic!(
                        "proptest {}: too many rejected cases ({rejected})",
                        stringify!($name)
                    );
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    base_seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => rejected += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest {} failed (attempt {attempt}, seed {base_seed:#x}): {msg}",
                        stringify!($name)
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `assert_ne!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current generated case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..=4, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_and_map_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                prop::collection::vec(0u32..10, n).prop_map(move |v| (n, v))
            })
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn index_resolves(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failing_case_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is never > 100");
            }
        }
        always_fails();
    }
}

//! # gdim — leveraging graph dimensions in online graph search
//!
//! A full reproduction of *"Leveraging Graph Dimensions in Online Graph
//! Search"* (Yuanyuan Zhu, Jeffrey Xu Yu, Lu Qin; PVLDB 8(1), 2014) as
//! a reusable Rust library.
//!
//! Graph similarity queries are expensive because the underlying
//! operations (maximum common subgraph, graph edit distance) are
//! NP-hard. The paper's answer is a **DS-preserved mapping**: choose a
//! small set of frequent subgraphs as *dimensions*, map every database
//! graph — and any unseen query — to a binary vector over those
//! dimensions, and answer top-k similarity queries with cheap Euclidean
//! distances that approximate the true MCS-based dissimilarity
//! (*distance-preserving*), also for graphs never seen at index time
//! (*structure-preserving*).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — labeled graphs, VF2, canonical DFS codes, MCS, δ1/δ2;
//! * [`mining`] — gSpan frequent subgraph mining;
//! * [`linalg`] — the dense linear-algebra substrate;
//! * [`exec`] — the shared parallel-execution runtime (`ExecConfig`,
//!   deterministic chunked fan-out) every parallel kernel runs on;
//! * [`datagen`] — chemistry-like and GraphGen-like dataset generators;
//! * [`core`] — DSPM / DSPMap dimension selection, top-k queries,
//!   quality measures, fingerprint benchmark;
//! * [`baselines`] — the seven comparison selectors of the paper's §6.
//!
//! ## Quickstart
//!
//! ```
//! use gdim::prelude::*;
//!
//! // A graph database (here: generated molecule-like graphs).
//! let db = gdim::datagen::chem_db(80, &gdim::datagen::ChemConfig::default(), 7);
//!
//! // 1. Mine frequent subgraph features (gSpan).
//! let features = gdim::mining::mine(
//!     &db,
//!     &gdim::mining::MinerConfig::new(gdim::mining::Support::Relative(0.1)).with_max_edges(4),
//! );
//! let space = FeatureSpace::build(db.len(), features);
//!
//! // 2. Pairwise dissimilarities (δ2 of Eq. 2) and DSPM dimension selection.
//! let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
//! let result = dspm(&space, &delta, &DspmConfig::new(50));
//!
//! // 3. Map the database and answer a top-k query.
//! let mapped = MappedDatabase::build(&space, &result.selected, MappingKind::Binary);
//! let query = &db[3];
//! let hits = mapped.topk(&mapped.map_query(query), 5);
//! assert_eq!(hits[0].0, 3); // the query graph itself ranks first
//! ```

pub use gdim_baselines as baselines;
pub use gdim_core as core;
pub use gdim_datagen as datagen;
pub use gdim_exec as exec;
pub use gdim_graph as graph;
pub use gdim_linalg as linalg;
pub use gdim_mining as mining;

/// One-stop imports: the core pipeline types plus the graph substrate.
pub mod prelude {
    pub use gdim_core::prelude::*;
    pub use gdim_graph::{Dissimilarity, Graph, GraphBuilder, McsOptions};
    pub use gdim_mining::{mine, Feature, MinerConfig, Support};
}

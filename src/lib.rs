//! # gdim — leveraging graph dimensions in online graph search
//!
//! A full reproduction of *"Leveraging Graph Dimensions in Online Graph
//! Search"* (Yuanyuan Zhu, Jeffrey Xu Yu, Lu Qin; PVLDB 8(1), 2014) as
//! a reusable Rust library.
//!
//! Graph similarity queries are expensive because the underlying
//! operations (maximum common subgraph, graph edit distance) are
//! NP-hard. The paper's answer is a **DS-preserved mapping**: choose a
//! small set of frequent subgraphs as *dimensions*, map every database
//! graph — and any unseen query — to a binary vector over those
//! dimensions, and answer top-k similarity queries with cheap Euclidean
//! distances that approximate the true MCS-based dissimilarity
//! (*distance-preserving*), also for graphs never seen at index time
//! (*structure-preserving*).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — labeled graphs, VF2, canonical DFS codes, MCS, δ1/δ2;
//! * [`mining`] — gSpan frequent subgraph mining;
//! * [`linalg`] — the dense linear-algebra substrate;
//! * [`exec`] — the shared parallel-execution runtime (`ExecConfig`,
//!   deterministic chunked fan-out) every parallel kernel runs on;
//! * [`datagen`] — chemistry-like and GraphGen-like dataset generators;
//! * [`core`] — DSPM / DSPMap dimension selection, top-k queries,
//!   quality measures, fingerprint benchmark;
//! * [`shard`] — the sharded index (scatter-gather top-k over N
//!   partitions sharing one global dimension selection) and the
//!   concurrent serving runtime (`ServingHandle`: lock-free readers
//!   over epoch-swapped snapshots);
//! * [`server`] — the network serving layer (`GdimServer`): hand-rolled
//!   HTTP/1.1 + JSON over `std::net`, a keep-alive `Client`, and the
//!   wire schema with bit-faithful number round-trips;
//! * [`wal`] — durability primitives: the CRC-framed write-ahead log,
//!   mutation records, and crash-safe atomic file writes behind the
//!   durable serving mode (`DurableHandle`, `gdim serve --durable`);
//! * [`obs`] — zero-dependency observability: lock-free counters,
//!   gauges, and log₂-bucket latency histograms, per-stage query
//!   traces (`StageTimes`), the recent-request ring, and the
//!   Prometheus text exposition behind `GET /metrics`;
//! * [`baselines`] — the seven comparison selectors of the paper's §6.
//!
//! ## Quickstart
//!
//! Build a [`GraphIndex`](core::index::GraphIndex) once, then serve
//! typed [`SearchRequest`](core::search::SearchRequest)s from it — the
//! paper's online workload:
//!
//! ```
//! use gdim::prelude::*;
//!
//! // A graph database (here: generated molecule-like graphs).
//! let db = gdim::datagen::chem_db(80, &gdim::datagen::ChemConfig::default(), 7);
//!
//! // Build: gSpan mining → δ matrix / DSPMap → DSPM dimension
//! // selection → mapped database, behind one builder.
//! let index = GraphIndex::build(db, IndexOptions::default().with_dimensions(50));
//!
//! // Serve: the fast mapped ranker (map the query with VF2, scan the
//! // vectors)...
//! let query = index.graph(3)?.clone();
//! let fast = index.search(&query, &SearchRequest::new(5))?;
//! assert_eq!(fast.hits[0].id.get(), 3); // the query graph itself ranks first
//!
//! // ...or filter-then-verify: re-rank the top mapped candidates with
//! // the exact MCS dissimilarity (near-exact answers, few MCS calls).
//! let refined = SearchRequest::new(5).ranker(Ranker::Refined { candidates: 20 });
//! let verified = index.search(&query, &refined)?;
//! assert_eq!(verified.stats.mcs_calls, 20);
//!
//! // Persist: build once, serve from disk.
//! let reloaded = GraphIndex::from_bytes(&index.to_bytes())?;
//! assert_eq!(reloaded.search(&query, &SearchRequest::new(5))?.hits, fast.hits);
//! # Ok::<(), GdimError>(())
//! ```

pub use gdim_baselines as baselines;
pub use gdim_core as core;
pub use gdim_datagen as datagen;
pub use gdim_exec as exec;
pub use gdim_graph as graph;
pub use gdim_linalg as linalg;
pub use gdim_mining as mining;
pub use gdim_obs as obs;
pub use gdim_server as server;
pub use gdim_shard as shard;
pub use gdim_wal as wal;

/// One-stop imports: the core pipeline types plus the graph substrate.
pub mod prelude {
    pub use gdim_core::prelude::*;
    pub use gdim_graph::{Dissimilarity, Graph, GraphBuilder, McsOptions};
    pub use gdim_mining::{mine, Feature, MinerConfig, Support};
    pub use gdim_server::{Client, GdimServer, Json, ServerConfig};
    pub use gdim_shard::{
        DurableHandle, Reader, RecoveryReport, ServingHandle, ShardId, ShardedIndex,
        ShardedOptions, SyncPolicy,
    };
}

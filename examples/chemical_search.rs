//! Chemical-compound similarity search — the paper's motivating
//! scenario (§1): a compound database where domain experts would
//! hand-craft a dictionary fingerprint, versus automatically identified
//! graph dimensions.
//!
//! Serves the same queries through the three rankers of the search API
//! (mapped scan, two-phase refined, exact MCS) plus the 881-bit
//! dictionary fingerprint, and compares answer quality and cost: the
//! refined ranker recovers exact-level precision at a small fraction of
//! the exact ranker's MCS calls — the filter-then-verify economics that
//! make exact-quality answers affordable online.
//!
//! ```sh
//! cargo run --release --example chemical_search
//! ```

use std::time::{Duration, Instant};

use gdim::core::measures::{precision, topk_ids};
use gdim::prelude::*;

fn main() -> Result<(), GdimError> {
    let n = 200;
    let k = 10;
    let c = 25; // refined candidate budget: c MCS calls instead of n
    let db = gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), 21);
    let queries = gdim::datagen::chem_db(8, &gdim::datagen::ChemConfig::default(), 777);

    // --- Index 1: automatically identified graph dimensions (DSPM).
    let t = Instant::now();
    let index = GraphIndex::build(
        db.clone(),
        IndexOptions::default()
            .with_dimensions(80)
            .with_min_support(Support::Relative(0.05)),
    );
    println!(
        "DSPM index: {} candidate features -> {} dimensions in {:.1?}",
        index.stats().mined_features,
        index.stats().dimensions,
        t.elapsed()
    );

    // --- Index 2: the expert-dictionary fingerprint (Tanimoto ranking).
    let t = Instant::now();
    let fp = FingerprintIndex::build(&db);
    println!(
        "fingerprint index: {} bits per compound in {:.1?}",
        FINGERPRINT_BITS,
        t.elapsed()
    );

    let mapped_req = SearchRequest::new(k);
    let refined_req = SearchRequest::new(k).ranker(Ranker::Refined { candidates: c });
    let exact_req = SearchRequest::new(k).ranker(Ranker::Exact);

    println!("\nper-query precision vs the exact ranking (k = {k}, refined c = {c}):");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "query", "mapped p@k", "refined p@k", "FP p@k", "refined time", "exact time"
    );
    let mut sums = [0.0f64; 3];
    let mut refined_time = Duration::ZERO;
    let mut exact_time = Duration::ZERO;
    for (qi, q) in queries.iter().enumerate() {
        let exact = index.search(q, &exact_req)?;
        let exact_ids: Vec<u32> = exact.hits.iter().map(|h| h.id.get()).collect();
        exact_time += exact.stats.wall_time;

        let mapped = index.search(q, &mapped_req)?;
        let refined = index.search(q, &refined_req)?;
        refined_time += refined.stats.wall_time;
        let fp_ids = topk_ids(&fp.topk(q, k), k);

        let ps = [
            precision(
                &mapped.hits.iter().map(|h| h.id.get()).collect::<Vec<_>>(),
                &exact_ids,
            ),
            precision(
                &refined.hits.iter().map(|h| h.id.get()).collect::<Vec<_>>(),
                &exact_ids,
            ),
            precision(&fp_ids, &exact_ids),
        ];
        for (s, p) in sums.iter_mut().zip(ps) {
            *s += p;
        }
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>12.2} {:>14.2?} {:>14.2?}",
            qi, ps[0], ps[1], ps[2], refined.stats.wall_time, exact.stats.wall_time
        );
    }
    let nq = queries.len() as f64;
    println!(
        "\nmean precision@{k}: mapped {:.2}, refined {:.2}, fingerprint {:.2}",
        sums[0] / nq,
        sums[1] / nq,
        sums[2] / nq
    );
    println!(
        "refined spends {c} MCS calls/query vs {n} for exact ({:.1?} vs {:.1?} total) —\n\
         candidate generation in the mapped space, verification only where it matters.",
        refined_time, exact_time
    );
    Ok(())
}

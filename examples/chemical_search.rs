//! Chemical-compound similarity search — the paper's motivating
//! scenario (§1): a compound database where domain experts would
//! hand-craft a dictionary fingerprint, versus automatically identified
//! graph dimensions.
//!
//! Builds a compound database, indexes it three ways (DSPM dimensions,
//! the 881-bit dictionary fingerprint, exact MCS ranking) and compares
//! answers and costs on the same queries.
//!
//! ```sh
//! cargo run --release --example chemical_search
//! ```

use std::time::Instant;

use gdim::core::measures::{precision, topk_ids};
use gdim::prelude::*;

fn main() {
    let n = 200;
    let k = 10;
    let db = gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), 21);
    let queries = gdim::datagen::chem_db(8, &gdim::datagen::ChemConfig::default(), 777);

    // --- Index 1: automatically identified graph dimensions (DSPM).
    let t = Instant::now();
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.05)).with_max_edges(5),
    );
    let space = FeatureSpace::build(db.len(), features);
    let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
    let result = dspm(&space, &delta, &DspmConfig::new(80));
    let mapped = MappedDatabase::build(&space, &result.selected, MappingKind::Binary);
    println!(
        "DSPM index: {} candidate features -> {} dimensions in {:.1?}",
        space.num_features(),
        mapped.p(),
        t.elapsed()
    );

    // --- Index 2: the expert-dictionary fingerprint (Tanimoto ranking).
    let t = Instant::now();
    let fp = FingerprintIndex::build(&db);
    println!(
        "fingerprint index: {} bits per compound in {:.1?}",
        FINGERPRINT_BITS,
        t.elapsed()
    );

    // --- Ground truth: exact MCS-based top-k (slow by nature).
    println!("\nper-query comparison (k = {k}):");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>14}",
        "query", "DSPM p@k", "FP p@k", "DSPM time", "exact time"
    );
    let mcs = McsOptions::default();
    let mut dspm_hits = 0.0;
    let mut fp_hits = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let t_exact = Instant::now();
        let exact = exact_ranking(&db, q, Dissimilarity::AvgNorm, &mcs, &ExecConfig::default());
        let exact_time = t_exact.elapsed();
        let exact_ids = topk_ids(&exact, k);

        let t_dspm = Instant::now();
        let qvec = mapped.map_query(q);
        let dspm_ids = topk_ids(&mapped.topk(&qvec, k), k);
        let dspm_time = t_dspm.elapsed();

        let fp_ids = topk_ids(&fp.topk(q, k), k);

        let p_dspm = precision(&dspm_ids, &exact_ids);
        let p_fp = precision(&fp_ids, &exact_ids);
        dspm_hits += p_dspm;
        fp_hits += p_fp;
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>14.2?} {:>14.2?}",
            qi, p_dspm, p_fp, dspm_time, exact_time
        );
    }
    println!(
        "\nmean precision@{k}: DSPM {:.2}, fingerprint {:.2} (against exact MCS ranking)",
        dspm_hits / queries.len() as f64,
        fp_hits / queries.len() as f64
    );
    println!(
        "The mapped index answers in milliseconds what the exact ranker needs seconds for —
the paper's 3-5 orders-of-magnitude gap at database scale."
    );
}

//! Serving over the network: build a sharded index, stand up
//! [`GdimServer`] on an ephemeral loopback port, and speak to it with
//! the bundled [`Client`] — searches (single and fused batch), a live
//! insert, stats, and a graceful drain. The whole stack is hand-rolled
//! HTTP/1.1 + JSON over `std::net`; no dependencies appear.
//!
//! ```sh
//! cargo run --release --example server_quickstart
//! ```

use gdim::prelude::*;
use gdim::server::wire::{graph_to_json, response_from_json};

fn main() -> std::io::Result<()> {
    // Build: 80 molecule-like graphs over 2 shards, one shared
    // dimension selection.
    let cfg = gdim::datagen::ChemConfig::default();
    let db = gdim::datagen::chem_db(80, &cfg, 7);
    let index = ShardedIndex::build(
        db,
        ShardedOptions::new(2).with_index(IndexOptions::default().with_dimensions(32)),
    );
    let handle = ServingHandle::new(index);

    // Serve: `:0` picks a free port; `addr()` reports it.
    let server = GdimServer::start(handle.clone(), ServerConfig::default())?;
    println!("serving on http://{}", server.addr());

    let mut client = Client::connect(server.addr())?;

    // A top-5 search for database graph id 3 (ids come from /stats,
    // /insert answers, or the CLI; the composed id of the 4th inserted
    // graph is resolvable through the snapshot's sequence numbers).
    let id = handle.snapshot().id_for_seq(3).unwrap().get();
    let body = Json::obj([
        ("query", Json::obj([("id", Json::U64(id as u64))])),
        ("k", Json::U64(5)),
    ]);
    let (status, reply) = client.post("/search", &body)?;
    assert_eq!(status, 200);
    let resp = response_from_json(&reply).expect("well-formed response");
    println!("\ntop-5 for graph {id} over the wire:");
    print!("{}", resp.hit_table());
    println!("{}\n", resp.stats);

    // The served answer is bit-identical to the in-process one.
    let snap = handle.snapshot();
    let local = snap
        .search(snap.graph(GraphId(id)).unwrap(), &SearchRequest::new(5))
        .unwrap();
    assert!(resp
        .hits
        .iter()
        .zip(&local.hits)
        .all(|(a, b)| a.id == b.id && a.distance.to_bits() == b.distance.to_bits()));
    println!("served hits == in-process hits, bit for bit");

    // Batch: several queries answered in one fused scan over the store.
    let ids: Vec<u32> = (0..4).map(|s| snap.id_for_seq(s).unwrap().get()).collect();
    let queries = Json::Arr(
        ids.iter()
            .map(|&i| Json::obj([("id", Json::U64(i as u64))]))
            .collect(),
    );
    let (status, reply) = client.post(
        "/search_batch",
        &Json::obj([("queries", queries), ("k", Json::U64(3))]),
    )?;
    assert_eq!(status, 200);
    let batch = reply.get("responses").and_then(Json::as_arr).unwrap().len();
    println!("batch of {batch} queries answered through the fused scan");

    // Live insert over the wire: ship a graph, get its id back.
    let extra = gdim::datagen::chem_db(1, &cfg, 99).pop().unwrap();
    let (status, reply) = client.post("/insert", &Json::obj([("graph", graph_to_json(&extra))]))?;
    assert_eq!(status, 200);
    println!(
        "inserted a new graph as id {}",
        reply.get("id").and_then(Json::as_u64).unwrap()
    );

    let (_, stats) = client.get("/stats")?;
    println!(
        "stats: {} live graphs, {} requests served",
        stats.get("live_graphs").and_then(Json::as_u64).unwrap(),
        stats.get("requests").and_then(Json::as_u64).unwrap()
    );

    // Graceful drain: stop accepting, finish in-flight work, join.
    server.request_shutdown();
    server.wait();
    server.shutdown();
    println!("drained and stopped");
    Ok(())
}

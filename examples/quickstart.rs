//! Quickstart: the full DS-preserved-mapping pipeline on a small
//! generated database — mine features, select dimensions with DSPM,
//! map the database, answer a top-k similarity query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gdim::prelude::*;

fn main() {
    // A graph database DG: 120 molecule-like labeled graphs.
    let db = gdim::datagen::chem_db(120, &gdim::datagen::ChemConfig::default(), 7);
    println!("database: {} graphs", db.len());

    // 1. Mine the candidate feature set F with gSpan (τ = 10%).
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4),
    );
    println!("gSpan mined {} frequent subgraphs", features.len());
    let space = FeatureSpace::build(db.len(), features);

    // 2. Pairwise dissimilarities δ2 (Eq. 2) for the selection objective.
    let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
    println!("mean pairwise dissimilarity: {:.3}", delta.mean());

    // 3. DSPM: select p = 60 dimensions (Algorithms 1-4).
    let result = dspm(&space, &delta, &DspmConfig::new(60));
    println!(
        "DSPM: {} iterations, objective {:.1} -> {:.1}, selected {} dimensions",
        result.iterations,
        result.objective_trace.first().unwrap(),
        result.objective_trace.last().unwrap(),
        result.selected.len(),
    );

    // 4. Map the database and query it with an unseen graph.
    let mapped = MappedDatabase::build(&space, &result.selected, MappingKind::Binary);
    let query = &gdim::datagen::chem_db(1, &gdim::datagen::ChemConfig::default(), 999)[0];
    println!(
        "query: |V| = {}, |E| = {}",
        query.vertex_count(),
        query.edge_count()
    );
    let qvec = mapped.map_query(query);
    println!(
        "query contains {} of the selected dimensions",
        qvec.count_ones()
    );

    let top = mapped.topk(&qvec, 5);
    println!("top-5 by mapped distance:");
    for (rank, (id, dist)) in top.iter().enumerate() {
        // Cross-check with the true dissimilarity.
        let true_delta = gdim::graph::delta(
            Dissimilarity::AvgNorm,
            query,
            &db[*id as usize],
            &McsOptions::default(),
        );
        println!(
            "  #{:<2} graph {:<3} mapped d = {:.3}   true δ = {:.3}",
            rank + 1,
            id,
            dist,
            true_delta
        );
    }
}

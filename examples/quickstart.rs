//! Quickstart: the serving-layer workflow — build a [`GraphIndex`]
//! over a generated database, answer typed search requests with the
//! mapped, refined and exact rankers, and round-trip the index through
//! its binary persistence format.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gdim::prelude::*;

fn main() -> Result<(), GdimError> {
    // A graph database DG: 120 molecule-like labeled graphs.
    let db = gdim::datagen::chem_db(120, &gdim::datagen::ChemConfig::default(), 7);
    println!("database: {} graphs", db.len());

    // Build once: gSpan mining → δ matrix → DSPM dimension selection →
    // mapped database, all behind one builder.
    let index = GraphIndex::build(
        db,
        IndexOptions::default()
            .with_dimensions(60)
            .with_min_support(Support::Relative(0.1)),
    );
    let s = index.stats();
    println!(
        "index: {} mined features -> {} dimensions (mining {:.1?}, delta {:.1?}, selection {:.1?})",
        s.mined_features, s.dimensions, s.mining_time, s.delta_time, s.selection_time
    );

    // Serve: an unseen query graph, three rankers.
    let query = &gdim::datagen::chem_db(1, &gdim::datagen::ChemConfig::default(), 999)[0];
    println!(
        "query: |V| = {}, |E| = {}",
        query.vertex_count(),
        query.edge_count()
    );

    let fast = index.search(query, &SearchRequest::new(5))?;
    let refined = index.search(
        query,
        &SearchRequest::new(5).ranker(Ranker::Refined { candidates: 20 }),
    )?;
    let exact = index.search(query, &SearchRequest::new(5).ranker(Ranker::Exact))?;

    println!(
        "\n{:<28} {:>10} {:>10} {:>12}",
        "ranker", "top hit", "MCS calls", "wall time"
    );
    for (name, resp) in [
        ("Mapped (paper fast path)", &fast),
        ("Refined (filter+verify)", &refined),
        ("Exact (MCS reference)", &exact),
    ] {
        println!(
            "{:<28} {:>10} {:>10} {:>12.2?}",
            name,
            resp.top().map(|h| h.id.to_string()).unwrap_or_default(),
            resp.stats.mcs_calls,
            resp.stats.wall_time
        );
    }

    println!("\ntop-5 mapped vs refined distances:");
    for (rank, (m, r)) in fast.hits.iter().zip(&refined.hits).enumerate() {
        println!(
            "  #{:<2} mapped: {} d = {:.3}   refined: {} δ = {:.3}",
            rank + 1,
            m.id,
            m.distance,
            r.id,
            r.distance
        );
    }

    // Persist: build once, serve from disk. The reloaded index answers
    // byte-identically.
    let path = std::env::temp_dir().join("gdim-quickstart.idx");
    index.save(&path)?;
    let reloaded = GraphIndex::load(&path)?;
    let again = reloaded.search(query, &SearchRequest::new(5))?;
    assert_eq!(again.hits, fast.hits);
    println!(
        "\nsaved {} bytes to {} and reloaded: answers identical",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}

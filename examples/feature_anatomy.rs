//! Anatomy of the selected dimensions: what DSPM actually picks, how
//! correlated the dimensions are (Fig. 2's measure), and an empirical
//! check of the structure-preserving bound of Theorem 4.3
//! (`|d(y_q', y_g) − d(y_q, y_g)| ≤ √(t/p)` for `q' ⊆ q`).
//!
//! ```sh
//! cargo run --release --example feature_anatomy
//! ```

use gdim::core::correlation_score;
use gdim::datagen::connected_edge_subgraph;
use gdim::prelude::*;

fn main() {
    let db = gdim::datagen::chem_db(150, &gdim::datagen::ChemConfig::default(), 11);
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.05)).with_max_edges(5),
    );
    let space = FeatureSpace::build(db.len(), features);
    let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
    let p = 60;
    let res = dspm(&space, &delta, &DspmConfig::new(p));

    println!("top 10 dimensions by DSPM weight:");
    println!(
        "{:>4} {:>8} {:>9} {:>8}  structure",
        "rank", "weight", "|sup(f)|", "|E(f)|"
    );
    for (rank, &r) in res.selected.iter().take(10).enumerate() {
        let f = &space.features()[r as usize];
        let atoms: Vec<&str> = f
            .graph
            .vlabels()
            .iter()
            .map(|&l| gdim::datagen::chem::ATOM_SYMBOLS[l as usize])
            .collect();
        println!(
            "{:>4} {:>8.4} {:>9} {:>8}  {}",
            rank + 1,
            res.weights[r as usize],
            f.support_count(),
            f.graph.edge_count(),
            atoms.join("-"),
        );
    }

    let sample = gdim::baselines::sample_select(&space, p, 3);
    println!("\ncorrelation score (sum of pairwise support Jaccard, lower = more diverse):");
    println!("  DSPM:   {:.1}", correlation_score(&space, &res.selected));
    println!("  Sample: {:.1}", correlation_score(&space, &sample));

    // Theorem 4.3, empirically: map q and a random subgraph q' ⊆ q;
    // their distances to any database vector differ by at most √(t/p)
    // where t = |F(q)| − |F(q')|.
    let mapped =
        MappedDatabase::new(&space, &res.selected, Mapping::Binary).expect("selection in range");
    let queries = gdim::datagen::chem_db(20, &gdim::datagen::ChemConfig::default(), 99);
    let mut checked = 0usize;
    let mut worst_slack = f64::INFINITY;
    for (qi, q) in queries.iter().enumerate() {
        let q_sub = connected_edge_subgraph(q, 0.7, qi as u64);
        let yq = mapped.map_query(q);
        let yq_sub = mapped.map_query(&q_sub);
        let t = (yq.count_ones() as i64 - yq_sub.count_ones() as i64).unsigned_abs() as f64;
        let bound = (t / mapped.p() as f64).sqrt();
        for g in 0..db.len() {
            let d_full = mapped.distance_to(&yq, g);
            let d_sub = mapped.distance_to(&yq_sub, g);
            let gap = (d_full - d_sub).abs();
            assert!(
                gap <= bound + 1e-9,
                "Theorem 4.3 violated: gap {gap} > bound {bound}"
            );
            worst_slack = worst_slack.min(bound - gap);
            checked += 1;
        }
    }
    println!(
        "\nTheorem 4.3 check: {checked} (query, graph) pairs within the √(t/p) bound \
         (tightest slack {worst_slack:.4})"
    );
}

//! Live updates: serve a [`GraphIndex`] while the database changes
//! underneath it — online `insert` (mapped against the existing
//! feature space, no re-mining), `remove` (tombstoned, skipped by
//! every ranker), the [`RebuildPolicy`] staleness test, and the
//! epoch-based background rebuild that restores batch quality and
//! swaps in atomically.
//!
//! ```sh
//! cargo run --release --example live_updates
//! ```

use gdim::prelude::*;

fn main() -> Result<(), GdimError> {
    let cfg = gdim::datagen::ChemConfig::default();
    let db = gdim::datagen::chem_db(100, &cfg, 7);

    // A tight policy so this demo actually trips it: tolerate at most
    // 8 pending inserts or 10% tombstones before declaring staleness.
    let mut index = GraphIndex::build(
        db,
        IndexOptions::default()
            .with_dimensions(50)
            .with_rebuild_policy(RebuildPolicy {
                max_inserts: 8,
                max_tombstone_frac: 0.10,
            }),
    );
    println!(
        "built: {} graphs, {} dimensions, epoch {}",
        index.len(),
        index.dimensions().len(),
        index.epoch()
    );

    // --- online inserts -------------------------------------------
    // Each insert maps the newcomer against the *existing* feature
    // space (containment-DAG-pruned VF2) and appends its vector to the
    // scan store — the selected dimensions are not revisited.
    let newcomers = gdim::datagen::chem_db(8, &cfg, 4242);
    let mut last = None;
    for g in &newcomers {
        last = Some((index.insert(g.clone()), g.clone()));
    }
    let (id, g) = last.expect("inserted at least one");
    let resp = index.search(&g, &SearchRequest::new(3))?;
    println!(
        "inserted {} graphs; self-query of {} -> top hit {} at distance {:.3} (epoch {})",
        newcomers.len(),
        id,
        resp.hits[0].id,
        resp.hits[0].distance,
        resp.stats.epoch
    );

    // --- online removes -------------------------------------------
    // Tombstoned rows stay addressable (ids are stable) but are dead
    // to every ranker; the scan reports what it skipped.
    for dead in [3u32, 14, 41] {
        index.remove(GraphId(dead))?;
    }
    let probe = index.graph(3)?.clone(); // query *is* a removed graph
    let resp = index.search(&probe, &SearchRequest::new(5))?;
    println!(
        "removed 3 graphs; live {}/{}, scan skipped {} tombstones, hits exclude g3: {}",
        index.live_len(),
        index.len(),
        resp.stats.tombstones_skipped,
        resp.hits.iter().all(|h| h.id.get() != 3)
    );

    // --- staleness + background rebuild ---------------------------
    // 8 pending inserts reached max_inserts, so the index is stale. A
    // background task re-runs the full pipeline (re-mine → re-select →
    // re-map) over a snapshot of the live graphs; the serving side
    // keeps answering meanwhile and installs the result atomically.
    assert!(index.is_stale());
    let task = index.spawn_rebuild();
    let served_while_rebuilding = index.search(&probe, &SearchRequest::new(5))?;
    println!(
        "rebuild running in the background; meanwhile served a query in {:?} (epoch {})",
        served_while_rebuilding.stats.wall_time, served_while_rebuilding.stats.epoch
    );
    let installed = index.install(task)?;
    println!(
        "rebuild installed: {installed}; epoch {} -> {} graphs, {} tombstones, stale: {}",
        index.epoch(),
        index.len(),
        index.tombstone_count(),
        index.is_stale()
    );

    // After the rebuild the index is bit-identical to a batch build
    // over the live graphs — features the inserts brought along are
    // now minable, and the tombstones are compacted away.
    let resp = index.search(&g, &SearchRequest::new(3))?;
    println!(
        "post-rebuild self-query -> top hit {} at distance {:.3} (epoch {})",
        resp.hits[0].id, resp.hits[0].distance, resp.stats.epoch
    );

    // A mutation arriving after a snapshot makes installation refuse
    // rather than silently dropping it.
    let task = index.spawn_rebuild();
    index.insert(gdim::datagen::chem_db(1, &cfg, 777)[0].clone());
    match index.install(task) {
        Err(GdimError::StaleRebuild { missed }) => {
            println!(
                "late insert invalidated the snapshot ({missed} mutation missed) — spawn again"
            );
        }
        other => println!("unexpected install outcome: {other:?}"),
    }
    index.rebuild_if_stale();
    Ok(())
}

//! Sharded serving: partition the database over N shards
//! ([`ShardedIndex`]), then serve **concurrent** traffic through a
//! [`ServingHandle`] — multiple reader threads answering a Zipf-skewed
//! workload lock-free while the main thread inserts graphs and runs a
//! background rebuild.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use gdim::prelude::*;

fn main() -> Result<(), GdimError> {
    let cfg = gdim::datagen::ChemConfig::default();
    let db = gdim::datagen::chem_db(120, &cfg, 7);

    // One global pipeline run (mine -> select), then 4 shards stamped
    // out from it — every shard shares the same dimensions, so
    // scatter-gather answers are bit-identical to an unsharded index.
    let index = ShardedIndex::build(
        db.clone(),
        ShardedOptions::new(4).with_index(
            IndexOptions::default()
                .with_dimensions(50)
                // Per *shard*: least-loaded insert routing spreads 6
                // inserts over 4 shards, so a couple of shards reach 2
                // pending inserts and report stale below.
                .with_rebuild_policy(RebuildPolicy {
                    max_inserts: 2,
                    max_tombstone_frac: 0.10,
                }),
        ),
    );
    println!(
        "built {:?}: {} graphs over {} shards, {} dimensions",
        index,
        index.len(),
        index.shard_count(),
        index.dimensions().len()
    );

    // Sanity: sharded == unsharded, hit for hit (distances and order).
    let unsharded = GraphIndex::build(db.clone(), IndexOptions::default().with_dimensions(50));
    let q = db[17].clone();
    let sharded_hits = index.search(&q, &SearchRequest::new(5))?.hits;
    let flat_hits = unsharded.search(&q, &SearchRequest::new(5))?.hits;
    for (a, b) in sharded_hits.iter().zip(&flat_hits) {
        assert_eq!(a.distance, b.distance);
        assert_eq!(index.seq_of(a.id)?, b.id.get() as u64);
    }
    println!("scatter-gather top-5 matches the unsharded index bit for bit");

    // --- concurrent serving ---------------------------------------
    // Readers search lock-free against published snapshots (one atomic
    // load per search in the steady state) while the writer inserts —
    // each insert copy-on-writes only the owning shard (1/N of the
    // data) — and a full background rebuild re-mines off-thread.
    let handle = ServingHandle::new(index);
    let workload =
        gdim::datagen::zipf_workload(db.len(), 400, &gdim::datagen::ZipfConfig::default(), 9);
    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..3usize {
            let reader = handle.reader(); // one per thread
            let db = &db;
            let workload = &workload;
            let (stop, served) = (&stop, &served);
            scope.spawn(move || {
                for (i, &gid) in workload.iter().cycle().enumerate() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let resp = reader
                        .search(&db[gid as usize], &SearchRequest::new(3))
                        .expect("searches never fail while mutations land");
                    assert_eq!(resp.hits[0].distance, 0.0, "reader {t} query {i}");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Writer: online inserts (readers keep the old snapshot until
        // the next publish), then a background full rebuild.
        for g in gdim::datagen::chem_db(6, &cfg, 4242) {
            handle.insert(g);
        }
        let stale = handle.stale_shards();
        println!(
            "inserted 6 graphs; stale shards now {:?}",
            stale.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        let task = handle.spawn_rebuild();
        let installed = handle.install(task).expect("no mutation raced the rebuild");
        println!(
            "background rebuild installed: {installed}; snapshot version {} with epoch {}",
            handle.version(),
            handle.snapshot().epoch()
        );
        stop.store(true, Ordering::Relaxed);
    });
    println!(
        "3 reader threads served {} searches while the writer mutated and rebuilt",
        served.load(Ordering::Relaxed)
    );
    Ok(())
}

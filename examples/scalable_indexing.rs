//! Scalable indexing with DSPMap (§5.2): build dimensions for a larger
//! database without ever materializing the quadratic dissimilarity
//! matrix, then verify the selection quality against plain DSPM.
//!
//! ```sh
//! cargo run --release --example scalable_indexing
//! ```

use std::time::Instant;

use gdim::core::{dspmap, DspmapConfig, SharedDelta};
use gdim::prelude::*;

fn main() {
    let n = 400;
    let p = 80;
    let db = gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), 33);
    let features = mine(
        &db,
        &MinerConfig::new(Support::Relative(0.05)).with_max_edges(4),
    );
    let space = FeatureSpace::build(db.len(), features);
    println!(
        "database: {n} graphs, {} candidate features",
        space.num_features()
    );

    // DSPMap with b = n/20, as in the paper's scalability experiment.
    let b = n / 20;
    let t = Instant::now();
    let sdelta = SharedDelta::new(&db, DeltaConfig::default());
    let cfg = DspmapConfig::new(p).with_partition_size(b).with_seed(1);
    let res = dspmap(&space, &sdelta, &cfg);
    let dspmap_time = t.elapsed();

    let all_pairs = n * (n - 1) / 2;
    println!("\nDSPMap (b = {b}):");
    println!("  partitions:        {}", res.partitions.len());
    println!("  inner DSPM calls:  {}", res.dspm_calls);
    println!(
        "  δ pairs computed:  {} of {} ({:.1}%)",
        sdelta.computed_pairs(),
        all_pairs,
        100.0 * sdelta.computed_pairs() as f64 / all_pairs as f64
    );
    println!("  indexing time:     {dspmap_time:.1?}");

    // Reference: plain DSPM with the full quadratic matrix.
    let t = Instant::now();
    let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
    let dspm_res = dspm(&space, &delta, &DspmConfig::new(p));
    let dspm_time = t.elapsed();
    println!("\nDSPM (full δ matrix): indexing time {dspm_time:.1?}");

    // How close are the two selections?
    let set: std::collections::BTreeSet<u32> = dspm_res.selected.iter().copied().collect();
    let overlap = res.selected.iter().filter(|r| set.contains(r)).count();
    println!("\nselection overlap: {overlap}/{p} dimensions shared with plain DSPM");

    // And do they answer queries the same way?
    let queries = gdim::datagen::chem_db(10, &gdim::datagen::ChemConfig::default(), 555);
    let md_map = MappedDatabase::new(&space, &res.selected, Mapping::Binary)
        .expect("dspmap selection in range");
    let md_full = MappedDatabase::new(&space, &dspm_res.selected, Mapping::Binary)
        .expect("dspm selection in range");
    let k = 10;
    let mut agree = 0.0;
    for q in &queries {
        let a: std::collections::BTreeSet<u32> = md_map
            .topk(&md_map.map_query(q), k)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let b: Vec<u32> = md_full
            .topk(&md_full.map_query(q), k)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        agree += b.iter().filter(|id| a.contains(id)).count() as f64 / k as f64;
    }
    println!(
        "top-{k} answer agreement over {} queries: {:.0}%",
        queries.len(),
        100.0 * agree / queries.len() as f64
    );

    // The same strategy through the serving layer: build a DSPMap-backed
    // index, persist it, and serve from the reloaded copy.
    let db2 = gdim::datagen::chem_db(n, &gdim::datagen::ChemConfig::default(), 33);
    let index = GraphIndex::build(
        db2,
        IndexOptions::default()
            .with_dimensions(p)
            .with_strategy(SelectionStrategy::Dspmap { partition_size: b }),
    );
    let path = std::env::temp_dir().join("gdim-scalable.idx");
    index.save(&path).expect("save index");
    let served = GraphIndex::load(&path).expect("load index");
    let resp = served
        .search(&queries[0], &SearchRequest::new(k))
        .expect("serve from reloaded index");
    assert_eq!(
        resp.hits,
        index
            .search(&queries[0], &SearchRequest::new(k))
            .unwrap()
            .hits
    );
    println!(
        "\nserving layer: DSPMap index persisted ({} bytes) and reloaded; answers identical",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
    std::fs::remove_file(&path).ok();
}

//! The benchmark ranker: an 881-bit dictionary fingerprint with
//! Tanimoto-score ranking — the substitute for the PubChem fingerprint
//! the paper uses as its quality benchmark on real data ("the experts
//! in the chemical domain have provided a dictionary-based binary
//! fingerprint ... The similarity of two graphs is defined as the
//! Tanimoto score of their fingerprints", §6).
//!
//! The 881 bits (matching PubChem's dimensionality) are laid out as:
//!
//! * `[0, 32)`   — element-count keys: 8 atom types × thresholds {1,2,4,8};
//! * `[32, 38)`  — ring-size keys: a cycle of size 3..=8 exists;
//! * `[38, 48)`  — functional-fragment keys (the generator's dictionary,
//!   matched with VF2);
//! * `[48, 881)` — hashed labeled-path keys: every simple path of 1..=3
//!   edges, canonicalized by orientation, hashed into the remaining bits
//!   (Daylight-style folding).

use std::hash::{Hash, Hasher};

use gdim_graph::fxhash::FxHasher;
use gdim_graph::vf2::is_subgraph_iso;
use gdim_graph::{Graph, VertexId};

use crate::bitset::Bitset;

/// Total fingerprint width — PubChem's 881.
pub const FINGERPRINT_BITS: usize = 881;

/// Bit positions of the functional-fragment keys (one per entry of the
/// fragment vocabulary, in dictionary order). Public so integration
/// tests can assert the vocabulary stays in sync with
/// `gdim_datagen::fragment_dictionary`.
pub const FRAGMENT_BIT_RANGE: std::ops::Range<usize> = 38..58;

const ELEMENT_TYPES: usize = 8;
const ELEMENT_THRESHOLDS: [u32; 4] = [1, 2, 4, 8];
const RING_BITS: std::ops::Range<usize> = 32..38;
const FRAGMENT_BASE: usize = FRAGMENT_BIT_RANGE.start;
const PATH_BASE: usize = FRAGMENT_BIT_RANGE.end;

/// The fragment vocabulary (kept in sync with
/// `gdim_datagen::fragment_dictionary`; an integration test at the
/// workspace root asserts the correspondence).
fn fragments() -> Vec<Graph> {
    let ring = |labels: &[u32], bonds: &[u32]| {
        let n = labels.len() as u32;
        let edges: Vec<_> = bonds
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u32, (i as u32 + 1) % n, b))
            .collect();
        Graph::from_parts(labels.to_vec(), edges).unwrap()
    };
    let (c, n, o, s, p) = (0u32, 1u32, 2u32, 3u32, 4u32);
    vec![
        ring(&[c; 6], &[0, 1, 0, 1, 0, 1]),
        ring(&[c; 6], &[0; 6]),
        ring(&[c; 5], &[0; 5]),
        ring(&[n, c, c, c, c, c], &[0, 1, 0, 1, 0, 1]),
        ring(&[o, c, c, c, c], &[0, 1, 0, 1, 0]),
        ring(&[s, c, c, c, c], &[0, 1, 0, 1, 0]),
        Graph::from_parts(vec![c, o, o], [(0, 1, 1), (0, 2, 0)]).unwrap(),
        Graph::from_parts(vec![c, o, n], [(0, 1, 1), (0, 2, 0)]).unwrap(),
        Graph::from_parts(vec![n, o, o], [(0, 1, 1), (0, 2, 0)]).unwrap(),
        Graph::from_parts(vec![c, c, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        ring(&[n, c, n, c, c, c], &[0, 1, 0, 1, 0, 1]),
        ring(&[n, c, c, c, c], &[0; 5]),
        ring(&[o, c, c, n, c, c], &[0; 6]),
        Graph::from_parts(vec![c, o, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        Graph::from_parts(vec![c, s, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        Graph::from_parts(vec![c, n, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        Graph::from_parts(vec![p, o, o, o], [(0, 1, 1), (0, 2, 0), (0, 3, 0)]).unwrap(),
        Graph::from_parts(vec![c, c], [(0, 1, 1)]).unwrap(),
        Graph::from_parts(vec![c, n], [(0, 1, 2)]).unwrap(),
        ring(&[c; 3], &[0; 3]),
    ]
}

/// Computes the 881-bit dictionary fingerprint of a graph.
pub fn fingerprint(g: &Graph) -> Bitset {
    fingerprint_with(g, &fragments())
}

/// Like [`fingerprint`], reusing a prebuilt fragment vocabulary (the
/// index builder avoids re-allocating it per graph).
pub fn fingerprint_with(g: &Graph, frags: &[Graph]) -> Bitset {
    let mut bits = Bitset::zeros(FINGERPRINT_BITS);

    // Element-count keys.
    let mut counts = [0u32; ELEMENT_TYPES];
    for &l in g.vlabels() {
        if (l as usize) < ELEMENT_TYPES {
            counts[l as usize] += 1;
        }
    }
    for (t, &c) in counts.iter().enumerate() {
        for (bi, &thr) in ELEMENT_THRESHOLDS.iter().enumerate() {
            if c >= thr {
                bits.set(t * ELEMENT_THRESHOLDS.len() + bi);
            }
        }
    }

    // Ring-size keys: an edge (u,v) lies on a cycle of length d+1 where
    // d is the shortest u→v path avoiding that edge.
    for e in g.edges() {
        if let Some(d) = distance_avoiding(g, e.u, e.v, (e.u, e.v)) {
            let ring = d + 1;
            if (3..=8).contains(&ring) {
                bits.set(RING_BITS.start + ring - 3);
            }
        }
    }

    // Fragment keys.
    for (i, f) in frags.iter().enumerate() {
        if is_subgraph_iso(f, g) {
            bits.set(FRAGMENT_BASE + i);
        }
    }

    // Hashed labeled-path keys (simple paths of 1..=3 edges).
    let span = FINGERPRINT_BITS - PATH_BASE;
    let mut stack: Vec<VertexId> = Vec::new();
    for v in 0..g.vertex_count() as VertexId {
        stack.push(v);
        path_walk(g, &mut stack, 3, &mut |path| {
            let key = path_key(g, path);
            bits.set(PATH_BASE + (key % span as u64) as usize);
        });
        stack.pop();
    }
    bits
}

/// Depth-first enumeration of simple paths extending `stack`, invoking
/// `emit` for every path with ≥1 edge.
fn path_walk(
    g: &Graph,
    stack: &mut Vec<VertexId>,
    budget: usize,
    emit: &mut impl FnMut(&[VertexId]),
) {
    if budget == 0 {
        return;
    }
    let last = *stack.last().expect("stack seeded");
    for nb in g.neighbors(last) {
        if stack.contains(&nb.to) {
            continue;
        }
        stack.push(nb.to);
        emit(stack);
        path_walk(g, stack, budget - 1, emit);
        stack.pop();
    }
}

/// Orientation-canonical hash of a labeled path: the label sequence is
/// read in both directions and the lexicographically smaller one hashed.
fn path_key(g: &Graph, path: &[VertexId]) -> u64 {
    let forward = path_labels(g, path.iter().copied());
    let backward = path_labels(g, path.iter().rev().copied());
    let canon = if forward <= backward {
        forward
    } else {
        backward
    };
    let mut h = FxHasher::default();
    canon.hash(&mut h);
    h.finish()
}

fn path_labels(g: &Graph, order: impl Iterator<Item = VertexId> + Clone) -> Vec<u32> {
    let verts: Vec<VertexId> = order.collect();
    let mut seq = Vec::with_capacity(verts.len() * 2 - 1);
    for (i, &v) in verts.iter().enumerate() {
        seq.push(g.vlabel(v));
        if i + 1 < verts.len() {
            seq.push(g.edge_label(v, verts[i + 1]).expect("path edge") + 1_000_000);
        }
    }
    seq
}

/// BFS distance from `from` to `to` ignoring the single edge `skip`.
fn distance_avoiding(
    g: &Graph,
    from: VertexId,
    to: VertexId,
    skip: (VertexId, VertexId),
) -> Option<usize> {
    let mut dist = vec![usize::MAX; g.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[from as usize] = 0;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            return Some(dist[v as usize]);
        }
        for nb in g.neighbors(v) {
            let is_skipped = (v, nb.to) == skip || (nb.to, v) == skip;
            if !is_skipped && dist[nb.to as usize] == usize::MAX {
                dist[nb.to as usize] = dist[v as usize] + 1;
                queue.push_back(nb.to);
            }
        }
    }
    None
}

/// Tanimoto similarity `|a ∧ b| / |a ∨ b|` (1 when both are empty).
pub fn tanimoto(a: &Bitset, b: &Bitset) -> f64 {
    let union = a.or_count(b);
    if union == 0 {
        1.0
    } else {
        a.and_count(b) as f64 / union as f64
    }
}

/// Fingerprints of a whole database, with Tanimoto top-k ranking — the
/// benchmark ranker of §6.
#[derive(Debug, Clone)]
pub struct FingerprintIndex {
    bits: Vec<Bitset>,
    frags: Vec<Graph>,
}

impl FingerprintIndex {
    /// Fingerprints every database graph.
    pub fn build(db: &[Graph]) -> Self {
        let frags = fragments();
        let bits = db.iter().map(|g| fingerprint_with(g, &frags)).collect();
        FingerprintIndex { bits, frags }
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Fingerprint of database graph `i`.
    pub fn get(&self, i: usize) -> &Bitset {
        &self.bits[i]
    }

    /// Full ranking by descending Tanimoto score (ties by id).
    pub fn ranking(&self, q: &Graph) -> Vec<(u32, f64)> {
        let qf = fingerprint_with(q, &self.frags);
        let mut all: Vec<(u32, f64)> = self
            .bits
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, tanimoto(&qf, b)))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        all
    }

    /// Top-k most similar graphs by Tanimoto score.
    pub fn topk(&self, q: &Graph, k: usize) -> Vec<(u32, f64)> {
        let mut r = self.ranking(q);
        r.truncate(k);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benzene() -> Graph {
        Graph::from_parts(
            vec![0; 6],
            [
                (0, 1, 0),
                (1, 2, 1),
                (2, 3, 0),
                (3, 4, 1),
                (4, 5, 0),
                (5, 0, 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identical_graphs_have_tanimoto_one() {
        let g = benzene();
        let f = fingerprint(&g);
        assert_eq!(tanimoto(&f, &f), 1.0);
    }

    #[test]
    fn element_bits_reflect_counts() {
        let g = benzene(); // six carbons
        let f = fingerprint(&g);
        // Carbon (type 0) thresholds 1, 2, 4 met; 8 not.
        assert!(f.get(0) && f.get(1) && f.get(2));
        assert!(!f.get(3));
        // No nitrogen bits.
        assert!(!f.get(4));
    }

    #[test]
    fn ring_bit_set_for_six_ring_only() {
        let f = fingerprint(&benzene());
        assert!(f.get(RING_BITS.start + 3), "6-ring bit");
        assert!(!f.get(RING_BITS.start), "no 3-ring");
        let chain = Graph::from_parts(vec![0; 4], [(0, 1, 0), (1, 2, 0), (2, 3, 0)]).unwrap();
        let fc = fingerprint(&chain);
        for b in RING_BITS {
            assert!(!fc.get(b), "chains have no ring bits");
        }
    }

    #[test]
    fn fragment_bit_for_benzene() {
        let f = fingerprint(&benzene());
        assert!(f.get(FRAGMENT_BASE), "benzene is fragment 0");
        assert!(!f.get(FRAGMENT_BASE + 6), "no carboxyl");
    }

    #[test]
    fn similar_graphs_score_higher_than_dissimilar() {
        let a = benzene();
        // Benzene with a methyl attached: still very benzene-like.
        let mut like = gdim_graph::GraphBuilder::with_vertices(vec![0; 7]);
        for e in a.edges() {
            like.edge(e.u, e.v, e.label).unwrap();
        }
        like.edge(0, 6, 0).unwrap();
        let b = like.build();
        // A nitrogen-oxygen chain: very different.
        let c = Graph::from_parts(vec![1, 2, 1, 2], [(0, 1, 0), (1, 2, 0), (2, 3, 0)]).unwrap();
        let (fa, fb, fc) = (fingerprint(&a), fingerprint(&b), fingerprint(&c));
        assert!(tanimoto(&fa, &fb) > tanimoto(&fa, &fc));
    }

    #[test]
    fn index_ranks_self_first() {
        let db = gdim_datagen::chem_db(20, &gdim_datagen::ChemConfig::default(), 31);
        let idx = FingerprintIndex::build(&db);
        assert_eq!(idx.len(), 20);
        for i in [0usize, 7, 19] {
            let top = idx.topk(&db[i], 3);
            assert_eq!(top[0].0 as usize, i, "graph {i} should match itself");
            assert_eq!(top[0].1, 1.0);
        }
    }

    #[test]
    fn tanimoto_empty_graphs() {
        let empty = Graph::from_parts(vec![], []).unwrap();
        let f = fingerprint(&empty);
        assert_eq!(f.count_ones(), 0);
        assert_eq!(tanimoto(&f, &f), 1.0);
    }

    #[test]
    fn path_keys_are_orientation_invariant() {
        // The same path graph written in both directions fingerprints equally.
        let a = Graph::from_parts(vec![0, 1, 2], [(0, 1, 0), (1, 2, 1)]).unwrap();
        let b = Graph::from_parts(vec![2, 1, 0], [(0, 1, 1), (1, 2, 0)]).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}

//! The pairwise dissimilarity engine: computes `δ_ij` for all graph
//! pairs of `DG` (the input of the least-squares objective, Eq. 4),
//! fanned out row-by-row on the shared [`gdim_exec`] runtime. A shared,
//! lock-protected on-demand cache ([`SharedDelta`]) backs DSPMap, whose
//! recursive partitions only ever need sub-blocks of the full matrix —
//! that is exactly why its cost stays linear in `n`.

use gdim_exec::ExecConfig;
use gdim_graph::fxhash::FxHashMap;
use gdim_graph::{delta, Dissimilarity, Graph, McsOptions};
use parking_lot::RwLock;

/// Configuration shared by every δ computation.
#[derive(Debug, Clone)]
pub struct DeltaConfig {
    /// Which dissimilarity (δ1 or δ2; §6 uses δ2 = [`Dissimilarity::AvgNorm`]).
    pub kind: Dissimilarity,
    /// MCS search options (budget, pre-checks).
    pub mcs: McsOptions,
    /// Parallelism budget for matrix/sub-block fills.
    pub exec: ExecConfig,
}

impl Default for DeltaConfig {
    /// Matrix-scale default: the MCS node budget is capped at 16 384
    /// (≈ milliseconds per pair on 15-vertex labeled graphs, mean |Δδ2|
    /// ≈ 0.01 against the unbounded search — quantified by the
    /// `repro ablation` target). Databases imply `O(n²)` pairs; an
    /// unbounded kernel would make every index build hostage to the
    /// hardest pair. Pass a custom [`McsOptions`] for exact-at-any-cost
    /// matrices.
    fn default() -> Self {
        DeltaConfig {
            kind: Dissimilarity::default(),
            mcs: McsOptions {
                node_budget: 16_384,
                ..Default::default()
            },
            exec: ExecConfig::default(),
        }
    }
}

/// Symmetric `n × n` dissimilarity matrix, condensed upper-triangle
/// storage (diagonal is implicitly zero).
#[derive(Debug, Clone)]
pub struct DeltaMatrix {
    n: usize,
    vals: Vec<f64>,
}

impl DeltaMatrix {
    /// Computes δ for every pair of `db` in parallel. Row `i` of the
    /// upper triangle is one task; [`gdim_exec::flat_map_tasks`]
    /// reassembles rows in index order, which is exactly the condensed
    /// layout — so the result is byte-identical for any thread budget.
    pub fn compute(db: &[Graph], cfg: &DeltaConfig) -> Self {
        let n = db.len();
        if n < 2 {
            return DeltaMatrix {
                n,
                vals: Vec::new(),
            };
        }
        let vals = gdim_exec::fill_tasks(
            &cfg.exec,
            n - 1,
            n * (n - 1) / 2,
            0.0,
            |i| Self::row_start(n, i),
            |i| {
                (i + 1..n)
                    .map(|j| delta(cfg.kind, &db[i], &db[j], &cfg.mcs))
                    .collect()
            },
        );
        DeltaMatrix { n, vals }
    }

    /// Builds a matrix from precomputed condensed values (row-major upper
    /// triangle, rows `i` holding pairs `(i, i+1..n)`).
    pub fn from_condensed(n: usize, vals: Vec<f64>) -> Self {
        assert_eq!(vals.len(), n * (n.max(1) - 1) / 2);
        DeltaMatrix { n, vals }
    }

    #[inline]
    fn row_start(n: usize, i: usize) -> usize {
        // Σ_{r<i} (n−1−r) = i·n − i(i+1)/2 − i... expanded directly:
        i * (2 * n - i - 1) / 2
    }

    /// Number of graphs.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// δ(i, j); zero on the diagonal.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.vals[Self::row_start(self.n, a) + (b - a - 1)]
    }

    /// Mean dissimilarity over all pairs (0 when `n < 2`).
    pub fn mean(&self) -> f64 {
        if self.vals.is_empty() {
            0.0
        } else {
            self.vals.iter().sum::<f64>() / self.vals.len() as f64
        }
    }

    /// The condensed values (upper triangle, row-major).
    pub fn condensed(&self) -> &[f64] {
        &self.vals
    }
}

/// An on-demand, thread-safe δ cache over a graph database. DSPMap's
/// recursive `Computec` calls [`SharedDelta::submatrix`] for each
/// partition; pairs are computed at most once across the whole run.
pub struct SharedDelta<'a> {
    db: &'a [Graph],
    cfg: DeltaConfig,
    cache: RwLock<FxHashMap<u64, f64>>,
}

impl<'a> SharedDelta<'a> {
    /// Creates an empty cache over `db`.
    pub fn new(db: &'a [Graph], cfg: DeltaConfig) -> Self {
        SharedDelta {
            db,
            cfg,
            cache: RwLock::new(FxHashMap::default()),
        }
    }

    #[inline]
    fn key(i: u32, j: u32) -> u64 {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        (a as u64) << 32 | b as u64
    }

    /// δ between database graphs `i` and `j`, computing and caching on miss.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        if i == j {
            return 0.0;
        }
        let key = Self::key(i, j);
        if let Some(&v) = self.cache.read().get(&key) {
            return v;
        }
        let v = delta(
            self.cfg.kind,
            &self.db[i as usize],
            &self.db[j as usize],
            &self.cfg.mcs,
        );
        self.cache.write().insert(key, v);
        v
    }

    /// Dense sub-block for the given graph ids (in their given order),
    /// computing missing pairs in parallel.
    pub fn submatrix(&self, ids: &[u32]) -> DeltaMatrix {
        let b = ids.len();
        // Collect missing pairs.
        let mut missing: Vec<(u32, u32)> = Vec::new();
        {
            let cache = self.cache.read();
            for x in 0..b {
                for y in x + 1..b {
                    let key = Self::key(ids[x], ids[y]);
                    if ids[x] != ids[y] && !cache.contains_key(&key) {
                        missing.push((ids[x], ids[y]));
                    }
                }
            }
        }
        missing.sort_unstable();
        missing.dedup();
        if !missing.is_empty() {
            // Chunk so every configured worker gets work even for small
            // sub-blocks, capped at 8 pairs per task so heterogeneous
            // MCS costs still load-balance on large ones.
            let workers = self.cfg.exec.effective_threads(missing.len());
            let chunk = missing.len().div_ceil(workers).clamp(1, 8);
            let computed = gdim_exec::map_chunks(&self.cfg.exec, missing.len(), chunk, |range| {
                missing[range]
                    .iter()
                    .map(|&(i, j)| {
                        let v = delta(
                            self.cfg.kind,
                            &self.db[i as usize],
                            &self.db[j as usize],
                            &self.cfg.mcs,
                        );
                        (Self::key(i, j), v)
                    })
                    .collect()
            });
            let mut cache = self.cache.write();
            for (k, v) in computed {
                cache.insert(k, v);
            }
        }
        let cache = self.cache.read();
        let mut vals = Vec::with_capacity(b * (b.max(1) - 1) / 2);
        for x in 0..b {
            for y in x + 1..b {
                if ids[x] == ids[y] {
                    vals.push(0.0);
                } else {
                    vals.push(cache[&Self::key(ids[x], ids[y])]);
                }
            }
        }
        DeltaMatrix { n: b, vals }
    }

    /// Number of distinct pairs computed so far.
    pub fn computed_pairs(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<Graph> {
        let tri = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0), (0, 2, 0)]).unwrap();
        let p3 = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0)]).unwrap();
        let p4 = Graph::from_parts(vec![0; 4], [(0, 1, 0), (1, 2, 0), (2, 3, 0)]).unwrap();
        let alien = Graph::from_parts(vec![9, 9], [(0, 1, 7)]).unwrap();
        vec![tri, p3, p4, alien]
    }

    #[test]
    fn matrix_matches_direct_computation() {
        let db = db();
        let cfg = DeltaConfig {
            exec: ExecConfig::new(2),
            ..Default::default()
        };
        let m = DeltaMatrix::compute(&db, &cfg);
        for i in 0..db.len() {
            for j in 0..db.len() {
                let want = if i == j {
                    0.0
                } else {
                    delta(cfg.kind, &db[i], &db[j], &cfg.mcs)
                };
                assert_eq!(m.get(i, j), want, "({i},{j})");
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn known_values() {
        let db = db();
        let m = DeltaMatrix::compute(&db, &DeltaConfig::default());
        // tri vs p3: mcs = 2 edges; δ2 = 1 − 4/5.
        assert!((m.get(0, 1) - (1.0 - 4.0 / 5.0)).abs() < 1e-12);
        // alien shares nothing.
        assert_eq!(m.get(0, 3), 1.0);
    }

    #[test]
    fn single_and_empty_databases() {
        let one = vec![db().remove(0)];
        let m = DeltaMatrix::compute(&one, &DeltaConfig::default());
        assert_eq!(m.n(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        let empty: Vec<Graph> = Vec::new();
        let m0 = DeltaMatrix::compute(&empty, &DeltaConfig::default());
        assert_eq!(m0.n(), 0);
    }

    #[test]
    fn shared_delta_caches() {
        let db = db();
        let sd = SharedDelta::new(&db, DeltaConfig::default());
        let v1 = sd.get(0, 1);
        let v2 = sd.get(1, 0);
        assert_eq!(v1, v2);
        assert_eq!(sd.computed_pairs(), 1);
        let sub = sd.submatrix(&[0, 1, 2]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sd.computed_pairs(), 3);
        let full = DeltaMatrix::compute(&db, &DeltaConfig::default());
        for x in 0..3 {
            for y in 0..3 {
                assert_eq!(sub.get(x, y), full.get(x, y));
            }
        }
    }

    #[test]
    fn submatrix_respects_id_order() {
        let db = db();
        let sd = SharedDelta::new(&db, DeltaConfig::default());
        let sub = sd.submatrix(&[2, 0]);
        let full = DeltaMatrix::compute(&db, &DeltaConfig::default());
        assert_eq!(sub.get(0, 1), full.get(2, 0));
    }
}

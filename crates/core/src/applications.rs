//! Further applications of the graph dimension `M`, as promised in §2:
//! "the identified structural dimension M can also be applied in many
//! other graph applications such as **graph pattern matching** and
//! **graph clustering**."
//!
//! * [`ContainmentFilter`] — subgraph-containment search with
//!   filtering-verification (the gIndex/FG-Index pattern, §3): if a
//!   dimension `f` is contained in the query `q`, every answer `g ⊇ q`
//!   must contain `f` too, so candidate graphs are those whose vectors
//!   dominate `φ(q)`; only candidates are verified with VF2.
//! * [`cluster_mapped`] — k-means clustering of the database in the
//!   mapped space (distance-preserving vectors make centroid clustering
//!   meaningful without any further graph operations).

use gdim_graph::vf2::is_subgraph_iso;
use gdim_graph::Graph;

use crate::query::MappedDatabase;

/// Subgraph-containment search over a mapped database.
///
/// Answers `{ g ∈ DG | q ⊆ g }` by dimension-based filtering followed
/// by VF2 verification, reporting how many candidates the filter
/// passed (the paper's related work measures exactly this filtering
/// power).
pub struct ContainmentFilter<'a> {
    db: &'a [Graph],
    mapped: &'a MappedDatabase,
}

/// Result of a containment query.
#[derive(Debug, Clone)]
pub struct ContainmentAnswer {
    /// Ids of graphs containing the query.
    pub matches: Vec<u32>,
    /// Number of graphs that survived the dimension filter (≥ matches;
    /// the verification workload).
    pub candidates: usize,
}

impl<'a> ContainmentFilter<'a> {
    /// Creates a filter over a database and its mapped vectors
    /// (`mapped` must have been built over exactly `db`).
    pub fn new(db: &'a [Graph], mapped: &'a MappedDatabase) -> Self {
        assert_eq!(db.len(), mapped.len(), "db/vector size mismatch");
        ContainmentFilter { db, mapped }
    }

    /// All database graphs containing `q`, with filter statistics.
    pub fn query(&self, q: &Graph) -> ContainmentAnswer {
        let qvec = self.mapped.map_query(q);
        let mut matches = Vec::new();
        let mut candidates = 0usize;
        for i in 0..self.db.len() {
            if !dominates(self.mapped.store().row(i), qvec.words()) {
                continue; // filtered: g misses a dimension contained in q
            }
            candidates += 1;
            if is_subgraph_iso(q, &self.db[i]) {
                matches.push(i as u32);
            }
        }
        ContainmentAnswer {
            matches,
            candidates,
        }
    }

    /// Brute-force reference (VF2 on every graph), for tests and
    /// filtering-power measurements.
    pub fn query_unfiltered(&self, q: &Graph) -> Vec<u32> {
        (0..self.db.len() as u32)
            .filter(|&i| is_subgraph_iso(q, &self.db[i as usize]))
            .collect()
    }
}

/// Whether word row `a` has every bit of `b` (`b ⊆ a` as sets).
fn dominates(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == *y)
}

/// K-means clustering of the database in the mapped space. Returns the
/// cluster assignment per graph.
pub fn cluster_mapped(mapped: &MappedDatabase, k: usize, seed: u64) -> Vec<usize> {
    let points: Vec<Vec<f64>> = (0..mapped.len())
        .map(|i| {
            let v = mapped.vector(i);
            (0..mapped.p())
                .map(|b| if v.get(b) { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    gdim_linalg::kmeans(&points, k, 60, seed).assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::Bitset;
    use crate::featurespace::FeatureSpace;
    use crate::query::Mapping;
    use gdim_mining::{mine, MinerConfig, Support};

    fn setup() -> (Vec<Graph>, FeatureSpace) {
        let db = gdim_datagen::chem_db(40, &gdim_datagen::ChemConfig::default(), 13);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4),
        );
        let space = FeatureSpace::build(db.len(), feats);
        (db, space)
    }

    #[test]
    fn containment_filter_is_sound_and_complete() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features() as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let filter = ContainmentFilter::new(&db, &mapped);
        // Queries: subgraphs of database graphs (guaranteed non-empty
        // answers) and fresh graphs.
        for i in [0usize, 5, 9] {
            let q = gdim_datagen::connected_edge_subgraph(&db[i], 0.5, i as u64);
            let ans = filter.query(&q);
            let brute = filter.query_unfiltered(&q);
            assert_eq!(ans.matches, brute, "query from graph {i}");
            assert!(ans.matches.contains(&(i as u32)));
            assert!(ans.candidates >= ans.matches.len());
            assert!(ans.candidates <= db.len());
        }
    }

    #[test]
    fn filter_actually_prunes() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features() as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let filter = ContainmentFilter::new(&db, &mapped);
        // A moderately specific query should prune a good share of the db.
        let q = gdim_datagen::connected_edge_subgraph(&db[3], 0.8, 99);
        let ans = filter.query(&q);
        assert!(
            ans.candidates < db.len(),
            "filter pruned nothing ({} candidates of {})",
            ans.candidates,
            db.len()
        );
    }

    #[test]
    fn clustering_produces_k_groups() {
        let (_, space) = setup();
        let selected: Vec<u32> = (0..space.num_features() as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let assign = cluster_mapped(&mapped, 4, 7);
        assert_eq!(assign.len(), mapped.len());
        let distinct: std::collections::BTreeSet<usize> = assign.iter().copied().collect();
        assert!(distinct.len() >= 2, "degenerate clustering");
        assert!(distinct.iter().all(|&c| c < 4));
    }

    #[test]
    fn dominates_is_subset_test() {
        let mut a = Bitset::zeros(70);
        let mut b = Bitset::zeros(70);
        a.set(1);
        a.set(65);
        b.set(65);
        assert!(dominates(a.words(), b.words()));
        assert!(!dominates(b.words(), a.words()));
        b.set(2);
        assert!(!dominates(a.words(), b.words()));
    }
}

//! The paper's three top-k quality measures (§6, "Measures"), each
//! comparing an approximate top-k list `A` against the exact ranking
//! `T`:
//!
//! 1. **Precision** `p(k) = |A ∩ T| / k`.
//! 2. **Kendall's tau (top-k form, after Fagin et al.)**
//!    `τ(k) = Σ_{r_i ∈ A} |A_{i+1} ∩ T_{t(r_i)+1}| / (k(2n−k−1))`, where
//!    `t(r_i)` is the true rank of `r_i` and `X_{j}` denotes the suffix
//!    of list `X` starting at position `j`. With `T` the *full* exact
//!    ranking this counts concordant ordered pairs of `A`.
//! 3. **Inverse rank distance** `γ_inv(k) = k / Σ_{r_i ∈ A} |i − t(r_i)|`
//!    (the inverse Spearman footrule of the paper; we guard the perfect
//!    case by flooring the denominator at 1, so a perfect list scores `k`).
//!
//! All three grow with quality. The paper reports them **relative to a
//! benchmark ranker** (the PubChem fingerprint on real data, the best
//! algorithm on synthetic data); the harness in `gdim-bench` performs
//! that normalization.

/// `p(k) = |A ∩ T_k| / k`: fraction of the approximate top-k that
/// belongs to the exact top-k. `approx` and `exact_topk` must have the
/// same length `k`.
pub fn precision(approx: &[u32], exact_topk: &[u32]) -> f64 {
    assert_eq!(
        approx.len(),
        exact_topk.len(),
        "precision compares equal-length top-k lists"
    );
    let k = approx.len();
    if k == 0 {
        return 1.0;
    }
    let exact: std::collections::BTreeSet<u32> = exact_topk.iter().copied().collect();
    let hits = approx.iter().filter(|id| exact.contains(id)).count();
    hits as f64 / k as f64
}

/// Top-k Kendall's tau per the paper's formula. `exact_full` is the
/// exact ranking of the **whole** database (length `n`), so every
/// element of `A` has a true rank `t(r_i)`.
pub fn kendall_tau_topk(approx: &[u32], exact_full: &[u32], k: usize) -> f64 {
    let n = exact_full.len();
    assert!(k >= 1 && k <= approx.len(), "need at least k results");
    assert!(n >= k, "full ranking shorter than k");
    let rank = rank_map(exact_full);
    let a = &approx[..k];
    let mut concordant = 0usize;
    for i in 0..k {
        let ti = rank[&a[i]];
        for &rj in &a[i + 1..k] {
            if rank[&rj] > ti {
                concordant += 1;
            }
        }
    }
    concordant as f64 / (k as f64 * (2.0 * n as f64 - k as f64 - 1.0))
}

/// Inverse rank (footrule) distance `γ_inv(k) = k / max(1, Σ |i − t(r_i)|)`
/// with 1-based positions; larger is better, a perfect list scores `k`.
pub fn rank_distance_inv(approx: &[u32], exact_full: &[u32], k: usize) -> f64 {
    assert!(k >= 1 && k <= approx.len(), "need at least k results");
    let rank = rank_map(exact_full);
    let mut total = 0i64;
    for (i, r) in approx[..k].iter().enumerate() {
        let pos = i as i64 + 1;
        let true_pos = rank[r] as i64 + 1;
        total += (pos - true_pos).abs();
    }
    k as f64 / (total.max(1) as f64)
}

/// Ids of the first `k` entries of a `(id, score)` ranking.
pub fn topk_ids(ranking: &[(u32, f64)], k: usize) -> Vec<u32> {
    ranking.iter().take(k).map(|&(id, _)| id).collect()
}

fn rank_map(exact_full: &[u32]) -> std::collections::HashMap<u32, usize> {
    exact_full
        .iter()
        .enumerate()
        .map(|(pos, &id)| (id, pos))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basic() {
        assert_eq!(precision(&[1, 2, 3, 4], &[1, 2, 3, 4]), 1.0);
        assert_eq!(precision(&[1, 2, 9, 8], &[1, 2, 3, 4]), 0.5);
        assert_eq!(precision(&[9, 8, 7, 6], &[1, 2, 3, 4]), 0.0);
        // Order within the top-k does not matter for precision.
        assert_eq!(precision(&[4, 3, 2, 1], &[1, 2, 3, 4]), 1.0);
    }

    #[test]
    fn kendall_counts_concordant_pairs() {
        let full: Vec<u32> = (0..10).collect();
        let k = 4;
        let n = 10.0;
        let denom = k as f64 * (2.0 * n - k as f64 - 1.0);
        // Perfect order: all C(4,2) = 6 pairs concordant.
        assert!((kendall_tau_topk(&[0, 1, 2, 3], &full, k) - 6.0 / denom).abs() < 1e-12);
        // Fully reversed: zero concordant pairs.
        assert_eq!(kendall_tau_topk(&[3, 2, 1, 0], &full, k), 0.0);
        // One swap (0,1): pairs (1,0) discordant, rest concordant -> 5.
        assert!((kendall_tau_topk(&[1, 0, 2, 3], &full, k) - 5.0 / denom).abs() < 1e-12);
    }

    #[test]
    fn kendall_handles_out_of_topk_members() {
        // Members deep in the exact ranking still have defined ranks.
        let full: Vec<u32> = (0..10).collect();
        let tau = kendall_tau_topk(&[0, 9, 1, 2], &full, 4);
        // Pairs: (0,9)+(0,1)+(0,2) concordant, (9,1),(9,2) discordant,
        // (1,2) concordant -> 4 concordant.
        let denom = 4.0 * (20.0 - 4.0 - 1.0);
        assert!((tau - 4.0 / denom).abs() < 1e-12);
    }

    #[test]
    fn rank_distance_perfect_and_shifted() {
        let full: Vec<u32> = (0..10).collect();
        // Perfect: denominator floored at 1 -> k.
        assert_eq!(rank_distance_inv(&[0, 1, 2, 3], &full, 4), 4.0);
        // Uniform shift by two: Σ|i − t| = 8 -> 4/8.
        assert_eq!(rank_distance_inv(&[2, 3, 4, 5], &full, 4), 0.5);
    }

    #[test]
    fn topk_ids_extracts_prefix() {
        let ranking = vec![(7u32, 0.0), (3, 0.1), (9, 0.5)];
        assert_eq!(topk_ids(&ranking, 2), vec![7, 3]);
        assert_eq!(topk_ids(&ranking, 10), vec![7, 3, 9]);
    }

    #[test]
    fn measures_reward_better_lists() {
        let full: Vec<u32> = (0..100).collect();
        let good = [0u32, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let ok = [0u32, 1, 2, 3, 4, 50, 51, 52, 53, 54];
        let bad = [90u32, 91, 92, 93, 94, 95, 96, 97, 98, 99];
        let k = 10;
        let p = |a: &[u32]| precision(a, &full[..k]);
        assert!(p(&good) > p(&ok) && p(&ok) > p(&bad));
        let g = |a: &[u32]| rank_distance_inv(a, &full, k);
        assert!(g(&good) > g(&ok) && g(&ok) > g(&bad));
    }
}

//! Feature-correlation score (Fig. 2): the Jaccard coefficient between
//! the support sets of two features ("The correlation score between two
//! features ... is defined using Jaccard Coefficient"), summed over all
//! selected pairs. A good DS-preserved mapping selects weakly-correlated
//! features — the paper shows DSPM's score is far below random
//! sampling's while its precision is twice as high.

use crate::featurespace::FeatureSpace;

/// Jaccard coefficient `|A ∩ B| / |A ∪ B|` of two **sorted** id lists
/// (1 when both are empty).
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Sum of pairwise Jaccard correlation over the selected features'
/// support sets — the y-axis of Fig. 2.
pub fn correlation_score(space: &FeatureSpace, selected: &[u32]) -> f64 {
    let mut total = 0.0;
    for (i, &a) in selected.iter().enumerate() {
        let sup_a = space.if_list(a as usize);
        for &b in &selected[i + 1..] {
            total += jaccard(sup_a, space.if_list(b as usize));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
    }

    #[test]
    fn correlation_score_counts_pairs() {
        let db = gdim_datagen::chem_db(20, &gdim_datagen::ChemConfig::default(), 3);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
        );
        let space = FeatureSpace::build(db.len(), feats);
        let m = space.num_features() as u32;
        assert!(m >= 3, "enough features for the test");
        // Score over a singleton is 0; over identical pair it is the
        // pairwise Jaccard; adding features never decreases it.
        assert_eq!(correlation_score(&space, &[0]), 0.0);
        let two = correlation_score(&space, &[0, 1]);
        assert_eq!(two, jaccard(space.if_list(0), space.if_list(1)));
        let three = correlation_score(&space, &[0, 1, 2]);
        assert!(three >= two);
    }

    #[test]
    fn duplicated_feature_yields_max_pair_score() {
        let db = gdim_datagen::chem_db(15, &gdim_datagen::ChemConfig::default(), 5);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(2),
        );
        let space = FeatureSpace::build(db.len(), feats);
        // The same feature twice has Jaccard exactly 1.
        assert_eq!(correlation_score(&space, &[0, 0]), 1.0);
    }
}

//! The serving-layer search API: typed request/response top-k search
//! over a built [`GraphIndex`].
//!
//! The paper's workload is *online*: build the DS-preserved mapping
//! once, then answer a stream of top-k queries (§6 answers each query
//! by mapping + sequential scan). This module shapes that workload as
//! explicit values — a [`SearchRequest`] selects `k`, a [`Ranker`], the
//! [`MappingKind`] and an optional MCS budget; a [`SearchResponse`]
//! carries typed [`Hit`]s plus [`SearchStats`] observability (vectors
//! fully evaluated vs. early-abandoned vs. tombstone-skipped, MCS
//! calls, the answering epoch, wall time) so a server can meter every
//! answer.
//!
//! Four rankers cover the quality/cost spectrum:
//!
//! * [`Ranker::Mapped`] — the paper's fast path: VF2 feature matching,
//!   then a sequential scan of the mapped vectors. No MCS calls.
//! * [`Ranker::Exact`] — the slow reference: one MCS-based dissimilarity
//!   per database graph.
//! * [`Ranker::Refined`] — filter-then-verify (the pattern surveyed in
//!   *Big Graph Search*, Ma et al.): candidate generation in the cheap
//!   mapped space, exact re-ranking of only the top-`c` candidates.
//!   With `candidates ≥ n` it degenerates to [`Ranker::Exact`]; with a
//!   small `c` it buys near-exact answers for `c` MCS calls instead of
//!   `n`.
//! * [`Ranker::Approx`] — the **deliberately inexact** path: an
//!   HNSW-style proximity-graph beam search ([`crate::ann`]) replaces
//!   the O(n) scan, trading *measured* recall for sub-linear latency.
//!   Every answer stamps [`SearchStats::approximate`] so no caller can
//!   mistake it for an exact response.
//!
//! [`Ranker`], [`MappingKind`], and [`SearchRequest`] are
//! `#[non_exhaustive]`: build requests with [`SearchRequest::new`] and
//! the [`SearchRequest::ranker`]/[`SearchRequest::mapping`]/
//! [`SearchRequest::budget`] builder methods, so future rankers,
//! mappings, and request knobs stay additive instead of breaking
//! changes.
//!
//! ```
//! use gdim_core::index::{GraphIndex, IndexOptions};
//! use gdim_core::search::{Ranker, SearchRequest};
//!
//! let db = gdim_datagen::chem_db(40, &gdim_datagen::ChemConfig::default(), 7);
//! let index = GraphIndex::build(db, IndexOptions::default().with_dimensions(30));
//! let query = index.graph(3).unwrap().clone();
//!
//! let fast = index.search(&query, &SearchRequest::topk(5)).unwrap();
//! assert_eq!(fast.hits[0].id.get(), 3); // the graph itself ranks first
//! assert_eq!(fast.stats.mcs_calls, 0);
//!
//! let refined = SearchRequest::topk(5).with_ranker(Ranker::Refined { candidates: 10 });
//! let verified = index.search(&query, &refined).unwrap();
//! assert_eq!(verified.stats.mcs_calls, 10);
//! ```

use std::time::{Duration, Instant};

use gdim_graph::{Graph, McsOptions};
use gdim_obs::{Stage, StageTimes};

use crate::error::GdimError;
use crate::index::GraphIndex;
use crate::query::MappingKind;
use crate::scan::{selected_kernel, KernelKind};

/// Typed id of an indexed graph (its position in the database the
/// index was built over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId(pub u32);

impl GraphId {
    /// The raw id.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// The id as a `usize` index into the database.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for GraphId {
    fn from(id: u32) -> Self {
        GraphId(id)
    }
}

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One search answer: a database graph and its distance under the
/// ranker that produced it (mapped Euclidean distance for
/// [`Ranker::Mapped`], graph dissimilarity δ for [`Ranker::Exact`] and
/// [`Ranker::Refined`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The matched database graph.
    pub id: GraphId,
    /// Distance to the query, ascending within a response.
    pub distance: f64,
}

/// Which ranking strategy answers the request.
///
/// Marked `#[non_exhaustive]`: new rankers are additive, so
/// cross-crate `match`es must carry a wildcard arm (route unknown
/// rankers like [`Ranker::Mapped`], or reject them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Ranker {
    /// The paper's fast path: sequential scan in the mapped space.
    #[default]
    Mapped,
    /// The MCS-based reference ranker: one δ evaluation per database
    /// graph. Slow by nature; the quality ceiling.
    Exact,
    /// Two-phase filter-then-verify: take the top-`candidates` graphs
    /// by mapped distance, re-rank exactly those with the exact
    /// dissimilarity. Exact-quality answers whenever the true top-k
    /// survives the candidate cut, at `candidates` MCS calls instead of
    /// `n`.
    ///
    /// `candidates` is the verification budget **and** an answer cap: a
    /// response carries at most `min(k, candidates)` hits, because only
    /// verified candidates are ever returned (their δ distances are not
    /// comparable to unverified mapped distances). Ask for `candidates
    /// ≥ k` — typically a small multiple of `k` — to fill a top-k page.
    Refined {
        /// Candidate-set size `c` for the verification phase (clamped
        /// to the database size).
        candidates: usize,
    },
    /// The **approximate** path: an HNSW-style proximity-graph beam
    /// search over the mapped vectors ([`crate::ann`]) instead of the
    /// exact O(n) scan — sub-linear latency for *measured* (not
    /// guaranteed) recall. This is the serving surface's one
    /// deliberately inexact ranker: responses stamp
    /// [`SearchStats::approximate`], and the committed `BENCH_ann.json`
    /// carries the recall@10 the build actually measured.
    ///
    /// The returned **distances are still exact**: beam candidates get
    /// the same `√(h/p)` / weighted formulas as the scan path,
    /// bit-identical per row — approximation affects only *which* rows
    /// are found. Rows inserted after the proximity graph was built are
    /// scanned exactly (the pending tail) and merged in; tombstoned
    /// rows never surface. The graph builds lazily on the first
    /// `Approx` query of an epoch and is invalidated by rebuilds.
    Approx {
        /// Beam width at layer 0 — the recall/latency dial. The beam
        /// returns up to `ef` live candidates, so ask for `ef ≥ k`
        /// (it is raised to the answer size internally when smaller).
        ef: usize,
        /// `Some(c)`: verify like [`Ranker::Refined`] — re-rank the
        /// beam's top `c` candidates with the exact dissimilarity δ
        /// and answer only from verified candidates (at most
        /// `min(k, c)` hits, bit-identical to `Refined { candidates:
        /// c }` over the same candidate set). `None`: answer straight
        /// from the beam with mapped distances.
        verify: Option<usize>,
    },
}

/// A typed top-k search request.
///
/// [`SearchRequest::default`] gives the paper's configuration: `k =
/// 10`, [`Ranker::Mapped`], [`MappingKind::Binary`], the index's own
/// MCS budget. Marked `#[non_exhaustive]` so request knobs stay
/// additive: construct with [`SearchRequest::new`] (or `default()`)
/// and refine with the [`ranker`](SearchRequest::ranker) /
/// [`mapping`](SearchRequest::mapping) /
/// [`budget`](SearchRequest::budget) builder methods — never a struct
/// literal.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SearchRequest {
    /// Number of answers wanted. `k = 0` yields an empty (well-formed)
    /// response; `k > n` is clamped to the database size. With
    /// [`Ranker::Refined`], the candidate budget also caps the answer
    /// count at `min(k, candidates)` — see [`Ranker::Refined`].
    pub k: usize,
    /// Ranking strategy.
    pub ranker: Ranker,
    /// Distance weighting of the mapped scan ([`MappingKind::Weighted`]
    /// reuses the index's DSPM weights; ignored by [`Ranker::Exact`]).
    pub mapping: MappingKind,
    /// Optional MCS node-budget override for the exact/refined phases
    /// (`None` = the budget the index's δ engine was configured with).
    pub budget: Option<u64>,
}

impl Default for SearchRequest {
    fn default() -> Self {
        SearchRequest {
            k: 10,
            ranker: Ranker::Mapped,
            mapping: MappingKind::Binary,
            budget: None,
        }
    }
}

impl SearchRequest {
    /// A request for the top `k` answers with every other knob at its
    /// default — the builder entry point.
    ///
    /// ```
    /// use gdim_core::search::{Ranker, SearchRequest};
    /// let req = SearchRequest::new(10)
    ///     .ranker(Ranker::Approx { ef: 64, verify: None })
    ///     .budget(50_000);
    /// assert_eq!(req.k, 10);
    /// ```
    pub fn new(k: usize) -> Self {
        SearchRequest {
            k,
            ..Default::default()
        }
    }

    /// A mapped-ranker request for the top `k` answers — the original
    /// spelling of [`SearchRequest::new`], kept so existing callers
    /// keep compiling.
    pub fn topk(k: usize) -> Self {
        Self::new(k)
    }

    /// Sets the ranker.
    pub fn ranker(mut self, ranker: Ranker) -> Self {
        self.ranker = ranker;
        self
    }

    /// Sets the mapped-distance weighting.
    pub fn mapping(mut self, mapping: MappingKind) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the MCS node-budget override.
    pub fn budget(mut self, node_budget: u64) -> Self {
        self.budget = Some(node_budget);
        self
    }

    /// Legacy spelling of [`SearchRequest::ranker`].
    pub fn with_ranker(self, ranker: Ranker) -> Self {
        self.ranker(ranker)
    }

    /// Legacy spelling of [`SearchRequest::mapping`].
    pub fn with_mapping(self, mapping: MappingKind) -> Self {
        self.mapping(mapping)
    }

    /// Legacy spelling of [`SearchRequest::budget`].
    pub fn with_budget(self, node_budget: u64) -> Self {
        self.budget(node_budget)
    }
}

/// Per-request observability counters. The scan counters prove what
/// the kernels saved: `candidates_scanned + early_abandoned +
/// tombstones_skipped` equals the index size whenever a scan ran, and
/// `vf2_calls + vf2_pruned` equals the number of selected dimensions.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Database vectors whose mapped distance was **fully** evaluated
    /// (0 for [`Ranker::Exact`], which never maps the query).
    /// Early-abandoned and tombstone-skipped vectors are counted
    /// separately — this is the work the kernel actually did, not the
    /// pre-PR-3 "all candidates in the database".
    pub candidates_scanned: usize,
    /// Vectors the scan abandoned early because their running distance
    /// already exceeded the k-th bound.
    pub early_abandoned: usize,
    /// Tombstoned (removed-but-not-yet-compacted) rows the scan
    /// skipped without evaluating.
    pub tombstones_skipped: usize,
    /// 64-bit words read by the scan kernel.
    pub words_scanned: usize,
    /// The index epoch (rebuild generation) that answered the request.
    pub epoch: u64,
    /// Live (non-tombstoned) graphs at answer time — the maximum
    /// possible hit count.
    pub live_graphs: usize,
    /// VF2 subgraph-isomorphism tests run while mapping the query.
    pub vf2_calls: usize,
    /// VF2 tests skipped by the containment DAG / invariant prescreen.
    pub vf2_pruned: usize,
    /// Exact (MCS-based) dissimilarity evaluations performed.
    pub mcs_calls: usize,
    /// Time spent matching features into the query (VF2) — the paper's
    /// "feature matching time" share of the query cost.
    pub match_time: Duration,
    /// End-to-end time answering the request.
    pub wall_time: Duration,
    /// Which scan-kernel family serviced the request's vector scan
    /// (`None` when no scan ran — [`Ranker::Exact`] — or the response
    /// predates the scan; see [`KernelKind`]). All kernels are
    /// bit-identical, so this is attribution, never semantics.
    pub kernel: Option<KernelKind>,
    /// Whether this response was answered through the fused multi-query
    /// batch scan (one pass over the store shared by the whole batch)
    /// rather than an independent per-query scan.
    pub fused_batch: bool,
    /// Whether the answer is **approximate** ([`Ranker::Approx`]): the
    /// hit set came from a proximity-graph beam with measured — not
    /// guaranteed — recall. Distances are still exact per row. Always
    /// `false` for the exact rankers; a merged (sharded) answer is
    /// approximate if any shard's part was.
    pub approximate: bool,
    /// The layer-0 beam width that answered an approximate request
    /// (0 when `approximate` is false). Merges by max.
    pub ef: usize,
    /// Distance evaluations the proximity-graph descent + beam
    /// performed — the approximate path's analogue of
    /// `candidates_scanned`, which for [`Ranker::Approx`] counts only
    /// the exactly-scanned pending-tail rows. Sums across shards.
    pub beam_visited: usize,
    /// Per-stage breakdown of where the request's time went
    /// ([`gdim_obs::Stage`] vocabulary: map, scan / ann_beam, refine,
    /// merge — the serving layer adds parse/serialize on top). Sums
    /// stage-wise across shards, like the time shares above.
    pub stages: StageTimes,
}

impl SearchStats {
    /// Folds another partition's stats into `self` — the aggregation a
    /// sharded (scatter-gather) search uses to report one coherent
    /// [`SearchStats`] for work spread over several indexes, so callers
    /// never hand-sum stat fields.
    ///
    /// Additive work counters (`candidates_scanned`, `early_abandoned`,
    /// `tombstones_skipped`, `words_scanned`, `vf2_calls`,
    /// `vf2_pruned`, `mcs_calls`, `live_graphs`) and the time shares
    /// (`match_time`, `wall_time`) **sum**; `epoch` takes the **max**
    /// (partitions rebuild independently, so the merged value reports
    /// the newest generation that contributed to the answer);
    /// `kernel` keeps the first stamped kind (partitions of one
    /// process always agree) and `fused_batch` **or**s (the answer
    /// rode the fused path if any partition did). The approximate
    /// fields follow the same shapes: `approximate` **or**s (one
    /// approximate partition makes the whole answer approximate),
    /// `beam_visited` **sums** (it is work), and `ef` takes the
    /// **max** (it is a setting, not work — partitions of one request
    /// always agree, so max is the identity-preserving fold). `stages`
    /// **sums** stage-wise, matching the time shares.
    pub fn merge(&mut self, other: &SearchStats) {
        self.candidates_scanned += other.candidates_scanned;
        self.early_abandoned += other.early_abandoned;
        self.tombstones_skipped += other.tombstones_skipped;
        self.words_scanned += other.words_scanned;
        self.epoch = self.epoch.max(other.epoch);
        self.live_graphs += other.live_graphs;
        self.vf2_calls += other.vf2_calls;
        self.vf2_pruned += other.vf2_pruned;
        self.mcs_calls += other.mcs_calls;
        self.match_time += other.match_time;
        self.wall_time += other.wall_time;
        self.kernel = self.kernel.or(other.kernel);
        self.fused_batch |= other.fused_batch;
        self.approximate |= other.approximate;
        self.ef = self.ef.max(other.ef);
        self.beam_visited += other.beam_visited;
        self.stages.merge(&other.stages);
    }

    /// [`SearchStats::merge`] over any number of partition stats,
    /// starting from [`SearchStats::default`].
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a SearchStats>) -> SearchStats {
        let mut out = SearchStats::default();
        for part in parts {
            out.merge(part);
        }
        out
    }
}

impl std::fmt::Display for SearchStats {
    /// One compact human-readable line — what a CLI prints after the
    /// hit table and what a log line carries. Counters that were
    /// provably zero-work (no VF2, no MCS, no skips) are elided so the
    /// common mapped-scan line stays short.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scanned {} of {} live rows ({} words)",
            self.candidates_scanned, self.live_graphs, self.words_scanned
        )?;
        if self.early_abandoned > 0 {
            write!(f, ", {} abandoned early", self.early_abandoned)?;
        }
        if self.tombstones_skipped > 0 {
            write!(f, ", {} tombstoned", self.tombstones_skipped)?;
        }
        if self.vf2_calls > 0 || self.vf2_pruned > 0 {
            write!(
                f,
                "; vf2 {} ran / {} pruned",
                self.vf2_calls, self.vf2_pruned
            )?;
        }
        if self.mcs_calls > 0 {
            write!(f, "; mcs {}", self.mcs_calls)?;
        }
        write!(f, "; epoch {}", self.epoch)?;
        if let Some(kernel) = self.kernel {
            write!(f, "; kernel {}", kernel.name())?;
        }
        if self.fused_batch {
            write!(f, " (fused batch)")?;
        }
        if self.approximate {
            write!(
                f,
                "; APPROXIMATE (ef {}, beam visited {})",
                self.ef, self.beam_visited
            )?;
        }
        write!(
            f,
            "; match {:.1?}, wall {:.1?}",
            self.match_time, self.wall_time
        )?;
        if !self.stages.is_empty() {
            write!(f, " [{}]", self.stages)?;
        }
        Ok(())
    }
}

/// A search answer: hits ascending by `(distance, id)` plus the stats
/// of the work performed.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The top-k hits, ascending by `(distance, id)`.
    pub hits: Vec<Hit>,
    /// What the request cost.
    pub stats: SearchStats,
}

impl SearchResponse {
    /// The hit ids in rank order.
    pub fn ids(&self) -> Vec<GraphId> {
        self.hits.iter().map(|h| h.id).collect()
    }

    /// The best hit, if any.
    pub fn top(&self) -> Option<&Hit> {
        self.hits.first()
    }

    /// A compact fixed-width table of the hits — rank, graph id,
    /// distance — ready to print (used by the CLI's `search` output;
    /// handy in examples and test failure messages). An empty response
    /// renders the header plus an explicit `(no hits)` row, so output
    /// is never silently blank. An **approximate** answer
    /// ([`SearchStats::approximate`]) appends an explicit trailer
    /// naming the beam settings, so inexact output is never mistaken
    /// for an exact ranking.
    pub fn hit_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:>4}  {:>8}  {:>12}", "rank", "id", "distance");
        if self.hits.is_empty() {
            let _ = writeln!(out, "{:>4}  {:>8}  {:>12}", "-", "-", "(no hits)");
        }
        for (rank, hit) in self.hits.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:>8}  {:>12.6}",
                rank + 1,
                hit.id.to_string(),
                hit.distance
            );
        }
        if self.stats.approximate {
            let _ = writeln!(
                out,
                "(approximate: ef {}, beam visited {})",
                self.stats.ef, self.stats.beam_visited
            );
        }
        out
    }
}

impl GraphIndex {
    /// Answers one typed search request.
    ///
    /// Never panics: edge cases (`k == 0`, `k > n`, an empty database,
    /// a candidate budget larger than `n`) yield well-formed responses,
    /// and failures surface as [`GdimError`]. The exact/refined phases
    /// fan out on the index's [`ExecConfig`](gdim_exec::ExecConfig)
    /// budget and are byte-identical for any thread count.
    pub fn search(&self, query: &Graph, req: &SearchRequest) -> Result<SearchResponse, GdimError> {
        let t0 = Instant::now();
        let mut resp = if matches!(req.ranker, Ranker::Exact) {
            // Exact never maps the query.
            self.exact_response(query, req)
        } else {
            let tm = Instant::now();
            let (qvec, match_stats) = self.mapped().map_query_with_stats(query);
            let match_time = tm.elapsed();
            let mut r = self.premapped_response(query, &qvec, req);
            r.stats.vf2_calls = match_stats.vf2_calls;
            r.stats.vf2_pruned = match_stats.vf2_pruned;
            r.stats.match_time = match_time;
            r.stats.stages.add(Stage::Map, match_time);
            r
        };
        resp.stats.wall_time = t0.elapsed();
        resp.stats.epoch = self.epoch();
        resp.stats.live_graphs = self.live_len();
        Ok(resp)
    }

    /// Answers one request for a whole batch of queries. The per-query
    /// VF2 feature matching fans out on the index's exec budget; then —
    /// for [`Ranker::Mapped`] / [`Ranker::Refined`] with more than one
    /// query — the vector scans run **fused**: one pass over the store
    /// answers the whole batch (per row, every query's distance is
    /// computed while the row's words are hot in cache), with
    /// execution parallelism over row ranges rather than queries (see
    /// [`VectorStore::topk_binary_fused`](crate::scan::VectorStore::topk_binary_fused)).
    /// The refined verification keeps its own inner database-side
    /// fan-out. Output order matches `queries` for any thread budget,
    /// and every response's **hits** equal the corresponding
    /// [`GraphIndex::search`] answer; fused responses set
    /// [`SearchStats::fused_batch`]. Timing stats are metered per
    /// batch: the shared mapping and fused-scan phases are attributed
    /// evenly, so each response's `match_time` is the batch average and
    /// its `wall_time` includes those shares plus the query's own
    /// assembly/verification work.
    pub fn search_batch(
        &self,
        queries: &[Graph],
        req: &SearchRequest,
    ) -> Result<Vec<SearchResponse>, GdimError> {
        if !matches!(req.ranker, Ranker::Mapped | Ranker::Refined { .. }) {
            // Exact never maps queries (its inner ranking is already
            // parallel over the database), and the approximate beam
            // has no fused form — both answer query-by-query.
            return queries.iter().map(|q| self.search(q, req)).collect();
        }
        let t0 = Instant::now();
        let mapped: Vec<(crate::bitset::Bitset, crate::featurespace::MatchStats)> =
            gdim_exec::map_tasks(self.exec(), queries.len(), |i| {
                self.mapped().map_query_with_stats(&queries[i])
            });
        let match_time = t0.elapsed() / queries.len().max(1) as u32;
        let finish = |mut resp: SearchResponse, i: usize, ti: Instant| {
            resp.stats.vf2_calls = mapped[i].1.vf2_calls;
            resp.stats.vf2_pruned = mapped[i].1.vf2_pruned;
            resp.stats.match_time = match_time;
            resp.stats.stages.add(Stage::Map, match_time);
            resp.stats.wall_time = ti.elapsed() + match_time;
            resp.stats.epoch = self.epoch();
            resp.stats.live_graphs = self.live_len();
            resp
        };
        if queries.len() <= 1 {
            // Nothing to fuse; answer the singleton directly.
            return Ok(queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    let ti = Instant::now();
                    let resp = self.premapped_response(q, &mapped[i].0, req);
                    finish(resp, i, ti)
                })
                .collect());
        }
        // The fused scan: one pass over the store for the whole batch,
        // exec-parallel over row ranges. Refined verification then runs
        // serially per query — the MCS re-ranking fans out over the
        // database internally, and nesting two thread pools would
        // oversubscribe.
        let ts = Instant::now();
        let qvecs: Vec<&crate::bitset::Bitset> = mapped.iter().map(|(v, _)| v).collect();
        let scans = self.scan_premapped_fused(&qvecs, req);
        let scan_share = ts.elapsed() / queries.len() as u32;
        Ok(queries
            .iter()
            .zip(scans)
            .enumerate()
            .map(|(i, (q, scan))| {
                let ti = Instant::now();
                let mut resp = self.response_from_scan(q, scan, req);
                resp.stats.fused_batch = true;
                resp.stats.stages.add(Stage::Scan, scan_share);
                let mut resp = finish(resp, i, ti);
                resp.stats.wall_time += scan_share;
                resp
            })
            .collect())
    }

    /// The single [`Ranker::Exact`] implementation (no mapped scan; the
    /// caller stamps `wall_time`). Tombstoned graphs are excluded
    /// *before* the δ fan-out, so dead rows cost no MCS calls and
    /// never surface as hits.
    fn exact_response(&self, query: &Graph, req: &SearchRequest) -> SearchResponse {
        let live = self.tombstones().live_ids();
        let tr = Instant::now();
        let ranked = crate::query::exact_ranking_among(
            self.graphs(),
            &live,
            query,
            self.dissimilarity(),
            &self.mcs_for(req),
            self.exec(),
        );
        let mut stages = StageTimes::new();
        stages.add(Stage::Refine, tr.elapsed());
        SearchResponse {
            hits: Self::hits(ranked, req.k.min(self.len())),
            stats: SearchStats {
                candidates_scanned: 0,
                mcs_calls: live.len(),
                stages,
                ..Default::default()
            },
        }
    }

    /// The single [`Ranker::Mapped`] / [`Ranker::Refined`]
    /// implementation, for a query whose mapped vector is already known
    /// (the caller stamps the match stats and the times). An exact
    /// request is delegated to [`GraphIndex::exact_response`] so every
    /// ranker has exactly one implementation and one stats contract.
    fn premapped_response(
        &self,
        query: &Graph,
        qvec: &crate::bitset::Bitset,
        req: &SearchRequest,
    ) -> SearchResponse {
        match req.ranker {
            Ranker::Exact => self.exact_response(query, req),
            Ranker::Approx { ef, verify } => self.approx_response(query, qvec, req, ef, verify),
            _ => {
                let ts = Instant::now();
                let scan = self.scan_premapped(qvec, req);
                let scan_time = ts.elapsed();
                let mut resp = self.response_from_scan(query, scan, req);
                resp.stats.stages.add(Stage::Scan, scan_time);
                resp
            }
        }
    }

    /// The single [`Ranker::Approx`] implementation: proximity-graph
    /// beam + exact pending-tail merge
    /// ([`GraphIndex::approx_scan_premapped`]), then — when `verify`
    /// asks for it — the same exact re-ranking phase as
    /// [`Ranker::Refined`] over the beam's candidates, so a verified
    /// approximate answer is bit-identical to `Refined` over that
    /// candidate set.
    fn approx_response(
        &self,
        query: &Graph,
        qvec: &crate::bitset::Bitset,
        req: &SearchRequest,
        ef: usize,
        verify: Option<usize>,
    ) -> SearchResponse {
        let n = self.len();
        // Without verification the beam only needs k answers; with it,
        // the beam must produce the full candidate set to re-rank.
        let take = verify.map_or(req.k.min(n), |c| c.min(n));
        let tb = Instant::now();
        let (ranking, ann) = self.approx_scan_premapped(qvec, take, ef, req.mapping);
        let mut stages = StageTimes::new();
        stages.add(Stage::AnnBeam, tb.elapsed());
        let (ranked, mcs_calls) = match verify {
            Some(c) => {
                let c = c.min(n);
                let did = ranking.len().min(c);
                let tr = Instant::now();
                let ranked = self.refine(query, &ranking, c, &self.mcs_for(req));
                stages.add(Stage::Refine, tr.elapsed());
                (ranked, did)
            }
            None => (ranking, 0),
        };
        SearchResponse {
            hits: Self::hits(ranked, req.k.min(n)),
            stats: SearchStats {
                candidates_scanned: ann.tail_scanned,
                tombstones_skipped: ann.tail_tombstones,
                mcs_calls,
                approximate: true,
                ef,
                beam_visited: ann.beam_visited,
                stages,
                ..Default::default()
            },
        }
    }

    /// The scan leg: a bounded top-k (or top-`candidates`, for
    /// [`Ranker::Refined`]) kernel scan under the requested mapping,
    /// tombstone-masked (a mask with no dead rows delegates straight
    /// to the unmasked kernels).
    fn scan_premapped(
        &self,
        qvec: &crate::bitset::Bitset,
        req: &SearchRequest,
    ) -> (Vec<(u32, f64)>, crate::scan::ScanStats) {
        let n = self.len();
        let k = match req.ranker {
            Ranker::Refined { candidates } => candidates.min(n),
            _ => req.k.min(n),
        };
        let dead = Some(self.tombstones());
        match req.mapping {
            MappingKind::Binary => self.mapped().scan_topk_masked(qvec, k, dead),
            MappingKind::Weighted => {
                self.mapped()
                    .scan_topk_with_masked(qvec, k, self.weighted_w_sq(), dead)
            }
        }
    }

    /// The fused batch form of [`GraphIndex::scan_premapped`]: every
    /// query vector answered in one tombstone-masked pass over the
    /// store, exec-parallel over row ranges.
    fn scan_premapped_fused(
        &self,
        qvecs: &[&crate::bitset::Bitset],
        req: &SearchRequest,
    ) -> Vec<(Vec<(u32, f64)>, crate::scan::ScanStats)> {
        let n = self.len();
        let k = match req.ranker {
            Ranker::Refined { candidates } => candidates.min(n),
            _ => req.k.min(n),
        };
        let dead = Some(self.tombstones());
        match req.mapping {
            MappingKind::Binary => {
                self.mapped()
                    .scan_topk_fused_masked(qvecs, k, dead, self.exec())
            }
            MappingKind::Weighted => self.mapped().scan_topk_fused_with_masked(
                qvecs,
                k,
                self.weighted_w_sq(),
                dead,
                self.exec(),
            ),
        }
    }

    /// Assembles the response from a finished scan, running the
    /// refined verification phase when requested.
    fn response_from_scan(
        &self,
        query: &Graph,
        (scanned, scan_stats): (Vec<(u32, f64)>, crate::scan::ScanStats),
        req: &SearchRequest,
    ) -> SearchResponse {
        let n = self.len();
        let mut stages = StageTimes::new();
        let (ranked, mcs_calls) = match req.ranker {
            Ranker::Refined { candidates } => {
                let c = candidates.min(n);
                // The masked scan may return fewer than `c` rows (only
                // live rows exist); count the δ calls actually made.
                let did = scanned.len().min(c);
                let tr = Instant::now();
                let ranked = self.refine(query, &scanned, c, &self.mcs_for(req));
                stages.add(Stage::Refine, tr.elapsed());
                (ranked, did)
            }
            _ => (scanned, 0),
        };
        SearchResponse {
            hits: Self::hits(ranked, req.k.min(n)),
            stats: SearchStats {
                candidates_scanned: scan_stats.vectors_scanned,
                early_abandoned: scan_stats.early_abandoned,
                tombstones_skipped: scan_stats.tombstones_skipped,
                words_scanned: scan_stats.words_scanned,
                mcs_calls,
                kernel: Some(selected_kernel()),
                stages,
                ..Default::default()
            },
        }
    }

    /// Truncates a full ranking into typed hits.
    fn hits(ranked: Vec<(u32, f64)>, k: usize) -> Vec<Hit> {
        ranked
            .into_iter()
            .take(k)
            .map(|(id, distance)| Hit {
                id: GraphId(id),
                distance,
            })
            .collect()
    }

    /// The verification phase of [`Ranker::Refined`]: exact δ for the
    /// top `c` entries of a mapped ranking, through the one δ-ranking
    /// kernel ([`exact_ranking_among`](crate::query::exact_ranking_among),
    /// byte-identical for any thread count), re-sorted ascending by
    /// `(δ, id)`.
    fn refine(
        &self,
        query: &Graph,
        mapped_ranking: &[(u32, f64)],
        c: usize,
        mcs: &McsOptions,
    ) -> Vec<(u32, f64)> {
        let cand_ids: Vec<u32> = mapped_ranking.iter().take(c).map(|&(id, _)| id).collect();
        crate::query::exact_ranking_among(
            self.graphs(),
            &cand_ids,
            query,
            self.dissimilarity(),
            mcs,
            self.exec(),
        )
    }

    fn mcs_for(&self, req: &SearchRequest) -> McsOptions {
        let base = self.delta_config().mcs;
        match req.budget {
            None => base,
            Some(node_budget) => McsOptions {
                node_budget,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{GraphIndex, IndexOptions};

    fn index(n: usize, seed: u64) -> GraphIndex {
        let db = gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed);
        GraphIndex::build(db, IndexOptions::default().with_dimensions(25))
    }

    #[test]
    fn mapped_ranker_matches_low_level_scan() {
        let idx = index(25, 3);
        let q = idx.graph(4).unwrap().clone();
        let resp = idx.search(&q, &SearchRequest::topk(6)).unwrap();
        let low: Vec<(u32, f64)> = idx.mapped().topk(&idx.mapped().map_query(&q), 6);
        assert_eq!(resp.hits.len(), 6);
        for (hit, (id, d)) in resp.hits.iter().zip(low) {
            assert_eq!(hit.id.get(), id);
            assert_eq!(hit.distance, d);
        }
        assert_eq!(resp.stats.mcs_calls, 0);
        assert_eq!(resp.stats.candidates_scanned, 25);
    }

    #[test]
    fn exact_ranker_matches_reference_ranking() {
        let idx = index(12, 5);
        let q = idx.graph(2).unwrap().clone();
        let req = SearchRequest::topk(4).with_ranker(Ranker::Exact);
        let resp = idx.search(&q, &req).unwrap();
        let reference = crate::query::exact_topk(
            idx.graphs(),
            &q,
            4,
            idx.dissimilarity(),
            &idx.delta_config().mcs,
            idx.exec(),
        );
        let got: Vec<(u32, f64)> = resp.hits.iter().map(|h| (h.id.get(), h.distance)).collect();
        assert_eq!(got, reference);
        assert_eq!(resp.stats.mcs_calls, 12);
    }

    #[test]
    fn refined_with_full_candidates_equals_exact() {
        let idx = index(14, 7);
        for qi in [0usize, 5, 9] {
            let q = idx.graph(qi).unwrap().clone();
            let exact = idx
                .search(&q, &SearchRequest::topk(5).with_ranker(Ranker::Exact))
                .unwrap();
            let refined = idx
                .search(
                    &q,
                    &SearchRequest::topk(5).with_ranker(Ranker::Refined {
                        candidates: usize::MAX,
                    }),
                )
                .unwrap();
            assert_eq!(refined.hits, exact.hits, "query {qi}");
            assert_eq!(refined.stats.mcs_calls, idx.len());
        }
    }

    #[test]
    fn refined_counts_only_candidate_mcs_calls() {
        let idx = index(20, 9);
        let q = idx.graph(0).unwrap().clone();
        let req = SearchRequest::topk(3).with_ranker(Ranker::Refined { candidates: 7 });
        let resp = idx.search(&q, &req).unwrap();
        assert_eq!(resp.stats.mcs_calls, 7);
        assert_eq!(resp.hits.len(), 3);
        // Self-query survives the candidate cut and re-ranks first.
        assert_eq!(resp.hits[0].id.get(), 0);
        assert_eq!(resp.hits[0].distance, 0.0);
    }

    #[test]
    fn refined_candidate_budget_caps_the_answer_count() {
        // Only verified candidates are returned: candidates < k yields
        // min(k, candidates) hits (the documented contract), never a
        // mix of verified and unverified distances.
        let idx = index(20, 9);
        let q = idx.graph(0).unwrap().clone();
        let req = SearchRequest::topk(10).with_ranker(Ranker::Refined { candidates: 4 });
        let resp = idx.search(&q, &req).unwrap();
        assert_eq!(resp.hits.len(), 4);
        assert_eq!(resp.stats.mcs_calls, 4);
    }

    #[test]
    fn k_edge_cases_are_well_formed() {
        let idx = index(10, 11);
        let q = idx.graph(1).unwrap().clone();
        let empty = idx.search(&q, &SearchRequest::topk(0)).unwrap();
        assert!(empty.hits.is_empty());
        let all = idx.search(&q, &SearchRequest::topk(10_000)).unwrap();
        assert_eq!(all.hits.len(), 10);
        for r in [Ranker::Exact, Ranker::Refined { candidates: 4 }] {
            let resp = idx
                .search(&q, &SearchRequest::topk(10_000).with_ranker(r))
                .unwrap();
            assert!(resp.hits.len() <= 10);
        }
    }

    #[test]
    fn candidates_scanned_shrinks_under_a_tight_bound() {
        // A self-query with k = 1 pins the k-th bound to distance 0
        // almost immediately; on a multi-word weighted scan every row
        // that differs within its first word is then abandoned early,
        // so candidates_scanned counts only the fully-evaluated rows.
        let db = gdim_datagen::chem_db(40, &gdim_datagen::ChemConfig::default(), 31);
        let idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(100));
        assert!(
            idx.mapped().store().stride() >= 2,
            "need a multi-word scan for early abandon"
        );
        let q = idx.graph(0).unwrap().clone();
        let req = SearchRequest::topk(1).with_mapping(MappingKind::Weighted);
        let resp = idx.search(&q, &req).unwrap();
        let n = idx.len();
        assert_eq!(
            resp.stats.candidates_scanned + resp.stats.early_abandoned,
            n
        );
        assert!(
            resp.stats.early_abandoned > 0,
            "tight bound should abandon some rows"
        );
        assert!(resp.stats.candidates_scanned < n);
        // Wide k cannot abandon anything: every row is fully scanned.
        let wide = idx
            .search(
                &q,
                &SearchRequest::topk(n).with_mapping(MappingKind::Weighted),
            )
            .unwrap();
        assert_eq!(wide.stats.candidates_scanned, n);
        assert_eq!(wide.stats.early_abandoned, 0);
        // Fewer words are read under the tight bound.
        assert!(resp.stats.words_scanned < wide.stats.words_scanned);
    }

    #[test]
    fn candidates_scanned_counts_fully_evaluated_vectors_only() {
        // Pins the post-PR-3 meaning of `candidates_scanned`: the rows
        // whose distance the kernel *fully* evaluated — identical to
        // the kernel's own `vectors_scanned` counter, never the whole
        // database whenever rows were early-abandoned or tombstoned.
        let idx = index(30, 47);
        let q = idx.graph(0).unwrap().clone();
        for req in [
            SearchRequest::topk(3),
            SearchRequest::topk(1).with_mapping(MappingKind::Weighted),
        ] {
            let resp = idx.search(&q, &req).unwrap();
            let (_, kernel) = match req.mapping {
                MappingKind::Binary => {
                    idx.mapped()
                        .scan_topk_masked(&idx.map_query(&q), req.k, Some(idx.tombstones()))
                }
                MappingKind::Weighted => idx.mapped().scan_topk_with_masked(
                    &idx.map_query(&q),
                    req.k,
                    idx.weighted_w_sq(),
                    Some(idx.tombstones()),
                ),
            };
            assert_eq!(resp.stats.candidates_scanned, kernel.vectors_scanned);
            assert_eq!(
                resp.stats.candidates_scanned
                    + resp.stats.early_abandoned
                    + resp.stats.tombstones_skipped,
                idx.len(),
                "fully-evaluated + abandoned + tombstoned covers the index"
            );
        }
    }

    #[test]
    fn tombstoned_rows_never_surface_and_stats_account_for_them() {
        let db = gdim_datagen::chem_db(24, &gdim_datagen::ChemConfig::default(), 21);
        let mut idx = GraphIndex::build(db, IndexOptions::default().with_dimensions(25));
        for dead in [2u32, 3, 11] {
            assert!(idx.remove(GraphId(dead)).unwrap());
        }
        let q = idx.graph(2).unwrap().clone(); // query *is* a tombstoned graph
        for (ranker, mapping) in [
            (Ranker::Mapped, MappingKind::Binary),
            (Ranker::Mapped, MappingKind::Weighted),
            (Ranker::Refined { candidates: 30 }, MappingKind::Binary),
            (Ranker::Exact, MappingKind::Binary),
            (
                Ranker::Approx {
                    ef: 24,
                    verify: None,
                },
                MappingKind::Binary,
            ),
        ] {
            let req = SearchRequest::topk(24)
                .with_ranker(ranker)
                .with_mapping(mapping);
            let resp = idx.search(&q, &req).unwrap();
            assert!(
                resp.hits.iter().all(|h| ![2, 3, 11].contains(&h.id.get())),
                "{ranker:?}/{mapping:?}: dead id in hits"
            );
            assert_eq!(resp.hits.len(), 21, "{ranker:?}: one hit per live graph");
            assert_eq!(resp.stats.live_graphs, 21);
            assert_eq!(resp.stats.epoch, 0);
            match ranker {
                Ranker::Exact => assert_eq!(resp.stats.mcs_calls, 21, "δ only for live"),
                Ranker::Refined { .. } => assert_eq!(resp.stats.mcs_calls, 21),
                Ranker::Approx { .. } => {
                    // n ≤ 2m+1 keeps the proximity graph complete, so
                    // a full-width beam must surface every live row.
                    assert!(resp.stats.approximate);
                    assert_eq!(resp.stats.mcs_calls, 0);
                }
                Ranker::Mapped => {
                    assert_eq!(resp.stats.tombstones_skipped, 3);
                    assert_eq!(
                        resp.stats.candidates_scanned
                            + resp.stats.early_abandoned
                            + resp.stats.tombstones_skipped,
                        24
                    );
                }
            }
        }
    }

    #[test]
    fn match_stats_prove_vf2_pruning() {
        let idx = index(30, 41);
        let q = idx.graph(3).unwrap().clone();
        let resp = idx.search(&q, &SearchRequest::topk(5)).unwrap();
        assert_eq!(
            resp.stats.vf2_calls + resp.stats.vf2_pruned,
            idx.dimensions().len()
        );
        assert!(
            resp.stats.vf2_pruned > 0,
            "chem features nest; some must prune"
        );
        // The exact ranker never maps the query.
        let exact = idx
            .search(&q, &SearchRequest::topk(5).with_ranker(Ranker::Exact))
            .unwrap();
        assert_eq!(exact.stats.vf2_calls, 0);
        assert_eq!(exact.stats.words_scanned, 0);
    }

    #[test]
    fn weighted_mapping_serves_from_the_same_index() {
        let idx = index(20, 13);
        let q = idx.graph(6).unwrap().clone();
        let bin = idx.search(&q, &SearchRequest::topk(5)).unwrap();
        let wgt = idx
            .search(
                &q,
                &SearchRequest::topk(5).with_mapping(MappingKind::Weighted),
            )
            .unwrap();
        // Both place the graph itself first at distance 0.
        assert_eq!(bin.hits[0].id, wgt.hits[0].id);
        assert_eq!(wgt.hits[0].distance, 0.0);
    }

    #[test]
    fn batch_matches_single_for_any_thread_budget() {
        let db = gdim_datagen::chem_db(22, &gdim_datagen::ChemConfig::default(), 17);
        let queries = gdim_datagen::chem_db(5, &gdim_datagen::ChemConfig::default(), 99);
        let reqs = [
            SearchRequest::topk(4),
            SearchRequest::topk(4).with_ranker(Ranker::Refined { candidates: 6 }),
        ];
        for threads in [1usize, 2, 8] {
            let idx = GraphIndex::build(
                db.clone(),
                IndexOptions::default()
                    .with_dimensions(20)
                    .with_threads(threads),
            );
            for req in &reqs {
                let batch = idx.search_batch(&queries, req).unwrap();
                assert_eq!(batch.len(), queries.len());
                for (q, resp) in queries.iter().zip(&batch) {
                    let single = idx.search(q, req).unwrap();
                    assert_eq!(single.hits, resp.hits, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn budget_override_reaches_the_exact_phase() {
        let idx = index(10, 19);
        let q = idx.graph(3).unwrap().clone();
        let req = SearchRequest::topk(3)
            .with_ranker(Ranker::Exact)
            .with_budget(64);
        // A tiny budget still yields a well-formed, complete response.
        let resp = idx.search(&q, &req).unwrap();
        assert_eq!(resp.hits.len(), 3);
        assert_eq!(resp.stats.mcs_calls, 10);
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_the_epoch() {
        let mut a_stages = StageTimes::new();
        a_stages.add_ns(Stage::Scan, 100);
        let mut b_stages = StageTimes::new();
        b_stages.add_ns(Stage::Scan, 50);
        b_stages.add_ns(Stage::Refine, 10);
        let a = SearchStats {
            candidates_scanned: 10,
            early_abandoned: 2,
            tombstones_skipped: 1,
            words_scanned: 40,
            epoch: 3,
            live_graphs: 11,
            vf2_calls: 5,
            vf2_pruned: 7,
            mcs_calls: 4,
            match_time: std::time::Duration::from_micros(10),
            wall_time: std::time::Duration::from_micros(100),
            kernel: None,
            fused_batch: false,
            approximate: false,
            ef: 0,
            beam_visited: 0,
            stages: a_stages,
        };
        let b = SearchStats {
            candidates_scanned: 20,
            early_abandoned: 3,
            tombstones_skipped: 0,
            words_scanned: 80,
            epoch: 1,
            live_graphs: 23,
            vf2_calls: 1,
            vf2_pruned: 0,
            mcs_calls: 6,
            match_time: std::time::Duration::from_micros(20),
            wall_time: std::time::Duration::from_micros(50),
            kernel: Some(KernelKind::Unrolled),
            fused_batch: true,
            approximate: true,
            ef: 48,
            beam_visited: 900,
            stages: b_stages,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.candidates_scanned, 30);
        assert_eq!(m.early_abandoned, 5);
        assert_eq!(m.tombstones_skipped, 1);
        assert_eq!(m.words_scanned, 120);
        assert_eq!(m.epoch, 3, "epoch takes the max, not the sum");
        assert_eq!(m.live_graphs, 34);
        assert_eq!(m.vf2_calls, 6);
        assert_eq!(m.vf2_pruned, 7);
        assert_eq!(m.mcs_calls, 10);
        assert_eq!(m.match_time, std::time::Duration::from_micros(30));
        assert_eq!(m.wall_time, std::time::Duration::from_micros(150));
        // `kernel` keeps the first stamped kind; `fused_batch` ors.
        assert_eq!(m.kernel, Some(KernelKind::Unrolled));
        assert!(m.fused_batch);
        // One approximate partition makes the merged answer
        // approximate; beam work sums, the ef setting maxes.
        assert!(m.approximate, "approximate must OR across shards");
        assert_eq!(m.ef, 48, "ef takes the max, not the sum");
        assert_eq!(m.beam_visited, 900);
        // Stage times sum stage-wise, like the time shares.
        assert_eq!(m.stages.get_ns(Stage::Scan), 150);
        assert_eq!(m.stages.get_ns(Stage::Refine), 10);
        // merged() folds from the default: one part is the identity,
        // and merging the two parts in either order agrees.
        let folded = SearchStats::merged([&a, &b]);
        assert_eq!(folded.candidates_scanned, m.candidates_scanned);
        assert_eq!(folded.epoch, m.epoch);
        assert_eq!(folded.wall_time, m.wall_time);
        let single = SearchStats::merged([&a]);
        assert_eq!(single.candidates_scanned, a.candidates_scanned);
        assert_eq!(single.epoch, a.epoch);
        // Default is the merge identity.
        let empty = SearchStats::merged(std::iter::empty::<&SearchStats>());
        assert_eq!(empty.candidates_scanned, 0);
        assert_eq!(empty.epoch, 0);
    }

    #[test]
    fn stats_display_is_compact_and_complete() {
        let mut stages = StageTimes::new();
        stages.add_ns(Stage::AnnBeam, 700_000);
        stages.add_ns(Stage::Refine, 150_000);
        let stats = SearchStats {
            candidates_scanned: 90,
            early_abandoned: 7,
            tombstones_skipped: 3,
            words_scanned: 400,
            epoch: 2,
            live_graphs: 97,
            vf2_calls: 12,
            vf2_pruned: 8,
            mcs_calls: 5,
            match_time: std::time::Duration::from_micros(120),
            wall_time: std::time::Duration::from_micros(900),
            kernel: Some(KernelKind::Scalar),
            fused_batch: true,
            approximate: true,
            ef: 64,
            beam_visited: 1234,
            stages,
        };
        let line = stats.to_string();
        for needle in [
            "scanned 90 of 97",
            "7 abandoned",
            "3 tombstoned",
            "vf2 12 ran / 8 pruned",
            "mcs 5",
            "epoch 2",
            "kernel scalar",
            "fused batch",
            "APPROXIMATE (ef 64, beam visited 1234)",
            "[ann_beam=",
            "refine=",
        ] {
            assert!(line.contains(needle), "missing {needle:?} in {line:?}");
        }
        // Zero-work counters are elided on the common fast path, and
        // an exact answer never claims approximation.
        let quiet = SearchStats::default().to_string();
        assert!(!quiet.contains("vf2") && !quiet.contains("mcs"));
        assert!(!quiet.contains("APPROXIMATE"));
        assert!(!quiet.contains('['), "empty stage vectors are elided");
    }

    #[test]
    fn hit_table_renders_ranked_rows() {
        let resp = SearchResponse {
            hits: vec![
                Hit {
                    id: GraphId(3),
                    distance: 0.0,
                },
                Hit {
                    id: GraphId(17),
                    distance: 0.25,
                },
            ],
            stats: SearchStats::default(),
        };
        let table = resp.hit_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per hit");
        assert!(lines[0].contains("rank") && lines[0].contains("distance"));
        assert!(lines[1].contains("g3") && lines[1].contains("0.000000"));
        assert!(lines[2].contains("g17") && lines[2].contains("0.250000"));
        let empty = SearchResponse {
            hits: Vec::new(),
            stats: SearchStats::default(),
        };
        assert!(empty.hit_table().contains("(no hits)"));
        // An approximate answer is labeled as such, exact ones never.
        assert!(!table.contains("approximate"));
        let approx = SearchResponse {
            hits: vec![Hit {
                id: GraphId(3),
                distance: 0.0,
            }],
            stats: SearchStats {
                approximate: true,
                ef: 48,
                beam_visited: 210,
                ..Default::default()
            },
        };
        let atable = approx.hit_table();
        assert!(
            atable.contains("(approximate: ef 48, beam visited 210)"),
            "{atable}"
        );
    }

    #[test]
    fn graph_id_formats_and_converts() {
        let id = GraphId::from(7u32);
        assert_eq!(id.to_string(), "g7");
        assert_eq!(id.get(), 7);
        assert_eq!(id.index(), 7usize);
    }
}

//! The flat sequential-scan kernel of the online query path.
//!
//! The paper answers a top-k query by mapping the query onto the `p`
//! selected dimensions and then *sequentially scanning* all database
//! vectors (§6: "we sequentially scan all vectors in the mapped
//! multidimensional space"). This module makes that scan as cheap as
//! the layout allows:
//!
//! * [`VectorStore`] — one contiguous row-major word matrix (structure
//!   of arrays): row `i` is the `stride` words of vector `i`, so a
//!   full scan is a single linear walk over one allocation instead of
//!   a pointer chase through `n` heap-allocated [`Bitset`] values.
//! * [`TopK`] — a bounded selector (fixed-size max-heap keyed by
//!   `(distance, id)`) replacing the full `n`-entry sort: `O(n + k log
//!   k)` instead of `O(n log n)`, and its worst kept entry is the
//!   *bound* the kernels prune against.
//! * [`VectorStore::topk_binary`] — the binary fast path: ranks by the
//!   integer XOR popcount `h = |y_q ⊕ y_g|` and defers the `√(h/p)`
//!   normalization to the final `k` hits, which is sound because
//!   `h ↦ √(h/p)` is strictly monotone (for any realistic `p`, two
//!   distinct popcounts never collide after the square root).
//! * [`VectorStore::topk_weighted`] — the weighted path: word-blocked
//!   accumulation of the per-dimension squared weights (the same
//!   addition order as the naive
//!   [`weighted_sq_xor`](crate::bitset::Bitset::weighted_sq_xor), so
//!   sums are bit-identical), with **early abandon**: once a row's
//!   running squared distance exceeds the current k-th bound it can
//!   never enter the answer, so its remaining words are skipped.
//!
//! Both kernels report [`ScanStats`] (vectors fully scanned, rows
//! abandoned early, words touched) so the serving layer can prove the
//! savings per request. The store is **derived state**: it is rebuilt
//! deterministically from the feature space on index load and is never
//! persisted (see [`crate::persist`]).
//!
//! ## Kernel families (PR 6)
//!
//! The scan is memory-bound, so the per-row loops are serviced by
//! width-optimized kernels from [`gdim_kernels`]: a portable
//! 4-rows-per-iteration unrolled block kernel, an AVX2 intrinsic
//! variant selected at runtime via `is_x86_feature_detected!`, and the
//! original scalar loop as the always-available reference
//! ([`KernelKind`]). All kernels are **bit-identical** — Hamming
//! popcounts are exact integers, and the weighted block form
//! accumulates every row's weights in the same per-row order as the
//! scalar walk, so distances (and hits) never depend on the kernel.
//! `topk_*` entry points use [`selected_kernel`]; the `*_kernel`
//! variants pin an explicit kind for equivalence tests and benches.
//! (For the bounded weighted block, the early-abandon check inside a
//! 4-row block compares against the bound held at block entry; the
//! bound only ever tightens, so a stale bound abandons strictly fewer
//! rows — every abandoned row is one the scalar walk would also have
//! abandoned, and every extra fully-computed row is rejected by the
//! selector. Hits stay bit-identical; only the work counters may
//! differ from the scalar trace.)
//!
//! ## Fused multi-query scan (PR 6)
//!
//! [`VectorStore::topk_binary_fused`] / [`VectorStore::topk_weighted_fused`]
//! (+ `_masked` variants) answer **Q queries in one pass** over the
//! store: per row (or 4-row block), all Q distances are computed while
//! the row's words are hot in cache, each feeding its own bounded
//! [`TopK`] — amortizing the store's memory traffic across the batch.
//! Execution parallelism fans out over **row ranges** (not queries):
//! each range keeps per-query partial selectors, merged afterwards by
//! re-offering the partial `(key, id)` pairs into a fresh selector —
//! an order-independent reduction, so results are byte-identical for
//! every thread budget. Per-query hits are bit-identical to Q
//! independent single-query scans; with more than one range the
//! weighted work counters can be higher than a single scan's (each
//! range re-fills its own selector before its bound starts pruning),
//! but the [`ScanStats`] identity still holds per query.
//!
//! A **dynamic** index (online [`insert`](crate::index::GraphIndex::insert) /
//! [`remove`](crate::index::GraphIndex::remove)) extends the contract
//! two ways:
//!
//! * [`VectorStore::push_row`] appends one vector in place, so an
//!   insert costs an `O(stride)` copy instead of a store rebuild;
//! * removed rows are **tombstoned**, not compacted (ids must stay
//!   stable until the next epoch rebuild): the `*_masked` kernel
//!   variants take an optional [`Tombstones`] mask and skip dead rows
//!   before they reach the selector. A masked call with no dead rows
//!   delegates to the unmasked kernel, so a tombstone-free index pays
//!   **zero** overhead for the capability, and the masked loops are
//!   monomorphized from the same implementation as the unmasked ones,
//!   so live-row accumulation order (and therefore every distance)
//!   stays bit-identical.

use crate::bitset::{weighted_sq_xor_words, Bitset};
use gdim_exec::ExecConfig;
use gdim_kernels::hamming_row;

pub use gdim_kernels::{
    available_kernels, hamming_block4, hamming_block4_multi, hamming_block8_multi_pruned,
    hamming_row_kernel, selected_kernel, KernelKind,
};

/// Minimum rows per exec-parallel range of a fused scan: below this,
/// per-range selector setup would dominate the scan itself, so small
/// stores run as a single range regardless of the thread budget.
pub const MIN_ROWS_PER_RANGE: usize = 256;

/// Contiguous row ranges for an exec-parallel fused scan: up to
/// [`ExecConfig::effective_threads`] ranges, never smaller than
/// [`MIN_ROWS_PER_RANGE`] rows (except the last remainder).
fn scan_ranges(n: usize, exec: &ExecConfig) -> Vec<(usize, usize)> {
    let tasks = exec.effective_threads(n.div_ceil(MIN_ROWS_PER_RANGE).max(1));
    (0..tasks)
        .map(|t| (t * n / tasks, (t + 1) * n / tasks))
        .collect()
}

/// The shared bound-then-offer step of every binary selector loop: a
/// candidate above the cached k-th bound never touches the heap; a
/// kept offer refreshes the bound.
#[inline]
fn offer_bounded<K: Ord + Copy>(sel: &mut TopK<K>, bound: &mut Option<K>, key: K, id: u32) {
    if let Some(b) = *bound {
        if key > b {
            return;
        }
    }
    if sel.offer(key, id) {
        *bound = sel.bound().map(|&(b, _)| b);
    }
}

/// The bounded weighted row walk shared by the scalar kernel, the
/// block kernel's tails, and the fused scan: accumulates the row's
/// squared weighted distance word by word (bits low-to-high — the
/// naive accumulation order, so sums are bit-identical), abandoning as
/// soon as the running total strictly exceeds `bound` with words still
/// unread. Returns `(total, words_touched)`; `touched < stride` means
/// the row was abandoned.
#[inline]
fn weighted_walk(
    query: &[u64],
    row: &[u64],
    w_sq: &[f64],
    bound: f64,
    last: usize,
) -> (f64, usize) {
    let mut total = 0.0f64;
    let mut touched = row.len();
    for (w, (a, b)) in query.iter().zip(row).enumerate() {
        let mut x = a ^ b;
        if x != 0 {
            let block = &w_sq[w * 64..];
            while x != 0 {
                let bit = x.trailing_zeros() as usize;
                x &= x - 1;
                total += block[bit];
            }
        }
        if total > bound && w < last {
            touched = w + 1;
            break;
        }
    }
    (total, touched)
}

/// A flat row-major word matrix holding `n` fixed-length binary
/// vectors: the scan-friendly storage of the mapped database `DM`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorStore {
    n: usize,
    bits: usize,
    stride: usize,
    words: Vec<u64>,
}

/// Work counters for one scan, the observability half of the kernel
/// contract (surfaced per request through
/// [`SearchStats`](crate::search::SearchStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Vectors whose distance was fully evaluated (early-abandoned
    /// rows are **not** counted here — see
    /// [`ScanStats::early_abandoned`]).
    pub vectors_scanned: usize,
    /// Vectors abandoned before their last word because the running
    /// distance already exceeded the k-th bound.
    pub early_abandoned: usize,
    /// Total 64-bit words read across all rows.
    pub words_scanned: usize,
    /// Rows skipped because a [`Tombstones`] mask marked them dead
    /// (always 0 for the unmasked kernels). Whenever a scan ran,
    /// `vectors_scanned + early_abandoned + tombstones_skipped` equals
    /// the store size.
    pub tombstones_skipped: usize,
}

impl ScanStats {
    /// Accumulates another scan's counters into this one — the
    /// reduction a fused scan applies across its row ranges (every
    /// field is a plain sum, so the identity over the store size is
    /// preserved).
    pub fn merge(&mut self, other: &ScanStats) {
        self.vectors_scanned += other.vectors_scanned;
        self.early_abandoned += other.early_abandoned;
        self.words_scanned += other.words_scanned;
        self.tombstones_skipped += other.tombstones_skipped;
    }
}

/// A row liveness mask for a dynamic store: removed rows are marked
/// dead here (ids stay stable) and the masked scan kernels skip them.
/// The mask is cleared by the next epoch rebuild, which compacts the
/// database (see [`GraphIndex::rebuild`](crate::index::GraphIndex::rebuild)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tombstones {
    words: Vec<u64>,
    len: usize,
    dead: usize,
}

impl Tombstones {
    /// An all-live mask over `n` rows.
    pub fn all_live(n: usize) -> Self {
        Tombstones {
            words: vec![0; n.div_ceil(64)],
            len: n,
            dead: 0,
        }
    }

    /// Number of rows tracked (live + dead).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are tracked at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dead rows.
    #[inline]
    pub fn dead_count(&self) -> usize {
        self.dead
    }

    /// Number of live rows.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.len - self.dead
    }

    /// Dead fraction `dead / len` (0 for an empty mask).
    pub fn dead_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.dead as f64 / self.len as f64
        }
    }

    /// Whether row `i` is dead.
    #[inline]
    pub fn is_dead(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Tracks one more row, live.
    pub fn push_live(&mut self) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
    }

    /// Marks row `i` dead; returns whether it was live before (`false`
    /// = the row was already tombstoned, and nothing changed).
    ///
    /// # Panics
    /// If `i` is out of range — callers bounds-check first (the
    /// serving path maps a bad id to a typed error).
    pub fn mark_dead(&mut self, i: usize) -> bool {
        assert!(i < self.len, "tombstone index {i} out of {}", self.len);
        if self.is_dead(i) {
            return false;
        }
        self.words[i / 64] |= 1 << (i % 64);
        self.dead += 1;
        true
    }

    /// The dead row ids, ascending.
    pub fn dead_ids(&self) -> Vec<u32> {
        (0..self.len)
            .filter(|&i| self.is_dead(i))
            .map(|i| i as u32)
            .collect()
    }

    /// The live row ids, ascending.
    pub fn live_ids(&self) -> Vec<u32> {
        (0..self.len)
            .filter(|&i| !self.is_dead(i))
            .map(|i| i as u32)
            .collect()
    }
}

impl VectorStore {
    /// An all-zero store of `n` vectors of `bits` bits each.
    pub fn zeros(n: usize, bits: usize) -> Self {
        let stride = bits.div_ceil(64);
        VectorStore {
            n,
            bits,
            stride,
            words: vec![0; n * stride],
        }
    }

    /// Builds a store from same-length bitset rows.
    ///
    /// # Panics
    /// If the rows disagree on length.
    pub fn from_bitsets(rows: &[Bitset]) -> Self {
        let bits = rows.first().map_or(0, Bitset::len);
        let mut store = VectorStore::zeros(rows.len(), bits);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), bits, "row {i} length mismatch");
            let start = i * store.stride;
            store.words[start..start + store.stride].copy_from_slice(row.words());
        }
        store
    }

    /// Sets bit `bit` of row `row`.
    #[inline]
    pub fn set(&mut self, row: usize, bit: usize) {
        debug_assert!(row < self.n && bit < self.bits);
        self.words[row * self.stride + bit / 64] |= 1 << (bit % 64);
    }

    /// Appends one vector to the store — the scan-side cost of an
    /// online insert: an `O(stride)` word copy, no rebuild, no
    /// reallocation beyond amortized `Vec` growth.
    ///
    /// # Panics
    /// If `row` disagrees with the store's vector length.
    pub fn push_row(&mut self, row: &Bitset) {
        assert_eq!(row.len(), self.bits, "pushed row length mismatch");
        self.words.extend_from_slice(row.words());
        self.n += 1;
    }

    /// Number of vectors `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bits per vector (`p`).
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The words of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// The contiguous words of `rows` consecutive rows starting at
    /// `i` — the shape the block kernels ([`hamming_block4`]) consume.
    #[inline]
    pub fn row_block(&self, i: usize, rows: usize) -> &[u64] {
        &self.words[i * self.stride..(i + rows) * self.stride]
    }

    /// Row `i` materialized as a standalone [`Bitset`].
    pub fn vector(&self, i: usize) -> Bitset {
        Bitset::from_words(self.row(i).to_vec(), self.bits)
    }

    /// Binary top-k scan: the `k` rows with the smallest Hamming
    /// distance to `query`, as `(id, √(h/p))` ascending by `(distance,
    /// id)`. Ranks on the integer popcount `h` and takes the square
    /// root only for the returned hits. The popcount loop is kept
    /// branch-free (integer XOR popcounts are too cheap for a
    /// data-dependent per-word abandon branch to pay for itself — that
    /// trade belongs to the weighted path); the k-th bound instead
    /// rejects rows before they touch the selector heap. Runs on
    /// [`selected_kernel`]; every kernel returns bit-identical hits.
    pub fn topk_binary(&self, query: &[u64], k: usize) -> (Vec<(u32, f64)>, ScanStats) {
        self.topk_binary_kernel(query, k, None, selected_kernel())
    }

    /// [`VectorStore::topk_binary`] over the live rows of a
    /// tombstone-masked store: dead rows are skipped before the
    /// distance loop and counted in
    /// [`ScanStats::tombstones_skipped`]; `k` clamps to the live row
    /// count. `None` (or a mask with no dead rows) delegates to the
    /// unmasked kernel — a tombstone-free index pays nothing.
    pub fn topk_binary_masked(
        &self,
        query: &[u64],
        k: usize,
        dead: Option<&Tombstones>,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        self.topk_binary_kernel(query, k, dead, selected_kernel())
    }

    /// [`VectorStore::topk_binary_masked`] with an explicitly pinned
    /// [`KernelKind`] — the entry point equivalence tests and benches
    /// use to compare kernels (all kinds are bit-identical; `Scalar`
    /// is the reference).
    pub fn topk_binary_kernel(
        &self,
        query: &[u64],
        k: usize,
        dead: Option<&Tombstones>,
        kernel: KernelKind,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        match dead.filter(|t| t.dead_count() > 0) {
            None => self.binary_scan(query, k, self.n, |_| false, 0, kernel),
            Some(t) => {
                debug_assert_eq!(t.len(), self.n, "mask covers a different store");
                self.binary_scan(
                    query,
                    k,
                    t.live_count(),
                    |i| t.is_dead(i),
                    t.dead_count(),
                    kernel,
                )
            }
        }
    }

    /// The one binary scan implementation. `is_dead` is monomorphized
    /// away for the unmasked `|_| false` instantiation, so the
    /// tombstone-free loop compiles to exactly the branch-free kernel,
    /// and live rows accumulate in the same order either way.
    ///
    /// Non-scalar kernels evaluate 4-row blocks through
    /// [`hamming_block4`]; block distances for dead rows are discarded
    /// before the bound/selector step, so hits and stats stay
    /// bit-identical to the scalar row loop (binary stats are analytic
    /// in the live count either way).
    fn binary_scan<F: Fn(usize) -> bool>(
        &self,
        query: &[u64],
        k: usize,
        live: usize,
        is_dead: F,
        dead_count: usize,
        kernel: KernelKind,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        debug_assert_eq!(query.len(), self.stride);
        // Dead rows are skipped by definition, even when nothing else
        // runs (k = 0, or no live rows at all): an all-tombstoned
        // store still reports `tombstones_skipped == n`, keeping the
        // stats identity for monitoring.
        let mut stats = ScanStats {
            tombstones_skipped: dead_count,
            ..ScanStats::default()
        };
        let k = k.min(live);
        if k == 0 {
            return (Vec::new(), stats);
        }
        let mut sel: TopK<u32> = TopK::new(k);
        if self.stride == 0 {
            // p = 0: every distance is 0; ids break the ties.
            for i in 0..self.n {
                if is_dead(i) {
                    continue;
                }
                stats.vectors_scanned += 1;
                sel.offer(0, i as u32);
            }
            return (Self::binary_hits(sel, self.bits), stats);
        }
        // The k-th bound, kept in a local and refreshed only when an
        // offer is kept, so the hot loop never reads the heap.
        let mut bound: Option<u32> = None;
        match kernel {
            KernelKind::Scalar => {
                for (i, row) in self.words.chunks_exact(self.stride).enumerate() {
                    if is_dead(i) {
                        continue;
                    }
                    offer_bounded(&mut sel, &mut bound, hamming_row(query, row), i as u32);
                }
            }
            _ => {
                let mut i = 0usize;
                while i + 4 <= self.n {
                    let block = &self.words[i * self.stride..(i + 4) * self.stride];
                    let h4 = hamming_block4(kernel, query, block, self.stride);
                    for (j, &h) in h4.iter().enumerate() {
                        if is_dead(i + j) {
                            continue;
                        }
                        offer_bounded(&mut sel, &mut bound, h, (i + j) as u32);
                    }
                    i += 4;
                }
                for idx in i..self.n {
                    if is_dead(idx) {
                        continue;
                    }
                    let h = hamming_row_kernel(kernel, query, self.row(idx));
                    offer_bounded(&mut sel, &mut bound, h, idx as u32);
                }
            }
        }
        stats.vectors_scanned = live;
        stats.words_scanned = live * self.stride;
        (Self::binary_hits(sel, self.bits), stats)
    }

    /// Final normalization of the binary selection: `h ↦ √(h/p)` on
    /// the `k` kept hits only.
    fn binary_hits(sel: TopK<u32>, bits: usize) -> Vec<(u32, f64)> {
        let p = bits.max(1) as f64;
        sel.into_sorted()
            .into_iter()
            .map(|(h, id)| (id, (h as f64 / p).sqrt()))
            .collect()
    }

    /// Weighted top-k scan: the `k` rows with the smallest weighted
    /// distance `√(Σ_{i ∈ q ⊕ g} w_sq[i])` to `query`, ascending by
    /// `(distance, id)`. Accumulates word-blocked in exactly the order
    /// of [`Bitset::weighted_sq_xor`] (bit-identical sums) and
    /// **early-abandons** a row as soon as its running squared
    /// distance strictly exceeds the current k-th bound — sound
    /// because the per-word weight contributions are non-negative, so
    /// the remaining words can only grow the distance.
    pub fn topk_weighted(
        &self,
        query: &[u64],
        k: usize,
        w_sq: &[f64],
    ) -> (Vec<(u32, f64)>, ScanStats) {
        self.topk_weighted_kernel(query, k, w_sq, None, selected_kernel())
    }

    /// [`VectorStore::topk_weighted`] over the live rows of a
    /// tombstone-masked store — same contract as
    /// [`VectorStore::topk_binary_masked`]: dead rows never touch the
    /// accumulator or the selector, `k` clamps to the live count, and
    /// the no-dead-rows case delegates to the unmasked kernel.
    pub fn topk_weighted_masked(
        &self,
        query: &[u64],
        k: usize,
        w_sq: &[f64],
        dead: Option<&Tombstones>,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        self.topk_weighted_kernel(query, k, w_sq, dead, selected_kernel())
    }

    /// [`VectorStore::topk_weighted_masked`] with an explicitly pinned
    /// [`KernelKind`]. Hits are bit-identical for every kind; the
    /// non-scalar kinds run the bounded phase in interleaved 4-row
    /// blocks, whose abandon decisions use the bound held at block
    /// entry — so [`ScanStats::early_abandoned`] /
    /// [`ScanStats::words_scanned`] may differ from the scalar trace
    /// (never the hits, and never the stats identity).
    pub fn topk_weighted_kernel(
        &self,
        query: &[u64],
        k: usize,
        w_sq: &[f64],
        dead: Option<&Tombstones>,
        kernel: KernelKind,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        match dead.filter(|t| t.dead_count() > 0) {
            None => self.weighted_scan(query, k, w_sq, self.n, |_| false, 0, kernel),
            Some(t) => {
                debug_assert_eq!(t.len(), self.n, "mask covers a different store");
                self.weighted_scan(
                    query,
                    k,
                    w_sq,
                    t.live_count(),
                    |i| t.is_dead(i),
                    t.dead_count(),
                    kernel,
                )
            }
        }
    }

    /// The one weighted scan implementation (see
    /// [`VectorStore::binary_scan`] for the monomorphization contract).
    ///
    /// Two phases: until the selector fills there is no bound to
    /// prune against, so rows run through the shared full-row kernel;
    /// once a bound exists, the scalar kernel walks rows one at a time
    /// ([`weighted_walk`]) while the non-scalar kinds interleave 4-row
    /// blocks — each row still accumulates its weights in exactly the
    /// scalar per-row order, so sums (and hits) stay bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn weighted_scan<F: Fn(usize) -> bool>(
        &self,
        query: &[u64],
        k: usize,
        w_sq: &[f64],
        live: usize,
        is_dead: F,
        dead_count: usize,
        kernel: KernelKind,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        debug_assert_eq!(query.len(), self.stride);
        debug_assert!(w_sq.len() >= self.bits);
        // See `binary_scan`: dead rows are reported even on the k = 0
        // / no-live-rows early return.
        let mut stats = ScanStats {
            tombstones_skipped: dead_count,
            ..ScanStats::default()
        };
        let k = k.min(live);
        if k == 0 {
            return (Vec::new(), stats);
        }
        let mut sel: TopK<OrdF64> = TopK::new(k);
        if self.stride == 0 {
            for i in 0..self.n {
                if is_dead(i) {
                    continue;
                }
                stats.vectors_scanned += 1;
                sel.offer(OrdF64(0.0), i as u32);
            }
            return (Self::weighted_hits(sel), stats);
        }
        let mut bound: Option<f64> = None;
        let last = self.stride - 1;
        // Phase 1 — selector not yet full: no bound to check between
        // words, so the shared full-row kernel applies (same
        // accumulation order — bit-identical sums).
        let mut i = 0usize;
        while i < self.n && bound.is_none() {
            if !is_dead(i) {
                let total = weighted_sq_xor_words(query, self.row(i), w_sq);
                stats.words_scanned += self.stride;
                stats.vectors_scanned += 1;
                if sel.offer(OrdF64(total), i as u32) {
                    bound = sel.bound().map(|&(OrdF64(b), _)| b);
                }
            }
            i += 1;
        }
        // Phase 2 — bounded, early-abandoning.
        if !matches!(kernel, KernelKind::Scalar) {
            while i + 4 <= self.n {
                let b0 = bound.expect("phase 2 runs with a full selector");
                let base = i * self.stride;
                // `active` = still accumulating; a row leaves the set
                // by being dead up front or by abandoning mid-block.
                let mut active = [false; 4];
                let mut was_live = [false; 4];
                for (j, (a, l)) in active.iter_mut().zip(&mut was_live).enumerate() {
                    *l = !is_dead(i + j);
                    *a = *l;
                }
                if was_live.iter().any(|&l| l) {
                    let mut totals = [0.0f64; 4];
                    let mut touched = [0usize; 4];
                    for w in 0..self.stride {
                        let q = query[w];
                        let block = &w_sq[w * 64..];
                        for j in 0..4 {
                            if !active[j] {
                                continue;
                            }
                            let mut x = q ^ self.words[base + j * self.stride + w];
                            while x != 0 {
                                let bit = x.trailing_zeros() as usize;
                                x &= x - 1;
                                totals[j] += block[bit];
                            }
                            touched[j] = w + 1;
                            if totals[j] > b0 && w < last {
                                active[j] = false;
                            }
                        }
                    }
                    for j in 0..4 {
                        if !was_live[j] {
                            continue;
                        }
                        stats.words_scanned += touched[j];
                        if active[j] {
                            stats.vectors_scanned += 1;
                            if sel.offer(OrdF64(totals[j]), (i + j) as u32) {
                                bound = sel.bound().map(|&(OrdF64(b), _)| b);
                            }
                        } else {
                            stats.early_abandoned += 1;
                        }
                    }
                }
                i += 4;
            }
        }
        while i < self.n {
            if !is_dead(i) {
                let b = bound.expect("phase 2 runs with a full selector");
                let (total, touched) = weighted_walk(query, self.row(i), w_sq, b, last);
                stats.words_scanned += touched;
                if touched < self.stride {
                    stats.early_abandoned += 1;
                } else {
                    stats.vectors_scanned += 1;
                    if sel.offer(OrdF64(total), i as u32) {
                        bound = sel.bound().map(|&(OrdF64(b), _)| b);
                    }
                }
            }
            i += 1;
        }
        (Self::weighted_hits(sel), stats)
    }

    /// Final normalization of the weighted selection: `sq ↦ √sq` on
    /// the `k` kept hits only.
    fn weighted_hits(sel: TopK<OrdF64>) -> Vec<(u32, f64)> {
        sel.into_sorted()
            .into_iter()
            .map(|(OrdF64(sq), id)| (id, sq.sqrt()))
            .collect()
    }

    /// Naive reference for [`VectorStore::topk_weighted`]: every row's
    /// full squared distance, in row order, with no selection — the
    /// baseline the equivalence tests and benches compare against.
    pub fn weighted_sq_distances(&self, query: &[u64], w_sq: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|i| weighted_sq_xor_words(query, self.row(i), w_sq))
            .collect()
    }

    /// Fused binary scan: answers all `queries` in **one pass** over
    /// the store — per 4-row block, every query's distances are
    /// computed while the block's words are hot in cache, each feeding
    /// its own bounded selector. Returns one `(hits, stats)` pair per
    /// query, each bit-identical to the corresponding
    /// [`VectorStore::topk_binary`] call. Parallelism fans out over
    /// row ranges (never queries); see the module docs.
    pub fn topk_binary_fused(
        &self,
        queries: &[&[u64]],
        k: usize,
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        self.topk_binary_fused_kernel(queries, k, None, selected_kernel(), exec)
    }

    /// [`VectorStore::topk_binary_fused`] over the live rows of a
    /// tombstone-masked store (the fused analogue of
    /// [`VectorStore::topk_binary_masked`]).
    pub fn topk_binary_fused_masked(
        &self,
        queries: &[&[u64]],
        k: usize,
        dead: Option<&Tombstones>,
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        self.topk_binary_fused_kernel(queries, k, dead, selected_kernel(), exec)
    }

    /// [`VectorStore::topk_binary_fused_masked`] with an explicitly
    /// pinned [`KernelKind`].
    pub fn topk_binary_fused_kernel(
        &self,
        queries: &[&[u64]],
        k: usize,
        dead: Option<&Tombstones>,
        kernel: KernelKind,
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        let mask = dead.filter(|t| t.dead_count() > 0);
        if let Some(t) = mask {
            debug_assert_eq!(t.len(), self.n, "mask covers a different store");
        }
        let live = mask.map_or(self.n, Tombstones::live_count);
        if k.min(live) == 0 || self.stride == 0 {
            // Degenerate scans (nothing to select, or p = 0) take the
            // single-query path per query: nothing to amortize.
            return queries
                .iter()
                .map(|q| self.topk_binary_kernel(q, k, dead, kernel))
                .collect();
        }
        let k = k.min(live);
        let ranges = scan_ranges(self.n, exec);
        let parts = gdim_exec::map_tasks(exec, ranges.len(), |t| {
            let (start, end) = ranges[t];
            self.binary_fused_range(queries, k, start, end, mask, kernel)
        });
        (0..queries.len())
            .map(|qi| {
                let mut sel: TopK<u32> = TopK::new(k);
                let mut stats = ScanStats::default();
                for part in &parts {
                    let (entries, part_stats) = &part[qi];
                    for &(h, id) in entries {
                        sel.offer(h, id);
                    }
                    stats.merge(part_stats);
                }
                (Self::binary_hits(sel, self.bits), stats)
            })
            .collect()
    }

    /// One row range of a fused binary scan: per-query partial
    /// selections (raw integer popcounts, not yet normalized) plus the
    /// range's work counters (identical for every query — binary stats
    /// are analytic in the range's live count).
    fn binary_fused_range(
        &self,
        queries: &[&[u64]],
        k: usize,
        start: usize,
        end: usize,
        mask: Option<&Tombstones>,
        kernel: KernelKind,
    ) -> Vec<(Vec<(u32, u32)>, ScanStats)> {
        let is_dead = |i: usize| mask.is_some_and(|t| t.is_dead(i));
        let qn = queries.len();
        let mut sels: Vec<TopK<u32>> = (0..qn).map(|_| TopK::new(k)).collect();
        let mut bounds: Vec<Option<u32>> = vec![None; qn];
        // Buffers reused across blocks: h8s[j] is query j's eight
        // block distances, cands[j] its candidate-row bitmask,
        // bound_keys[j] the current k-th key the kernel prunes against
        // (`u32::MAX` while selector j is still filling). One kernel
        // dispatch per 8-row block serves every query; blocks where no
        // query has a candidate (the common case once selectors fill)
        // skip the offer loop entirely.
        let mut h8s: Vec<[u32; 8]> = vec![[0u32; 8]; qn];
        let mut cands: Vec<u8> = vec![0u8; qn];
        let mut bound_keys: Vec<u32> = vec![u32::MAX; qn];
        let mut dead_in_range = 0usize;
        let mut i = start;
        while i + 8 <= end {
            let block = &self.words[i * self.stride..(i + 8) * self.stride];
            let alive: [bool; 8] = std::array::from_fn(|r| !is_dead(i + r));
            dead_in_range += alive.iter().filter(|a| !**a).count();
            let any = hamming_block8_multi_pruned(
                kernel,
                queries,
                block,
                self.stride,
                &bound_keys,
                &mut h8s,
                &mut cands,
            );
            if any {
                for (j, &m) in cands.iter().enumerate() {
                    if m == 0 {
                        continue;
                    }
                    let h8 = h8s[j];
                    for (r, &h) in h8.iter().enumerate() {
                        if (m >> r) & 1 == 1 && alive[r] {
                            offer_bounded(&mut sels[j], &mut bounds[j], h, (i + r) as u32);
                        }
                    }
                    bound_keys[j] = bounds[j].unwrap_or(u32::MAX);
                }
            }
            i += 8;
        }
        while i < end {
            if is_dead(i) {
                dead_in_range += 1;
            } else {
                let row = self.row(i);
                for (j, q) in queries.iter().enumerate() {
                    let h = hamming_row_kernel(kernel, q, row);
                    offer_bounded(&mut sels[j], &mut bounds[j], h, i as u32);
                }
            }
            i += 1;
        }
        let live_in_range = (end - start) - dead_in_range;
        let stats = ScanStats {
            vectors_scanned: live_in_range,
            early_abandoned: 0,
            words_scanned: live_in_range * self.stride,
            tombstones_skipped: dead_in_range,
        };
        sels.into_iter().map(|s| (s.into_sorted(), stats)).collect()
    }

    /// Fused weighted scan: all `queries` answered in one pass over
    /// the store, per row walking every query's weighted accumulation
    /// while the row's words are hot in cache. Hits are bit-identical
    /// to per-query [`VectorStore::topk_weighted`] calls; with more
    /// than one row range the work counters can exceed a single
    /// scan's (each range re-fills its own selector before its bound
    /// prunes), but the [`ScanStats`] identity holds per query.
    pub fn topk_weighted_fused(
        &self,
        queries: &[&[u64]],
        k: usize,
        w_sq: &[f64],
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        self.topk_weighted_fused_masked(queries, k, w_sq, None, exec)
    }

    /// [`VectorStore::topk_weighted_fused`] over the live rows of a
    /// tombstone-masked store. (No kernel parameter: the fused
    /// weighted walk is already the scalar per-row accumulation — the
    /// fusion across queries *is* the optimization — so its trace
    /// matches the `Scalar` kernel exactly at one range.)
    pub fn topk_weighted_fused_masked(
        &self,
        queries: &[&[u64]],
        k: usize,
        w_sq: &[f64],
        dead: Option<&Tombstones>,
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        let mask = dead.filter(|t| t.dead_count() > 0);
        if let Some(t) = mask {
            debug_assert_eq!(t.len(), self.n, "mask covers a different store");
        }
        let live = mask.map_or(self.n, Tombstones::live_count);
        if k.min(live) == 0 || self.stride == 0 {
            return queries
                .iter()
                .map(|q| self.topk_weighted_kernel(q, k, w_sq, dead, KernelKind::Scalar))
                .collect();
        }
        let k = k.min(live);
        let ranges = scan_ranges(self.n, exec);
        let parts = gdim_exec::map_tasks(exec, ranges.len(), |t| {
            let (start, end) = ranges[t];
            self.weighted_fused_range(queries, k, w_sq, start, end, mask)
        });
        (0..queries.len())
            .map(|qi| {
                let mut sel: TopK<OrdF64> = TopK::new(k);
                let mut stats = ScanStats::default();
                for part in &parts {
                    let (entries, part_stats) = &part[qi];
                    for &(sq, id) in entries {
                        sel.offer(sq, id);
                    }
                    stats.merge(part_stats);
                }
                (Self::weighted_hits(sel), stats)
            })
            .collect()
    }

    /// One row range of a fused weighted scan: per query, the exact
    /// scalar single-scan logic (full-row sums until the selector
    /// fills, bounded [`weighted_walk`] after), so per-query stats are
    /// the scalar trace of this range.
    fn weighted_fused_range(
        &self,
        queries: &[&[u64]],
        k: usize,
        w_sq: &[f64],
        start: usize,
        end: usize,
        mask: Option<&Tombstones>,
    ) -> Vec<(Vec<(OrdF64, u32)>, ScanStats)> {
        let is_dead = |i: usize| mask.is_some_and(|t| t.is_dead(i));
        let qn = queries.len();
        let mut sels: Vec<TopK<OrdF64>> = (0..qn).map(|_| TopK::new(k)).collect();
        let mut bounds: Vec<Option<f64>> = vec![None; qn];
        let mut stats = vec![ScanStats::default(); qn];
        let last = self.stride - 1;
        for i in start..end {
            if is_dead(i) {
                for s in &mut stats {
                    s.tombstones_skipped += 1;
                }
                continue;
            }
            let row = self.row(i);
            for (j, q) in queries.iter().enumerate() {
                match bounds[j] {
                    None => {
                        let total = weighted_sq_xor_words(q, row, w_sq);
                        stats[j].words_scanned += self.stride;
                        stats[j].vectors_scanned += 1;
                        if sels[j].offer(OrdF64(total), i as u32) {
                            bounds[j] = sels[j].bound().map(|&(OrdF64(b), _)| b);
                        }
                    }
                    Some(b) => {
                        let (total, touched) = weighted_walk(q, row, w_sq, b, last);
                        stats[j].words_scanned += touched;
                        if touched < self.stride {
                            stats[j].early_abandoned += 1;
                        } else {
                            stats[j].vectors_scanned += 1;
                            if sels[j].offer(OrdF64(total), i as u32) {
                                bounds[j] = sels[j].bound().map(|&(OrdF64(b), _)| b);
                            }
                        }
                    }
                }
            }
        }
        sels.into_iter()
            .zip(stats)
            .map(|(s, st)| (s.into_sorted(), st))
            .collect()
    }
}

/// A total-order `f64` key (via [`f64::total_cmp`]) for the bounded
/// selector — the same comparator the naive reference sort uses, so
/// kernel and reference break ties identically.
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Bounded top-k selection over `(key, id)` pairs: a fixed-size
/// max-heap that keeps the `k` smallest pairs seen so far. An offer
/// that cannot beat the current worst kept pair is rejected in `O(1)`,
/// so selecting `k` from `n` costs `O(n + k log k)` comparisons
/// instead of the `O(n log n)` full sort it replaces.
#[derive(Debug, Clone)]
pub struct TopK<K: Ord + Copy> {
    k: usize,
    heap: std::collections::BinaryHeap<(K, u32)>,
}

impl<K: Ord + Copy> TopK<K> {
    /// A selector keeping the `k` smallest `(key, id)` pairs.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// The worst pair currently kept, available once the selector is
    /// full — the pruning bound: any candidate strictly above this key
    /// can never be selected.
    #[inline]
    pub fn bound(&self) -> Option<&(K, u32)> {
        if self.heap.len() == self.k {
            self.heap.peek()
        } else {
            None
        }
    }

    /// Offers a pair; returns whether it was kept.
    #[inline]
    pub fn offer(&mut self, key: K, id: u32) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push((key, id));
            return true;
        }
        let worst = *self.heap.peek().expect("full selector is non-empty");
        if (key, id) < worst {
            self.heap.pop();
            self.heap.push((key, id));
            true
        } else {
            false
        }
    }

    /// The kept pairs, ascending by `(key, id)`.
    pub fn into_sorted(self) -> Vec<(K, u32)> {
        self.heap.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_from_bits(rows: &[&[usize]], bits: usize) -> VectorStore {
        let mut s = VectorStore::zeros(rows.len(), bits);
        for (i, row) in rows.iter().enumerate() {
            for &b in *row {
                s.set(i, b);
            }
        }
        s
    }

    #[test]
    fn topk_selector_keeps_k_smallest_with_id_ties() {
        let mut sel: TopK<u32> = TopK::new(3);
        for (key, id) in [(5, 0), (1, 9), (5, 1), (1, 2), (7, 3), (0, 4)] {
            sel.offer(key, id);
        }
        assert_eq!(sel.into_sorted(), vec![(0, 4), (1, 2), (1, 9)]);
    }

    #[test]
    fn zero_k_selector_rejects_everything() {
        let mut sel: TopK<u32> = TopK::new(0);
        assert!(!sel.offer(1, 1));
        assert!(sel.into_sorted().is_empty());
        assert!(TopK::<u32>::new(0).bound().is_none());
    }

    #[test]
    fn binary_scan_matches_hand_computed_distances() {
        // 130 bits → 3 words per row, so the multi-word path runs.
        let s = store_from_bits(&[&[0, 65, 129], &[0], &[1, 2, 3, 64, 128], &[]], 130);
        let q = Bitset::from_words(vec![1, 0, 0], 130); // bit 0 set
        let (hits, stats) = s.topk_binary(q.words(), 4);
        // Hamming distances to q: row0 = 2, row1 = 0, row2 = 6, row3 = 1.
        let p = 130f64;
        assert_eq!(hits[0], (1, 0.0));
        assert_eq!(hits[1], (3, (1.0 / p).sqrt()));
        assert_eq!(hits[2], (0, (2.0 / p).sqrt()));
        assert_eq!(hits[3], (2, (6.0 / p).sqrt()));
        assert_eq!(stats.vectors_scanned + stats.early_abandoned, 4);
    }

    #[test]
    fn binary_scan_bounded_k_equals_truncated_full_scan() {
        let rows: Vec<Vec<usize>> = (0..40).map(|i| (0..i % 13).collect()).collect();
        let refs: Vec<&[usize]> = rows.iter().map(Vec::as_slice).collect();
        let s = store_from_bits(&refs, 200);
        let q = Bitset::zeros(200);
        let (full, _) = s.topk_binary(q.words(), 40);
        for k in [0usize, 1, 7, 40, 45] {
            let (hits, _) = s.topk_binary(q.words(), k);
            assert_eq!(hits, &full[..k.min(40)], "k = {k}");
        }
    }

    #[test]
    fn weighted_scan_abandons_rows_under_a_tight_bound() {
        // Row 0 is the query itself (bound 0 after one offer); every
        // other row differs in word 0, so each is abandoned there
        // instead of walking all 4 words.
        let far: Vec<usize> = (0..200).collect();
        let s = store_from_bits(&[&[], &far, &far, &far], 220);
        let q = Bitset::zeros(220);
        let w_sq = vec![1.0; 220];
        let (hits, stats) = s.topk_weighted(q.words(), 1, &w_sq);
        assert_eq!(hits, vec![(0, 0.0)]);
        assert_eq!(stats.early_abandoned, 3);
        assert_eq!(stats.vectors_scanned, 1);
        // Row 0 read fully (4 words); rows 1–3 abandoned after word 0.
        assert_eq!(stats.words_scanned, 4 + 3);
    }

    #[test]
    fn weighted_scan_equals_naive_sums_bit_for_bit() {
        let rows: Vec<Vec<usize>> = (0..25)
            .map(|i| (0..150).filter(|b| (b * 7 + i) % 5 == 0).collect())
            .collect();
        let refs: Vec<&[usize]> = rows.iter().map(Vec::as_slice).collect();
        let s = store_from_bits(&refs, 150);
        let mut q = Bitset::zeros(150);
        for b in (0..150).step_by(3) {
            q.set(b);
        }
        let w_sq: Vec<f64> = (0..150).map(|b| 1.0 / (b + 1) as f64).collect();
        let naive = s.weighted_sq_distances(q.words(), &w_sq);
        let (hits, _) = s.topk_weighted(q.words(), 25, &w_sq);
        for (id, d) in hits {
            assert_eq!(d, naive[id as usize].sqrt(), "row {id}");
        }
    }

    #[test]
    fn empty_store_and_zero_bits_are_well_formed() {
        let s = VectorStore::zeros(0, 100);
        assert!(s.is_empty());
        assert!(s.topk_binary(&[0; 2], 5).0.is_empty());
        // p = 0: every distance is 0, ids break the ties.
        let z = VectorStore::zeros(3, 0);
        let (hits, _) = z.topk_binary(&[], 3);
        assert_eq!(hits, vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
        let (hits, _) = z.topk_weighted(&[], 2, &[]);
        assert_eq!(hits, vec![(0, 0.0), (1, 0.0)]);
    }

    #[test]
    fn push_row_appends_and_scans_identically_to_batch_build() {
        let mut a = Bitset::zeros(130);
        a.set(0);
        a.set(129);
        let mut b = Bitset::zeros(130);
        b.set(65);
        let batch = VectorStore::from_bitsets(&[a.clone(), b.clone()]);
        let mut grown = VectorStore::zeros(0, 130);
        grown.push_row(&a);
        grown.push_row(&b);
        assert_eq!(grown, batch);
        let q = Bitset::zeros(130);
        assert_eq!(
            grown.topk_binary(q.words(), 2),
            batch.topk_binary(q.words(), 2)
        );
    }

    #[test]
    fn masked_scan_equals_unmasked_scan_of_live_rows() {
        let rows: Vec<Vec<usize>> = (0..30)
            .map(|i| (0..130).filter(|b| (b * 3 + i) % 7 == 0).collect())
            .collect();
        let refs: Vec<&[usize]> = rows.iter().map(Vec::as_slice).collect();
        let s = store_from_bits(&refs, 130);
        let mut q = Bitset::zeros(130);
        for b in (0..130).step_by(4) {
            q.set(b);
        }
        let mut dead = Tombstones::all_live(30);
        for i in [0usize, 7, 8, 29] {
            assert!(dead.mark_dead(i));
        }
        let w_sq: Vec<f64> = (0..130).map(|b| 1.0 / (b + 2) as f64).collect();
        for k in [0usize, 1, 5, 26, 40] {
            let (hits, stats) = s.topk_binary_masked(q.words(), k, Some(&dead));
            let (whits, wstats) = s.topk_weighted_masked(q.words(), k, &w_sq, Some(&dead));
            for (id, _) in hits.iter().chain(&whits) {
                assert!(!dead.is_dead(*id as usize), "dead row {id} in hits (k={k})");
            }
            assert_eq!(hits.len(), k.min(26), "k = {k}");
            if k > 0 {
                assert_eq!(stats.tombstones_skipped, 4);
                assert_eq!(
                    stats.vectors_scanned + stats.early_abandoned + stats.tombstones_skipped,
                    30
                );
                assert_eq!(
                    wstats.vectors_scanned + wstats.early_abandoned + wstats.tombstones_skipped,
                    30
                );
            }
            // Reference: a store holding only the live rows, with ids
            // remapped back — distances and relative order must match.
            let live_refs: Vec<&[usize]> = rows
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead.is_dead(*i))
                .map(|(_, r)| r.as_slice())
                .collect();
            let live_store = store_from_bits(&live_refs, 130);
            let live_ids = dead.live_ids();
            let (ref_hits, _) = live_store.topk_binary(q.words(), k);
            let remapped: Vec<(u32, f64)> = ref_hits
                .into_iter()
                .map(|(id, d)| (live_ids[id as usize], d))
                .collect();
            assert_eq!(hits, remapped, "k = {k}");
        }
    }

    #[test]
    fn all_dead_store_still_reports_its_tombstones() {
        // No live rows: the kernel scans nothing, but the skipped rows
        // are still accounted for — the stats identity `scanned +
        // abandoned + skipped == n` must hold for monitoring even when
        // the answer is empty.
        let s = store_from_bits(&[&[0], &[1], &[2]], 130);
        let mut dead = Tombstones::all_live(3);
        for i in 0..3 {
            dead.mark_dead(i);
        }
        let q = Bitset::zeros(130);
        let (hits, stats) = s.topk_binary_masked(q.words(), 5, Some(&dead));
        assert!(hits.is_empty());
        assert_eq!(stats.tombstones_skipped, 3);
        assert_eq!(stats.vectors_scanned + stats.early_abandoned, 0);
        let (whits, wstats) = s.topk_weighted_masked(q.words(), 5, &[1.0; 130], Some(&dead));
        assert!(whits.is_empty());
        assert_eq!(wstats.tombstones_skipped, 3);
    }

    #[test]
    fn masked_scan_without_dead_rows_is_the_unmasked_kernel() {
        let s = store_from_bits(&[&[0, 65], &[1], &[2, 64]], 130);
        let q = Bitset::zeros(130);
        let empty = Tombstones::all_live(3);
        for mask in [None, Some(&empty)] {
            let (hits, stats) = s.topk_binary_masked(q.words(), 2, mask);
            assert_eq!((hits, stats), s.topk_binary(q.words(), 2));
        }
    }

    #[test]
    fn tombstones_track_push_mark_and_fraction() {
        let mut t = Tombstones::all_live(0);
        assert!(t.is_empty());
        assert_eq!(t.dead_fraction(), 0.0);
        for _ in 0..70 {
            t.push_live(); // crosses the word boundary
        }
        assert_eq!((t.len(), t.live_count(), t.dead_count()), (70, 70, 0));
        assert!(t.mark_dead(69));
        assert!(!t.mark_dead(69), "double remove changes nothing");
        assert!(t.mark_dead(0));
        assert_eq!(t.dead_count(), 2);
        assert_eq!(t.dead_ids(), vec![0, 69]);
        assert_eq!(t.live_ids().len(), 68);
        assert!((t.dead_fraction() - 2.0 / 70.0).abs() < 1e-12);
        t.push_live();
        assert!(!t.is_dead(70));
        assert_eq!(t.len(), 71);
    }

    /// Deterministic pseudo-random store for kernel cross-checks.
    fn random_store(n: usize, bits: usize, seed: u64) -> VectorStore {
        let stride = bits.div_ceil(64);
        let mut s = VectorStore::zeros(n, bits);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for i in 0..n {
            for w in 0..stride {
                let mut word = next();
                if w == stride - 1 && !bits.is_multiple_of(64) {
                    word &= (1u64 << (bits % 64)) - 1;
                }
                for b in 0..64 {
                    if word >> b & 1 == 1 {
                        s.set(i, w * 64 + b);
                    }
                }
            }
        }
        s
    }

    #[test]
    fn every_kernel_matches_the_scalar_scan_bit_for_bit() {
        // 150 bits → stride 3 (odd word tail for AVX2); n = 23 leaves
        // a 3-row tail after the 4-row blocks.
        let s = random_store(23, 150, 7);
        let q = random_store(1, 150, 99);
        let mut dead = Tombstones::all_live(23);
        for i in [1usize, 20, 21, 22] {
            dead.mark_dead(i); // tombstones inside the unrolled tail
        }
        let w_sq: Vec<f64> = (0..150).map(|b| 1.0 / (b + 3) as f64).collect();
        for k in [1usize, 4, 23] {
            for mask in [None, Some(&dead)] {
                let reference = s.topk_binary_kernel(q.row(0), k, mask, KernelKind::Scalar);
                let wref = s.topk_weighted_kernel(q.row(0), k, &w_sq, mask, KernelKind::Scalar);
                for kernel in available_kernels() {
                    let got = s.topk_binary_kernel(q.row(0), k, mask, kernel);
                    assert_eq!(got, reference, "binary kernel {kernel}, k {k}");
                    let (whits, wstats) = s.topk_weighted_kernel(q.row(0), k, &w_sq, mask, kernel);
                    assert_eq!(whits, wref.0, "weighted kernel {kernel}, k {k}");
                    // Weighted block abandons against a per-block
                    // stale bound, so counters may differ from the
                    // scalar trace — but the identity must hold.
                    assert_eq!(
                        wstats.vectors_scanned + wstats.early_abandoned + wstats.tombstones_skipped,
                        23,
                        "weighted kernel {kernel}, k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_scan_equals_independent_single_scans() {
        let s = random_store(37, 130, 3);
        let queries_store = random_store(5, 130, 42);
        let queries: Vec<&[u64]> = (0..5).map(|i| queries_store.row(i)).collect();
        let mut dead = Tombstones::all_live(37);
        for i in [0usize, 13, 36] {
            dead.mark_dead(i);
        }
        let w_sq: Vec<f64> = (0..130)
            .map(|b| ((b * 11 + 5) % 17) as f64 / 17.0)
            .collect();
        let exec = ExecConfig::serial();
        for k in [0usize, 1, 6, 40] {
            for mask in [None, Some(&dead)] {
                let fused = s.topk_binary_fused_masked(&queries, k, mask, &exec);
                let wfused = s.topk_weighted_fused_masked(&queries, k, &w_sq, mask, &exec);
                for (j, q) in queries.iter().enumerate() {
                    assert_eq!(
                        fused[j],
                        s.topk_binary_masked(q, k, mask),
                        "binary query {j}, k {k}"
                    );
                    // One range ⇒ the fused weighted trace is exactly
                    // the scalar single-scan trace, stats included.
                    assert_eq!(
                        wfused[j],
                        s.topk_weighted_kernel(q, k, &w_sq, mask, KernelKind::Scalar),
                        "weighted query {j}, k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_scan_is_thread_invariant() {
        // n = 2048 spans multiple `MIN_ROWS_PER_RANGE` ranges, so the
        // range merge actually runs at threads > 1.
        let s = random_store(2048, 70, 11);
        let queries_store = random_store(3, 70, 5);
        let queries: Vec<&[u64]> = (0..3).map(|i| queries_store.row(i)).collect();
        let mut dead = Tombstones::all_live(2048);
        for i in (0..2048).step_by(7) {
            dead.mark_dead(i);
        }
        let w_sq: Vec<f64> = (0..70).map(|b| 1.0 / (b + 1) as f64).collect();
        let serial = ExecConfig::serial();
        let expect_b = s.topk_binary_fused_masked(&queries, 9, Some(&dead), &serial);
        let expect_w = s.topk_weighted_fused_masked(&queries, 9, &w_sq, Some(&dead), &serial);
        for threads in [2usize, 8] {
            let exec = ExecConfig::new(threads);
            let got_b = s.topk_binary_fused_masked(&queries, 9, Some(&dead), &exec);
            let got_w = s.topk_weighted_fused_masked(&queries, 9, &w_sq, Some(&dead), &exec);
            for j in 0..queries.len() {
                // Hits are byte-identical for every thread budget; the
                // binary stats even match exactly (they are analytic).
                assert_eq!(got_b[j], expect_b[j], "binary query {j}, threads {threads}");
                assert_eq!(
                    got_w[j].0, expect_w[j].0,
                    "weighted query {j}, threads {threads}"
                );
                let ws = got_w[j].1;
                assert_eq!(
                    ws.vectors_scanned + ws.early_abandoned + ws.tombstones_skipped,
                    2048,
                    "weighted stats identity, query {j}, threads {threads}"
                );
                // Each single-query scan must agree with the fused one.
                assert_eq!(
                    got_b[j].0,
                    s.topk_binary_masked(queries[j], 9, Some(&dead)).0
                );
            }
        }
    }

    #[test]
    fn fused_scan_handles_exactly_k_live_rows_and_empty_batches() {
        let s = random_store(10, 70, 2);
        let queries_store = random_store(2, 70, 8);
        let queries: Vec<&[u64]> = (0..2).map(|i| queries_store.row(i)).collect();
        let exec = ExecConfig::serial();
        // Exactly k live rows: every live row is a hit.
        let mut dead = Tombstones::all_live(10);
        for i in [0usize, 2, 4, 6, 8, 9] {
            dead.mark_dead(i);
        }
        let fused = s.topk_binary_fused_masked(&queries, 4, Some(&dead), &exec);
        for (j, q) in queries.iter().enumerate() {
            assert_eq!(fused[j], s.topk_binary_masked(q, 4, Some(&dead)));
            assert_eq!(fused[j].0.len(), 4, "query {j}");
        }
        // All rows dead: empty hits, full tombstone accounting.
        let mut all_dead = Tombstones::all_live(10);
        for i in 0..10 {
            all_dead.mark_dead(i);
        }
        for (hits, stats) in s.topk_binary_fused_masked(&queries, 3, Some(&all_dead), &exec) {
            assert!(hits.is_empty());
            assert_eq!(stats.tombstones_skipped, 10);
        }
        // No queries at all: no answers, no work.
        assert!(s.topk_binary_fused(&[], 3, &exec).is_empty());
        assert!(s.topk_weighted_fused(&[], 3, &[1.0; 70], &exec).is_empty());
    }

    #[test]
    fn from_bitsets_roundtrips_rows() {
        let mut a = Bitset::zeros(70);
        a.set(3);
        a.set(69);
        let b = Bitset::zeros(70);
        let s = VectorStore::from_bitsets(&[a.clone(), b.clone()]);
        assert_eq!(s.vector(0), a);
        assert_eq!(s.vector(1), b);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.bits(), 70);
    }
}

//! # gdim-core — DS-preserved mapping for online graph search
//!
//! The paper's primary contribution (Zhu, Yu, Qin; PVLDB 8(1), 2014):
//! map every graph of a database `DG` — and any unseen query — onto a
//! small multidimensional space whose dimensions are frequent subgraphs,
//! such that Euclidean distance in the mapped space approximates the
//! MCS-based graph dissimilarity (**distance-preserving**), including
//! for graphs never seen at index time (**structure-preserving**).
//!
//! Pipeline:
//!
//! 1. Mine candidate features `F` with gSpan (`gdim-mining`).
//! 2. Build a [`FeatureSpace`] (binary matrix + inverted lists `IF`/`IG`,
//!    §5.1.2).
//! 3. Compute the pairwise dissimilarity matrix ([`delta`], §2).
//! 4. Run [`dspm`](dspm()) (Algorithms 1–4) — or [`dspmap`](dspmap())
//!    (Algorithms 5–7) for large databases — to select the `p` dimensions.
//! 5. Build a [`MappedDatabase`] and answer top-k similarity queries by
//!    mapping the query with VF2 and scanning the vectors ([`query`]).
//!
//! The serving surface over that pipeline is [`index::GraphIndex`]:
//! typed [`search::SearchRequest`] / [`search::SearchResponse`] top-k
//! search with pluggable rankers (mapped scan, exact MCS, two-phase
//! filter-then-verify), [`error::GdimError`] instead of panics on the
//! query path, versioned binary persistence ([`persist`]), and **live
//! updates** — online insert/remove with tombstoned rows and
//! epoch-based background rebuilds (see the [`index`] module docs).
//!
//! Quality is evaluated with the paper's three measures
//! ([`measures`]: precision, top-k Kendall's tau, inverse rank
//! distance), against an 881-bit dictionary [`fingerprint`] benchmark
//! ranking (the PubChem-fingerprint substitute).
//!
//! ```
//! use gdim_core::prelude::*;
//! use gdim_mining::{mine, MinerConfig, Support};
//!
//! let db = gdim_datagen::chem_db(60, &gdim_datagen::ChemConfig::default(), 7);
//! let features = mine(&db, &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4));
//! let space = FeatureSpace::build(db.len(), features);
//! let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
//! let result = dspm(&space, &delta, &DspmConfig::new(32));
//! let mapped = MappedDatabase::new(&space, &result.selected, Mapping::Binary).unwrap();
//! let hits = mapped.topk(&mapped.map_query(&db[0]), 5);
//! assert_eq!(hits[0].0, 0); // the graph itself is its own best match
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gdim_exec as exec;

pub mod ann;
pub mod applications;
pub mod bitset;
pub mod correlation;
pub mod delta;
pub mod dspm;
pub mod dspmap;
pub mod error;
pub mod featurespace;
pub mod fingerprint;
pub mod index;
pub mod measures;
pub mod persist;
pub mod query;
pub mod scan;
pub mod search;

/// One-stop imports for downstream users.
pub mod prelude {
    pub use crate::ann::{AnnIndex, AnnParams, AnnScanStats};
    pub use crate::applications::{cluster_mapped, ContainmentFilter};
    pub use crate::bitset::Bitset;
    pub use crate::correlation::{correlation_score, jaccard};
    pub use crate::delta::{DeltaConfig, DeltaMatrix, SharedDelta};
    pub use crate::dspm::{dspm, DspmConfig, DspmResult};
    pub use crate::dspmap::{dspmap, DspmapConfig};
    pub use crate::error::GdimError;
    pub use crate::featurespace::{ContainmentDag, FeatureSpace, GraphInvariants, MatchStats};
    pub use crate::fingerprint::{FingerprintIndex, FINGERPRINT_BITS};
    pub use crate::index::{
        GraphIndex, IndexOptions, RebuildPolicy, RebuildTask, SelectionStrategy,
    };
    pub use crate::measures::{kendall_tau_topk, precision, rank_distance_inv};
    pub use crate::query::{
        exact_ranking, exact_ranking_among, exact_topk, MappedDatabase, Mapping, MappingKind,
    };
    pub use crate::scan::{
        available_kernels, selected_kernel, KernelKind, ScanStats, Tombstones, TopK, VectorStore,
    };
    pub use crate::search::{GraphId, Hit, Ranker, SearchRequest, SearchResponse, SearchStats};
    pub use gdim_exec::{BackgroundTask, CancelToken, ExecConfig};
    pub use gdim_graph::{Dissimilarity, Graph, McsOptions};
}

pub use prelude::*;

//! High-level index API: the one-type entry point a downstream
//! application uses. [`GraphIndex::build`] runs the whole paper
//! pipeline (gSpan mining → δ matrix or DSPMap blocks → dimension
//! selection → mapped database) behind a single builder. The built
//! index is a **serving surface**: it answers typed
//! [`SearchRequest`](crate::search::SearchRequest)s through
//! [`GraphIndex::search`] / [`GraphIndex::search_batch`] (see
//! [`crate::search`] for the ranker spectrum), and it persists to a
//! versioned binary format ([`GraphIndex::save`] / [`GraphIndex::load`])
//! so a server builds once and serves from disk.
//!
//! ```
//! use gdim_core::index::{GraphIndex, IndexOptions};
//! use gdim_core::search::SearchRequest;
//!
//! let db = gdim_datagen::chem_db(60, &gdim_datagen::ChemConfig::default(), 7);
//! let index = GraphIndex::build(db, IndexOptions::default().with_dimensions(40));
//! let query = index.graph(3).unwrap().clone();
//! let resp = index.search(&query, &SearchRequest::topk(5)).unwrap();
//! assert_eq!(resp.hits[0].id.get(), 3);
//!
//! // Build once, serve from disk: the round trip preserves answers.
//! let bytes = index.to_bytes();
//! let reloaded = GraphIndex::from_bytes(&bytes).unwrap();
//! assert_eq!(reloaded.search(&query, &SearchRequest::topk(5)).unwrap().hits, resp.hits);
//! ```

use std::path::Path;
use std::time::{Duration, Instant};

use gdim_exec::ExecConfig;
use gdim_graph::{Dissimilarity, Graph};
use gdim_mining::{mine, MinerConfig, Support};

use crate::bitset::Bitset;
use crate::delta::{DeltaConfig, DeltaMatrix, SharedDelta};
use crate::dspm::{dspm, DspmConfig};
use crate::dspmap::{dspmap, DspmapConfig};
use crate::error::GdimError;
use crate::featurespace::FeatureSpace;
use crate::query::{weighted_w_sq, MappedDatabase, Mapping};

/// How dimensions are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Full DSPM over the complete δ matrix (quadratic state; the
    /// quality reference).
    Dspm,
    /// DSPMap with the given partition size (linear scaling; for large
    /// databases).
    Dspmap {
        /// Partition size `b`.
        partition_size: usize,
    },
    /// Automatic: DSPM below `threshold` graphs, DSPMap (with
    /// `b = n/20`) above — mirroring the paper's practical guidance.
    Auto {
        /// Database size at which to switch to DSPMap.
        threshold: usize,
    },
}

/// Options for [`GraphIndex::build`].
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Number of dimensions `p`.
    pub dimensions: usize,
    /// gSpan minimum support τ.
    pub min_support: Support,
    /// gSpan pattern-size cap (edges).
    pub max_pattern_edges: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// δ computation configuration (dissimilarity kind, MCS budget).
    /// Its embedded [`DeltaConfig::exec`] is the **single parallelism
    /// budget** for the whole build and the index's query entry points
    /// (δ matrix, DSPM/DSPMap, exact ranking, batch query mapping) —
    /// set it via [`IndexOptions::with_threads`] / [`IndexOptions::with_exec`].
    pub delta: DeltaConfig,
    /// RNG seed (DSPMap partitioning).
    pub seed: u64,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            dimensions: 100,
            min_support: Support::Relative(0.05),
            max_pattern_edges: 5,
            strategy: SelectionStrategy::Auto { threshold: 2000 },
            delta: DeltaConfig::default(),
            seed: 0,
        }
    }
}

impl IndexOptions {
    /// Sets the number of dimensions.
    pub fn with_dimensions(mut self, p: usize) -> Self {
        self.dimensions = p;
        self
    }

    /// Sets the gSpan support threshold.
    pub fn with_min_support(mut self, s: Support) -> Self {
        self.min_support = s;
        self
    }

    /// Sets the selection strategy.
    pub fn with_strategy(mut self, s: SelectionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets the worker-thread budget (`0` = all cores) for every
    /// parallel phase of the build and the built index's queries.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.delta.exec = ExecConfig::new(threads);
        self
    }

    /// Sets the full parallelism budget.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.delta.exec = exec;
        self
    }
}

/// Build-phase statistics, for observability.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// Number of frequent features mined (`m`).
    pub mined_features: usize,
    /// Number of selected dimensions (`p`).
    pub dimensions: usize,
    /// Which strategy actually ran.
    pub used_dspmap: bool,
    /// δ pairs computed during the build.
    pub delta_pairs: usize,
    /// Time in gSpan.
    pub mining_time: Duration,
    /// Time computing δ values.
    pub delta_time: Duration,
    /// Time in DSPM/DSPMap.
    pub selection_time: Duration,
}

/// A built graph-similarity index over an owned database: the
/// serving-layer entry point (see the [module docs](self)).
pub struct GraphIndex {
    db: Vec<Graph>,
    space: FeatureSpace,
    mapped: MappedDatabase,
    selected: Vec<u32>,
    weights: Vec<f64>,
    /// Normalized squared per-dimension weights for
    /// [`MappingKind::Weighted`](crate::query::MappingKind::Weighted) requests, derived from `weights`.
    w_sq_weighted: Vec<f64>,
    /// The δ configuration the index was built with — searches re-rank
    /// with the **same** dissimilarity and MCS budget.
    delta: DeltaConfig,
    stats: IndexStats,
}

impl std::fmt::Debug for GraphIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphIndex")
            .field("graphs", &self.db.len())
            .field("features", &self.space.num_features())
            .field("dimensions", &self.selected.len())
            .field("dissimilarity", &self.delta.kind)
            .field("mapping", &self.mapped.kind())
            .finish_non_exhaustive()
    }
}

impl GraphIndex {
    /// Runs the full pipeline over `db`. Every parallel phase draws on
    /// the single [`IndexOptions::delta`] exec budget.
    pub fn build(db: Vec<Graph>, opts: IndexOptions) -> GraphIndex {
        let exec = opts.delta.exec;
        let delta_cfg = opts.delta.clone();
        if db.is_empty() {
            // An empty database still yields a servable (empty) index.
            let space = FeatureSpace::build(0, Vec::new());
            let mapped =
                MappedDatabase::new(&space, &[], Mapping::Binary).expect("empty mapping is valid");
            return GraphIndex {
                db,
                space,
                mapped,
                selected: Vec::new(),
                weights: Vec::new(),
                w_sq_weighted: Vec::new(),
                delta: delta_cfg,
                stats: IndexStats {
                    mined_features: 0,
                    dimensions: 0,
                    used_dspmap: false,
                    delta_pairs: 0,
                    mining_time: Duration::ZERO,
                    delta_time: Duration::ZERO,
                    selection_time: Duration::ZERO,
                },
            };
        }
        let t0 = Instant::now();
        let features = mine(
            &db,
            &MinerConfig::new(opts.min_support).with_max_edges(opts.max_pattern_edges),
        );
        let mining_time = t0.elapsed();
        let space = FeatureSpace::build(db.len(), features);
        let m = space.num_features();
        let p = opts.dimensions.min(m);

        let use_dspmap = match opts.strategy {
            SelectionStrategy::Dspm => false,
            SelectionStrategy::Dspmap { .. } => true,
            SelectionStrategy::Auto { threshold } => db.len() > threshold,
        };

        let (selected, weights, delta_pairs, delta_time, selection_time) = if use_dspmap {
            let b = match opts.strategy {
                SelectionStrategy::Dspmap { partition_size } => partition_size,
                _ => (db.len() / 20).max(10),
            };
            let t1 = Instant::now();
            let sdelta = SharedDelta::new(&db, delta_cfg.clone());
            let cfg = DspmapConfig {
                p,
                partition_size: b,
                sample_size: 16,
                epsilon: 1e-6,
                max_iters: 100,
                exec,
                seed: opts.seed,
            };
            let res = dspmap(&space, &sdelta, &cfg);
            let sel_time = t1.elapsed();
            (
                res.selected,
                res.weights,
                sdelta.computed_pairs(),
                Duration::ZERO, // δ time is interleaved with selection
                sel_time,
            )
        } else {
            let t1 = Instant::now();
            let delta = DeltaMatrix::compute(&db, &delta_cfg);
            let delta_time = t1.elapsed();
            let t2 = Instant::now();
            let res = dspm(
                &space,
                &delta,
                &DspmConfig {
                    exec,
                    ..DspmConfig::new(p)
                },
            );
            let pairs = db.len() * db.len().saturating_sub(1) / 2;
            (res.selected, res.weights, pairs, delta_time, t2.elapsed())
        };

        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary)
            .expect("selected dimensions come from the space itself");
        // Warm the lazy feature containment DAG now: a serving index
        // should pay the one-time pairwise containment cost at build
        // time, not on its first query.
        mapped.containment_dag();
        let w_sq_weighted = weighted_w_sq(&selected, &weights);
        let stats = IndexStats {
            mined_features: m,
            dimensions: selected.len(),
            used_dspmap: use_dspmap,
            delta_pairs,
            mining_time,
            delta_time,
            selection_time,
        };
        GraphIndex {
            db,
            space,
            mapped,
            selected,
            weights,
            w_sq_weighted,
            delta: delta_cfg,
            stats,
        }
    }

    /// Reassembles an index from persisted parts, rebuilding the
    /// derived state (feature space, the flat scan store of binary
    /// mapped vectors, the feature containment DAG, weighted scan
    /// weights) deterministically. An index always stores binary
    /// vectors — [`MappingKind::Weighted`](crate::query::MappingKind::Weighted) requests are served from the
    /// derived DSPM weights, never baked into the vectors. Shared by
    /// [`GraphIndex::from_bytes`].
    pub(crate) fn from_parts(
        db: Vec<Graph>,
        features: Vec<gdim_mining::Feature>,
        selected: Vec<u32>,
        weights: Vec<f64>,
        delta: DeltaConfig,
        stats: IndexStats,
    ) -> Result<GraphIndex, GdimError> {
        let space = FeatureSpace::build(db.len(), features);
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary)?;
        mapped.containment_dag();
        if weights.len() != space.num_features() {
            return Err(GdimError::WeightsMismatch {
                expected: space.num_features(),
                got: weights.len(),
            });
        }
        let w_sq_weighted = weighted_w_sq(&selected, &weights);
        Ok(GraphIndex {
            db,
            space,
            mapped,
            selected,
            weights,
            w_sq_weighted,
            delta,
            stats,
        })
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// The indexed graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.db
    }

    /// One indexed graph, or [`GdimError::GraphOutOfRange`] — the
    /// serving path never panics on a bad id.
    pub fn graph(&self, i: usize) -> Result<&Graph, GdimError> {
        self.db.get(i).ok_or(GdimError::GraphOutOfRange {
            id: i,
            len: self.db.len(),
        })
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The underlying feature space (all mined features).
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.space
    }

    /// The mapped database over the selected dimensions.
    pub fn mapped(&self) -> &MappedDatabase {
        &self.mapped
    }

    /// Selected dimension ids into [`GraphIndex::feature_space`].
    pub fn dimensions(&self) -> &[u32] {
        &self.selected
    }

    /// DSPM/DSPMap weights over all mined features.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The δ-engine configuration the index was built with; its
    /// dissimilarity kind and MCS budget drive every exact re-ranking.
    pub fn delta_config(&self) -> &DeltaConfig {
        &self.delta
    }

    /// The graph dissimilarity the index was built with (and re-ranks
    /// with).
    pub fn dissimilarity(&self) -> Dissimilarity {
        self.delta.kind
    }

    /// The parallelism budget the index was built with (also used by
    /// its query entry points).
    pub fn exec(&self) -> &ExecConfig {
        &self.delta.exec
    }

    /// Replaces the parallelism budget (e.g. after
    /// [`GraphIndex::load`], which cannot know the serving machine's
    /// core count at save time).
    pub fn set_exec(&mut self, exec: ExecConfig) {
        self.delta.exec = exec;
    }

    /// Normalized squared per-dimension weights serving
    /// [`MappingKind::Weighted`](crate::query::MappingKind::Weighted) requests.
    pub(crate) fn weighted_w_sq(&self) -> &[f64] {
        &self.w_sq_weighted
    }

    /// Maps a query graph onto the index's dimensions (containment-DAG
    /// pruned; see [`MappedDatabase::map_query`]).
    pub fn map_query(&self, q: &Graph) -> Bitset {
        self.mapped.map_query(q)
    }

    /// [`GraphIndex::map_query`] plus the pruning counters — how many
    /// VF2 feature tests ran versus were skipped.
    pub fn map_query_with_stats(&self, q: &Graph) -> (Bitset, crate::featurespace::MatchStats) {
        self.mapped.map_query_with_stats(q)
    }

    /// Serializes the index to the versioned binary format (see
    /// [`crate::persist`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::persist::encode(self)
    }

    /// Deserializes an index produced by [`GraphIndex::to_bytes`],
    /// rebuilding all derived state. The exec budget defaults to
    /// [`ExecConfig::default`]; override with [`GraphIndex::set_exec`].
    pub fn from_bytes(bytes: &[u8]) -> Result<GraphIndex, GdimError> {
        crate::persist::decode(bytes)
    }

    /// Writes the index to a file (binary format, version-tagged).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GdimError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an index saved by [`GraphIndex::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<GraphIndex, GdimError> {
        GraphIndex::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{Ranker, SearchRequest};

    fn db(n: usize, seed: u64) -> Vec<Graph> {
        gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed)
    }

    #[test]
    fn build_and_query_roundtrip() {
        let index = GraphIndex::build(db(40, 3), IndexOptions::default().with_dimensions(30));
        assert_eq!(index.len(), 40);
        assert!(index.stats().mined_features > 0);
        assert_eq!(index.dimensions().len(), index.stats().dimensions);
        let q = index.graph(7).unwrap().clone();
        let resp = index.search(&q, &SearchRequest::topk(3)).unwrap();
        assert_eq!(resp.hits[0].id.get(), 7);
        assert_eq!(resp.hits[0].distance, 0.0);
    }

    #[test]
    fn auto_strategy_switches_to_dspmap() {
        let opts = IndexOptions::default()
            .with_dimensions(20)
            .with_strategy(SelectionStrategy::Auto { threshold: 10 });
        let index = GraphIndex::build(db(30, 5), opts);
        assert!(index.stats().used_dspmap);
        // DSPMap never touches all pairs.
        assert!(index.stats().delta_pairs < 30 * 29 / 2);
        let small = GraphIndex::build(
            db(8, 5),
            IndexOptions::default()
                .with_dimensions(10)
                .with_strategy(SelectionStrategy::Auto { threshold: 10 }),
        );
        assert!(!small.stats().used_dspmap);
    }

    #[test]
    fn explicit_dspmap_partition_size() {
        let opts = IndexOptions::default()
            .with_dimensions(15)
            .with_strategy(SelectionStrategy::Dspmap { partition_size: 8 });
        let index = GraphIndex::build(db(25, 7), opts);
        assert!(index.stats().used_dspmap);
        let q = index.graph(0).unwrap().clone();
        let resp = index.search(&q, &SearchRequest::topk(1)).unwrap();
        assert_eq!(resp.hits[0].id.get(), 0);
    }

    #[test]
    fn exact_and_mapped_agree_on_self_query() {
        let index = GraphIndex::build(db(15, 9), IndexOptions::default().with_dimensions(20));
        let q = index.graph(4).unwrap().clone();
        for ranker in [Ranker::Mapped, Ranker::Exact] {
            let resp = index
                .search(&q, &SearchRequest::topk(1).with_ranker(ranker))
                .unwrap();
            assert_eq!(resp.hits[0].id.get(), 4, "{ranker:?}");
        }
    }

    #[test]
    fn exact_reranking_uses_the_configured_dissimilarity() {
        // Build with δ1 (MaxNorm): the index must re-rank with δ1, not
        // the hardcoded default δ2.
        let mut opts = IndexOptions::default().with_dimensions(15);
        opts.delta.kind = Dissimilarity::MaxNorm;
        let index = GraphIndex::build(db(12, 21), opts);
        assert_eq!(index.dissimilarity(), Dissimilarity::MaxNorm);
        let q = index.graph(5).unwrap().clone();
        let resp = index
            .search(&q, &SearchRequest::topk(12).with_ranker(Ranker::Exact))
            .unwrap();
        let want = crate::query::exact_ranking(
            index.graphs(),
            &q,
            Dissimilarity::MaxNorm,
            &index.delta_config().mcs,
            index.exec(),
        );
        let got: Vec<(u32, f64)> = resp.hits.iter().map(|h| (h.id.get(), h.distance)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn out_of_range_graph_is_an_error_not_a_panic() {
        let index = GraphIndex::build(db(5, 23), IndexOptions::default().with_dimensions(10));
        match index.graph(99) {
            Err(GdimError::GraphOutOfRange { id: 99, len: 5 }) => {}
            other => panic!("expected GraphOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn empty_database_builds_and_serves() {
        let index = GraphIndex::build(Vec::new(), IndexOptions::default());
        assert!(index.is_empty());
        let q = db(1, 1).remove(0);
        for ranker in [
            Ranker::Mapped,
            Ranker::Exact,
            Ranker::Refined { candidates: 3 },
        ] {
            let resp = index
                .search(&q, &SearchRequest::topk(5).with_ranker(ranker))
                .unwrap();
            assert!(resp.hits.is_empty(), "{ranker:?}");
        }
    }
}

//! High-level index API: the one-type entry point a downstream
//! application uses. [`GraphIndex::build`] runs the whole paper
//! pipeline (gSpan mining → δ matrix or DSPMap blocks → dimension
//! selection → mapped database) behind a single builder. The built
//! index is a **serving surface**: it answers typed
//! [`SearchRequest`](crate::search::SearchRequest)s through
//! [`GraphIndex::search`] / [`GraphIndex::search_batch`] (see
//! [`crate::search`] for the ranker spectrum), and it persists to a
//! versioned binary format ([`GraphIndex::save`] / [`GraphIndex::load`])
//! so a server builds once and serves from disk.
//!
//! ```
//! use gdim_core::index::{GraphIndex, IndexOptions};
//! use gdim_core::search::SearchRequest;
//!
//! let db = gdim_datagen::chem_db(60, &gdim_datagen::ChemConfig::default(), 7);
//! let index = GraphIndex::build(db, IndexOptions::default().with_dimensions(40));
//! let query = index.graph(3).unwrap().clone();
//! let resp = index.search(&query, &SearchRequest::topk(5)).unwrap();
//! assert_eq!(resp.hits[0].id.get(), 3);
//!
//! // Build once, serve from disk: the round trip preserves answers.
//! let bytes = index.to_bytes();
//! let reloaded = GraphIndex::from_bytes(&bytes).unwrap();
//! assert_eq!(reloaded.search(&query, &SearchRequest::topk(5)).unwrap().hits, resp.hits);
//! ```
//!
//! # Live updates
//!
//! The index is **dynamic**: the database may change while queries are
//! in flight.
//!
//! * [`GraphIndex::insert`] maps the new graph against the *existing*
//!   feature space (containment-DAG-pruned VF2, no re-mining) and
//!   appends its vector to the scan store in place.
//! * [`GraphIndex::remove`] tombstones an entry — ids stay stable, and
//!   every ranker skips dead rows.
//! * Both leave the selected dimensions slightly stale; once the
//!   configured [`RebuildPolicy`] is exceeded ([`GraphIndex::is_stale`])
//!   a **full re-mine/re-select** over the live graphs restores batch
//!   quality: synchronously via [`GraphIndex::rebuild`], or off-thread
//!   via [`GraphIndex::spawn_rebuild`] + [`GraphIndex::install`]
//!   (cancellable, and installation refuses a snapshot that missed
//!   later mutations). Each installed rebuild bumps
//!   [`GraphIndex::epoch`]; a query always answers against exactly one
//!   epoch and reports it in its stats.

use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use gdim_exec::{BackgroundTask, CancelToken, ExecConfig};
use gdim_graph::{Dissimilarity, Graph};
use gdim_mining::{mine, MinerConfig, Support};

use crate::bitset::Bitset;
use crate::delta::{DeltaConfig, DeltaMatrix, SharedDelta};
use crate::dspm::{dspm, DspmConfig};
use crate::dspmap::{dspmap, DspmapConfig};
use crate::error::GdimError;
use crate::featurespace::{ContainmentDag, FeatureSpace};
use crate::query::{weighted_w_sq, MappedDatabase, Mapping};
use crate::scan::Tombstones;
use crate::search::GraphId;

/// How dimensions are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Full DSPM over the complete δ matrix (quadratic state; the
    /// quality reference).
    Dspm,
    /// DSPMap with the given partition size (linear scaling; for large
    /// databases).
    Dspmap {
        /// Partition size `b`.
        partition_size: usize,
    },
    /// Automatic: DSPM below `threshold` graphs, DSPMap (with
    /// `b = n/20`) above — mirroring the paper's practical guidance.
    Auto {
        /// Database size at which to switch to DSPMap.
        threshold: usize,
    },
}

/// Staleness policy of a dynamic index: how much online churn is
/// tolerated before [`GraphIndex::is_stale`] asks for a full
/// re-mine/re-select rebuild.
///
/// Inserts are served from the *existing* feature space (features the
/// new graphs would have made frequent are invisible until a rebuild)
/// and removes leave tombstoned rows in the scan store, so both forms
/// of churn degrade quality/throughput gradually — the policy bounds
/// that degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Rebuild once this many inserts accumulated since the last
    /// rebuild (`1` = rebuild after every insert; `usize::MAX`
    /// effectively disables the trigger).
    pub max_inserts: usize,
    /// Rebuild once the tombstoned fraction of the database strictly
    /// exceeds this (`0.0` = any remove makes the index stale).
    pub max_tombstone_frac: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            max_inserts: 1024,
            max_tombstone_frac: 0.25,
        }
    }
}

/// Options for [`GraphIndex::build`].
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Number of dimensions `p`.
    pub dimensions: usize,
    /// gSpan minimum support τ.
    pub min_support: Support,
    /// gSpan pattern-size cap (edges).
    pub max_pattern_edges: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// δ computation configuration (dissimilarity kind, MCS budget).
    /// Its embedded [`DeltaConfig::exec`] is the **single parallelism
    /// budget** for the whole build and the index's query entry points
    /// (δ matrix, DSPM/DSPMap, exact ranking, batch query mapping) —
    /// set it via [`IndexOptions::with_threads`] / [`IndexOptions::with_exec`].
    pub delta: DeltaConfig,
    /// RNG seed (DSPMap partitioning).
    pub seed: u64,
    /// Staleness tolerance for online inserts/removes (see
    /// [`RebuildPolicy`]). The whole `IndexOptions` value is retained
    /// by the built index, so a rebuild re-runs the identical pipeline.
    pub rebuild: RebuildPolicy,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            dimensions: 100,
            min_support: Support::Relative(0.05),
            max_pattern_edges: 5,
            strategy: SelectionStrategy::Auto { threshold: 2000 },
            delta: DeltaConfig::default(),
            seed: 0,
            rebuild: RebuildPolicy::default(),
        }
    }
}

impl IndexOptions {
    /// Sets the number of dimensions.
    pub fn with_dimensions(mut self, p: usize) -> Self {
        self.dimensions = p;
        self
    }

    /// Sets the gSpan support threshold.
    pub fn with_min_support(mut self, s: Support) -> Self {
        self.min_support = s;
        self
    }

    /// Sets the selection strategy.
    pub fn with_strategy(mut self, s: SelectionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets the worker-thread budget (`0` = all cores) for every
    /// parallel phase of the build and the built index's queries.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.delta.exec = ExecConfig::new(threads);
        self
    }

    /// Sets the full parallelism budget.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.delta.exec = exec;
        self
    }

    /// Sets the staleness tolerance for online inserts/removes.
    pub fn with_rebuild_policy(mut self, rebuild: RebuildPolicy) -> Self {
        self.rebuild = rebuild;
        self
    }
}

/// Build-phase statistics, for observability.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// Number of frequent features mined (`m`).
    pub mined_features: usize,
    /// Number of selected dimensions (`p`).
    pub dimensions: usize,
    /// Which strategy actually ran.
    pub used_dspmap: bool,
    /// δ pairs computed during the build.
    pub delta_pairs: usize,
    /// Time in gSpan.
    pub mining_time: Duration,
    /// Time computing δ values.
    pub delta_time: Duration,
    /// Time in DSPM/DSPMap.
    pub selection_time: Duration,
}

/// A built graph-similarity index over an owned database: the
/// serving-layer entry point (see the [module docs](self)).
///
/// `Clone` performs a deep copy of the database and all derived state.
/// It exists for copy-on-write serving structures (a sharded index
/// clones one shard to mutate it while readers keep the old snapshot);
/// it is **not** a cheap handle — share an `Arc<GraphIndex>` for that.
#[derive(Clone)]
pub struct GraphIndex {
    db: Vec<Graph>,
    space: FeatureSpace,
    mapped: MappedDatabase,
    selected: Vec<u32>,
    weights: Vec<f64>,
    /// Normalized squared per-dimension weights for
    /// [`MappingKind::Weighted`](crate::query::MappingKind::Weighted) requests, derived from `weights`.
    w_sq_weighted: Vec<f64>,
    /// The full build configuration. Rebuilds re-run the identical
    /// pipeline from it; its δ part drives every exact re-ranking.
    opts: IndexOptions,
    stats: IndexStats,
    /// Rebuild generation: 0 for a fresh build, +1 per installed
    /// rebuild. A request is answered entirely within one epoch and
    /// reports it in [`SearchStats::epoch`](crate::search::SearchStats::epoch).
    epoch: u64,
    /// Liveness of every row; removed graphs stay addressable (ids are
    /// stable) but dead to every ranker until the next rebuild.
    tombstones: Tombstones,
    /// Inserts accumulated since the last rebuild (one half of the
    /// [`RebuildPolicy`] staleness test).
    inserts_since_rebuild: usize,
    /// Monotone mutation counter (inserts + removes), the freshness
    /// basis for background rebuild snapshots.
    mutations: u64,
    /// Containment DAG over the **full** feature space, pruning the
    /// per-feature VF2 of [`GraphIndex::insert`]. Lazy: indexes that
    /// never insert never pay the pairwise containment build.
    full_dag: OnceLock<ContainmentDag>,
    /// Proximity graph for [`Ranker::Approx`](crate::search::Ranker::Approx),
    /// built lazily over the scan store on the first approximate query
    /// (or restored from a v3 snapshot). Derived state: rows inserted
    /// after the build are served from an exact-scanned pending tail,
    /// and an installed rebuild drops it (the fresh index starts with
    /// an empty cell), so it can never serve rows of a dead epoch.
    ann: OnceLock<crate::ann::AnnIndex>,
}

impl std::fmt::Debug for GraphIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphIndex")
            .field("graphs", &self.db.len())
            .field("tombstones", &self.tombstones.dead_count())
            .field("epoch", &self.epoch)
            .field("features", &self.space.num_features())
            .field("dimensions", &self.selected.len())
            .field("dissimilarity", &self.opts.delta.kind)
            .field("mapping", &self.mapped.kind())
            .finish_non_exhaustive()
    }
}

impl GraphIndex {
    /// Runs the full pipeline over `db`. Every parallel phase draws on
    /// the single [`IndexOptions::delta`] exec budget.
    pub fn build(db: Vec<Graph>, opts: IndexOptions) -> GraphIndex {
        Self::build_cancellable(db, opts, &CancelToken::new())
            .expect("a fresh token is never cancelled")
    }

    /// [`GraphIndex::build`] with cooperative cancellation, polled at
    /// the pipeline's phase boundaries (before mining, before
    /// δ/selection, before mapping): returns `None` once `cancel` is
    /// observed, discarding the partial work. This is the job a
    /// background rebuild runs ([`GraphIndex::spawn_rebuild`]).
    pub fn build_cancellable(
        db: Vec<Graph>,
        opts: IndexOptions,
        cancel: &CancelToken,
    ) -> Option<GraphIndex> {
        let exec = opts.delta.exec;
        let delta_cfg = opts.delta.clone();
        if cancel.is_cancelled() {
            return None;
        }
        if db.is_empty() {
            // An empty database still yields a servable (empty) index.
            let space = FeatureSpace::build(0, Vec::new());
            let mapped =
                MappedDatabase::new(&space, &[], Mapping::Binary).expect("empty mapping is valid");
            return Some(Self::assemble(
                db,
                space,
                mapped,
                Vec::new(),
                Vec::new(),
                opts,
                IndexStats {
                    mined_features: 0,
                    dimensions: 0,
                    used_dspmap: false,
                    delta_pairs: 0,
                    mining_time: Duration::ZERO,
                    delta_time: Duration::ZERO,
                    selection_time: Duration::ZERO,
                },
            ));
        }
        let t0 = Instant::now();
        let features = mine(
            &db,
            &MinerConfig::new(opts.min_support).with_max_edges(opts.max_pattern_edges),
        );
        let mining_time = t0.elapsed();
        if cancel.is_cancelled() {
            return None;
        }
        let space = FeatureSpace::build(db.len(), features);
        let m = space.num_features();
        let p = opts.dimensions.min(m);

        let use_dspmap = match opts.strategy {
            SelectionStrategy::Dspm => false,
            SelectionStrategy::Dspmap { .. } => true,
            SelectionStrategy::Auto { threshold } => db.len() > threshold,
        };

        let (selected, weights, delta_pairs, delta_time, selection_time) = if use_dspmap {
            let b = match opts.strategy {
                SelectionStrategy::Dspmap { partition_size } => partition_size,
                _ => (db.len() / 20).max(10),
            };
            let t1 = Instant::now();
            let sdelta = SharedDelta::new(&db, delta_cfg.clone());
            let cfg = DspmapConfig {
                p,
                partition_size: b,
                sample_size: 16,
                epsilon: 1e-6,
                max_iters: 100,
                exec,
                seed: opts.seed,
            };
            let res = dspmap(&space, &sdelta, &cfg);
            let sel_time = t1.elapsed();
            (
                res.selected,
                res.weights,
                sdelta.computed_pairs(),
                Duration::ZERO, // δ time is interleaved with selection
                sel_time,
            )
        } else {
            let t1 = Instant::now();
            let delta = DeltaMatrix::compute(&db, &delta_cfg);
            let delta_time = t1.elapsed();
            let t2 = Instant::now();
            let res = dspm(
                &space,
                &delta,
                &DspmConfig {
                    exec,
                    ..DspmConfig::new(p)
                },
            );
            let pairs = db.len() * db.len().saturating_sub(1) / 2;
            (res.selected, res.weights, pairs, delta_time, t2.elapsed())
        };
        if cancel.is_cancelled() {
            return None;
        }

        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary)
            .expect("selected dimensions come from the space itself");
        // Warm the lazy feature containment DAG now: a serving index
        // should pay the one-time pairwise containment cost at build
        // time, not on its first query.
        mapped.containment_dag();
        let stats = IndexStats {
            mined_features: m,
            dimensions: selected.len(),
            used_dspmap: use_dspmap,
            delta_pairs,
            mining_time,
            delta_time,
            selection_time,
        };
        Some(Self::assemble(
            db, space, mapped, selected, weights, opts, stats,
        ))
    }

    /// The one constructor every path funnels through: a fresh
    /// (epoch-0, fully live) index.
    fn assemble(
        db: Vec<Graph>,
        space: FeatureSpace,
        mapped: MappedDatabase,
        selected: Vec<u32>,
        weights: Vec<f64>,
        opts: IndexOptions,
        stats: IndexStats,
    ) -> GraphIndex {
        let w_sq_weighted = weighted_w_sq(&selected, &weights);
        let tombstones = Tombstones::all_live(db.len());
        GraphIndex {
            db,
            space,
            mapped,
            selected,
            weights,
            w_sq_weighted,
            opts,
            stats,
            epoch: 0,
            tombstones,
            inserts_since_rebuild: 0,
            mutations: 0,
            full_dag: OnceLock::new(),
            ann: OnceLock::new(),
        }
    }

    /// Reassembles an index from pipeline parts, rebuilding the
    /// derived state (feature space, the flat scan store of binary
    /// mapped vectors, the feature containment DAG, weighted scan
    /// weights) deterministically. An index always stores binary
    /// vectors — [`MappingKind::Weighted`](crate::query::MappingKind::Weighted) requests are served from the
    /// derived DSPM weights, never baked into the vectors. Shared by
    /// [`GraphIndex::from_bytes`], and the seam a **sharded** index
    /// uses to stamp out per-shard indexes that share one globally
    /// selected dimension set: pass the full mined `features` with
    /// supports filtered/remapped to the shard's graphs, and the
    /// shard maps queries and scores rows exactly like the global
    /// pipeline would.
    ///
    /// Inputs are validated (feature supports must be strictly
    /// ascending ids into `db`, `weights` must cover the features,
    /// `selected` ids must be in range, `tombstones` must cover `db`);
    /// inconsistencies surface as [`GdimError`], never a panic.
    #[allow(clippy::too_many_arguments)] // assembly seam of the persist decoder and gdim-shard
    pub fn from_parts(
        db: Vec<Graph>,
        features: Vec<gdim_mining::Feature>,
        selected: Vec<u32>,
        weights: Vec<f64>,
        opts: IndexOptions,
        stats: IndexStats,
        epoch: u64,
        tombstones: Tombstones,
        inserts_since_rebuild: usize,
    ) -> Result<GraphIndex, GdimError> {
        // Validate supports before FeatureSpace::build indexes rows by
        // them (and before the sorted-list invariants downstream code
        // relies on are silently violated).
        for (r, f) in features.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &gid in &f.support {
                if gid as usize >= db.len() {
                    return Err(GdimError::Corrupt(format!(
                        "feature {r} support references graph {gid} of {}",
                        db.len()
                    )));
                }
                if prev.is_some_and(|p| gid <= p) {
                    return Err(GdimError::Corrupt(format!(
                        "feature {r} support ids not strictly ascending at {gid}"
                    )));
                }
                prev = Some(gid);
            }
        }
        let space = FeatureSpace::build(db.len(), features);
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary)?;
        mapped.containment_dag();
        if weights.len() != space.num_features() {
            return Err(GdimError::WeightsMismatch {
                expected: space.num_features(),
                got: weights.len(),
            });
        }
        if tombstones.len() != db.len() {
            return Err(GdimError::Corrupt(format!(
                "tombstone mask covers {} rows, database has {}",
                tombstones.len(),
                db.len()
            )));
        }
        let mut index = Self::assemble(db, space, mapped, selected, weights, opts, stats);
        index.epoch = epoch;
        index.tombstones = tombstones;
        index.inserts_since_rebuild = inserts_since_rebuild;
        Ok(index)
    }

    /// Number of indexed rows, **including** tombstoned ones (ids stay
    /// addressable until the next rebuild compacts them away) — see
    /// [`GraphIndex::live_len`] for the serving size.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the index holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Number of live (non-tombstoned) graphs — the maximum hit count
    /// any search can return.
    pub fn live_len(&self) -> usize {
        self.tombstones.live_count()
    }

    /// Number of tombstoned (removed but not yet compacted) rows.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.dead_count()
    }

    /// The row liveness mask (all live on a fresh build).
    pub fn tombstones(&self) -> &Tombstones {
        &self.tombstones
    }

    /// The indexed graphs, including tombstoned rows (row `i` is graph
    /// id `i`).
    pub fn graphs(&self) -> &[Graph] {
        &self.db
    }

    /// One indexed graph, or [`GdimError::GraphOutOfRange`] — the
    /// serving path never panics on a bad id. Tombstoned graphs remain
    /// readable here (they are only dead to the rankers).
    pub fn graph(&self, i: usize) -> Result<&Graph, GdimError> {
        self.db.get(i).ok_or(GdimError::GraphOutOfRange {
            id: i,
            len: self.db.len(),
        })
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The underlying feature space (all mined features).
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.space
    }

    /// The mapped database over the selected dimensions.
    pub fn mapped(&self) -> &MappedDatabase {
        &self.mapped
    }

    /// Selected dimension ids into [`GraphIndex::feature_space`].
    pub fn dimensions(&self) -> &[u32] {
        &self.selected
    }

    /// DSPM/DSPMap weights over all mined features.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The full build configuration the index retains (and a rebuild
    /// re-runs).
    pub fn options(&self) -> &IndexOptions {
        &self.opts
    }

    /// The δ-engine configuration the index was built with; its
    /// dissimilarity kind and MCS budget drive every exact re-ranking.
    pub fn delta_config(&self) -> &DeltaConfig {
        &self.opts.delta
    }

    /// The graph dissimilarity the index was built with (and re-ranks
    /// with).
    pub fn dissimilarity(&self) -> Dissimilarity {
        self.opts.delta.kind
    }

    /// The parallelism budget the index was built with (also used by
    /// its query entry points).
    pub fn exec(&self) -> &ExecConfig {
        &self.opts.delta.exec
    }

    /// Replaces the parallelism budget (e.g. after
    /// [`GraphIndex::load`], which cannot know the serving machine's
    /// core count at save time).
    pub fn set_exec(&mut self, exec: ExecConfig) {
        self.opts.delta.exec = exec;
    }

    /// The staleness policy for online updates.
    pub fn rebuild_policy(&self) -> &RebuildPolicy {
        &self.opts.rebuild
    }

    /// Replaces the staleness policy.
    pub fn set_rebuild_policy(&mut self, rebuild: RebuildPolicy) {
        self.opts.rebuild = rebuild;
    }

    /// Normalized squared per-dimension weights serving
    /// [`MappingKind::Weighted`](crate::query::MappingKind::Weighted)
    /// requests (derived from [`GraphIndex::weights`] over the selected
    /// dimensions) — what a caller driving the scan kernels directly
    /// (e.g. a sharded scatter-gather layer) passes to
    /// [`MappedDatabase::scan_topk_with_masked`](crate::query::MappedDatabase::scan_topk_with_masked).
    pub fn weighted_w_sq(&self) -> &[f64] {
        &self.w_sq_weighted
    }

    /// The proximity-graph ANN over the scan store
    /// ([`Ranker::Approx`](crate::search::Ranker::Approx)), building
    /// it on first use with [`AnnParams::default`](crate::ann::AnnParams::default). Derived state,
    /// like the scan store itself: deterministic from the store, never
    /// required for correctness of the exact rankers, dropped by an
    /// installed rebuild. Call this to warm the graph ahead of serving
    /// traffic (the build is O(n·ef_construction) distance
    /// evaluations).
    pub fn ann(&self) -> &crate::ann::AnnIndex {
        self.ann
            .get_or_init(|| crate::ann::AnnIndex::build(self.mapped.store(), Default::default()))
    }

    /// The ANN graph if one was already built or restored — the
    /// persistence path uses this so saving an index never forces a
    /// build.
    pub fn ann_if_built(&self) -> Option<&crate::ann::AnnIndex> {
        self.ann.get()
    }

    /// Restores a previously built ANN graph (the persist decode
    /// seam). A no-op if one is already present.
    pub(crate) fn set_ann(&self, ann: crate::ann::AnnIndex) {
        let _ = self.ann.set(ann);
    }

    /// The [`Ranker::Approx`](crate::search::Ranker::Approx) scan leg,
    /// for a query vector that is already mapped: an `ef`-wide beam
    /// over the proximity graph (building it on first use), merged
    /// with an **exact** scan of the pending tail (rows inserted after
    /// the graph was built), tombstone-filtered, ascending by
    /// `(distance, id)` and truncated to `take`. Distances go through
    /// the same final formulas as
    /// [`MappedDatabase::distance_to`](crate::query::MappedDatabase::distance_to),
    /// so every returned distance is bit-identical to what the exact
    /// scan reports for that row. This is the per-shard seam the
    /// sharded scatter-gather layer calls.
    pub fn approx_scan_premapped(
        &self,
        qvec: &Bitset,
        take: usize,
        ef: usize,
        mapping: crate::query::MappingKind,
    ) -> (Vec<(u32, f64)>, crate::ann::AnnScanStats) {
        use crate::bitset::weighted_sq_xor_words;
        use crate::query::MappingKind;
        use gdim_kernels::hamming_row;

        let mut stats = crate::ann::AnnScanStats::default();
        let store = self.mapped.store();
        let n = store.len();
        let take = take.min(n);
        if take == 0 {
            return (Vec::new(), stats);
        }
        let dead = &self.tombstones;
        let qwords = qvec.words();
        // Traversal keys: strictly increasing transforms of the true
        // distance (integer popcount / squared weighted distance), so
        // beam order equals distance order and the final formula below
        // reproduces the scan's exact values.
        let key = |i: u32| -> f64 {
            match mapping {
                MappingKind::Binary => hamming_row(qwords, store.row(i as usize)) as f64,
                MappingKind::Weighted => {
                    weighted_sq_xor_words(qwords, store.row(i as usize), &self.w_sq_weighted)
                }
            }
        };
        let ann = self.ann();
        let (mut keyed, visited) = ann.query(key, ef.max(take), Some(dead));
        stats.beam_visited = visited;
        // The pending tail — rows the graph does not cover — is served
        // exactly, so online inserts are never invisible or degraded.
        for i in ann.built_n()..n {
            if dead.is_dead(i) {
                stats.tail_tombstones += 1;
                continue;
            }
            stats.tail_scanned += 1;
            keyed.push((i as u32, key(i as u32)));
        }
        let p = self.mapped.p().max(1) as f64;
        let mut ranking: Vec<(u32, f64)> = keyed
            .into_iter()
            .map(|(id, k)| {
                let d = match mapping {
                    MappingKind::Binary => (k / p).sqrt(),
                    MappingKind::Weighted => k.sqrt(),
                };
                (id, d)
            })
            .collect();
        crate::query::sort_ranking(&mut ranking);
        ranking.truncate(take);
        (ranking, stats)
    }

    /// Maps a query graph onto the index's dimensions (containment-DAG
    /// pruned; see [`MappedDatabase::map_query`]).
    pub fn map_query(&self, q: &Graph) -> Bitset {
        self.mapped.map_query(q)
    }

    /// [`GraphIndex::map_query`] plus the pruning counters — how many
    /// VF2 feature tests ran versus were skipped.
    pub fn map_query_with_stats(&self, q: &Graph) -> (Bitset, crate::featurespace::MatchStats) {
        self.mapped.map_query_with_stats(q)
    }

    /// Serializes the index to the versioned binary format (see
    /// [`crate::persist`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::persist::encode(self)
    }

    /// Deserializes an index produced by [`GraphIndex::to_bytes`],
    /// rebuilding all derived state. The exec budget defaults to
    /// [`ExecConfig::default`]; override with [`GraphIndex::set_exec`].
    pub fn from_bytes(bytes: &[u8]) -> Result<GraphIndex, GdimError> {
        crate::persist::decode(bytes)
    }

    /// Writes the index to a file (binary format, version-tagged).
    ///
    /// The write is **crash-safe**: the bytes are staged in a sibling
    /// temp file, fsynced, renamed over `path`, and the parent
    /// directory fsynced — a crash mid-save never clobbers a previous
    /// good snapshot at the same path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GdimError> {
        gdim_wal::fsutil::write_atomic(path, &self.to_bytes())?;
        Ok(())
    }

    /// Reads an index saved by [`GraphIndex::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<GraphIndex, GdimError> {
        GraphIndex::from_bytes(&std::fs::read(path)?)
    }

    // ------------------------------------------------- live updates

    /// The index's rebuild generation: 0 for a fresh build, +1 for
    /// every installed rebuild. Any single request is answered against
    /// exactly one epoch (a search holds the index borrowed for its
    /// whole duration) and reports it in
    /// [`SearchStats::epoch`](crate::search::SearchStats::epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Inserts accumulated since the last rebuild.
    pub fn pending_inserts(&self) -> usize {
        self.inserts_since_rebuild
    }

    /// The containment DAG over the **full** feature space, built on
    /// first insert (the per-query DAG of the mapped database covers
    /// only the selected dimensions).
    fn full_dag(&self) -> &ContainmentDag {
        self.full_dag
            .get_or_init(|| ContainmentDag::build(self.space.features()))
    }

    /// Inserts one graph **online**: the graph is mapped against the
    /// *existing* feature space (containment-DAG + invariant-pruned
    /// VF2 — the same machinery as query mapping, no re-mining), its
    /// full feature row is recorded in the space (supports stay
    /// consistent, so the index persists and reloads exactly), and its
    /// vector over the selected dimensions is appended to the scan
    /// store in place. Returns the new graph's stable id.
    ///
    /// The selected dimensions themselves are *not* revisited:
    /// features the new graph would have made frequent stay invisible
    /// until the next [`GraphIndex::rebuild`] /
    /// [`GraphIndex::install`]. Use [`GraphIndex::is_stale`] to decide
    /// when the accumulated drift (per [`RebuildPolicy`]) warrants one.
    pub fn insert(&mut self, g: Graph) -> GraphId {
        let full_row = self.full_dag().map_query(self.space.features(), &g).0;
        let id = self.space.push_graph(&full_row);
        let mut sel_row = Bitset::zeros(self.selected.len());
        for (col, &r) in self.selected.iter().enumerate() {
            if full_row.get(r as usize) {
                sel_row.set(col);
            }
        }
        self.mapped.push_row(&sel_row);
        self.db.push(g);
        self.tombstones.push_live();
        self.inserts_since_rebuild += 1;
        self.mutations += 1;
        GraphId(id)
    }

    /// Removes a graph **online** by tombstoning its row: the id stays
    /// stable (and the graph readable via [`GraphIndex::graph`]), but
    /// every ranker skips it from this call on. The row is physically
    /// reclaimed by the next rebuild.
    ///
    /// Returns whether the graph was live (`Ok(false)` = it was
    /// already tombstoned; nothing changed); an out-of-range id is
    /// [`GdimError::GraphOutOfRange`].
    pub fn remove(&mut self, id: GraphId) -> Result<bool, GdimError> {
        let i = id.index();
        if i >= self.db.len() {
            return Err(GdimError::GraphOutOfRange {
                id: i,
                len: self.db.len(),
            });
        }
        let newly = self.tombstones.mark_dead(i);
        if newly {
            self.mutations += 1;
        }
        Ok(newly)
    }

    /// Whether accumulated churn exceeds the [`RebuildPolicy`]: at
    /// least `max_inserts` inserts since the last rebuild (and at
    /// least one), or a tombstone fraction strictly above
    /// `max_tombstone_frac`.
    pub fn is_stale(&self) -> bool {
        let policy = &self.opts.rebuild;
        (self.inserts_since_rebuild > 0 && self.inserts_since_rebuild >= policy.max_inserts)
            || self.tombstones.dead_fraction() > policy.max_tombstone_frac
    }

    /// Clones of the live (non-tombstoned) graphs, in id order — the
    /// database a rebuild runs over.
    pub fn live_graphs(&self) -> Vec<Graph> {
        (0..self.db.len())
            .filter(|&i| !self.tombstones.is_dead(i))
            .map(|i| self.db[i].clone())
            .collect()
    }

    /// Synchronous full rebuild: re-runs the entire pipeline
    /// (re-mine → re-select → re-map) over the live graphs with the
    /// retained [`IndexOptions`], compacting tombstones away, and
    /// swaps the result in. The epoch advances by one; the rebuilt
    /// index is **bit-identical** to [`GraphIndex::build`] over
    /// [`GraphIndex::live_graphs`] (tombstoned graphs drop out, later
    /// ids shift down).
    pub fn rebuild(&mut self) {
        // Unlike `spawn_rebuild` (which must snapshot because the
        // index keeps serving), the synchronous path can *move* the
        // graphs out — `self` is replaced wholesale below, so cloning
        // the whole database would only double peak memory.
        let db = std::mem::take(&mut self.db);
        let live: Vec<Graph> = db
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| !self.tombstones.is_dead(i))
            .map(|(_, g)| g)
            .collect();
        let fresh = GraphIndex::build(live, self.opts.clone());
        self.install_fresh(fresh);
    }

    /// [`GraphIndex::rebuild`], but only when [`GraphIndex::is_stale`];
    /// returns whether a rebuild ran.
    pub fn rebuild_if_stale(&mut self) -> bool {
        if self.is_stale() {
            self.rebuild();
            true
        } else {
            false
        }
    }

    /// Starts a full rebuild on a background thread (one
    /// [`BackgroundTask`] from `gdim-exec`) over a snapshot of the
    /// live graphs, leaving `self` free to keep serving — and mutating
    /// — meanwhile. Cancellation ([`RebuildTask::cancel`], or dropping
    /// the handle) is observed at the pipeline's phase boundaries.
    /// Pass the handle back to [`GraphIndex::install`] to swap the
    /// result in.
    pub fn spawn_rebuild(&self) -> RebuildTask {
        let graphs = self.live_graphs();
        let opts = self.opts.clone();
        RebuildTask {
            task: BackgroundTask::spawn(move |token| {
                GraphIndex::build_cancellable(graphs, opts, token)
            }),
            basis: self.mutations,
        }
    }

    /// Waits for a [`GraphIndex::spawn_rebuild`] job and atomically
    /// swaps its result in (the caller's `&mut` exclusivity *is* the
    /// atomicity: no concurrent reader can observe a half-installed
    /// index). The epoch advances by one.
    ///
    /// Returns `Ok(true)` when installed, `Ok(false)` when the job
    /// observed cancellation (the index is unchanged), and
    /// [`GdimError::StaleRebuild`] when inserts/removes landed after
    /// the snapshot was taken — installing it would silently drop
    /// them, so the caller should spawn a fresh rebuild instead.
    ///
    /// A task must be installed on the index that spawned it; a task
    /// from another index is rejected as stale too (the mutation
    /// bases cannot agree except by coincidence).
    pub fn install(&mut self, task: RebuildTask) -> Result<bool, GdimError> {
        if self.mutations != task.basis {
            // The snapshot is stale; stop the worker and report.
            // `abs_diff`: a foreign task's basis may exceed ours.
            task.cancel();
            return Err(GdimError::StaleRebuild {
                missed: self.mutations.abs_diff(task.basis),
            });
        }
        match task.task.join() {
            None => Ok(false),
            Some(fresh) => {
                self.install_fresh(fresh);
                Ok(true)
            }
        }
    }

    /// Swaps a freshly built index in, preserving the epoch chain, the
    /// mutation basis, and the serving-side knobs: the exec budget and
    /// the rebuild policy belong to the serving machine, not to the
    /// snapshot ([`GraphIndex::set_exec`] / [`GraphIndex::set_rebuild_policy`]
    /// calls made while a background rebuild ran must survive its
    /// installation).
    fn install_fresh(&mut self, mut fresh: GraphIndex) {
        fresh.epoch = self.epoch + 1;
        fresh.mutations = self.mutations;
        fresh.opts.delta.exec = self.opts.delta.exec;
        fresh.opts.rebuild = self.opts.rebuild;
        *self = fresh;
    }
}

/// Handle to an in-flight background rebuild (see
/// [`GraphIndex::spawn_rebuild`]).
#[derive(Debug)]
pub struct RebuildTask {
    task: BackgroundTask<GraphIndex>,
    /// Mutation count of the index when the snapshot was taken.
    basis: u64,
}

impl RebuildTask {
    /// Requests cooperative cancellation; the rebuild stops at its
    /// next pipeline phase boundary and [`GraphIndex::install`]
    /// returns `Ok(false)`.
    pub fn cancel(&self) {
        self.task.cancel();
    }

    /// Non-blocking: whether the background build has ended (finished
    /// or cancelled).
    pub fn is_finished(&self) -> bool {
        self.task.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{Ranker, SearchRequest};

    fn db(n: usize, seed: u64) -> Vec<Graph> {
        gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed)
    }

    #[test]
    fn build_and_query_roundtrip() {
        let index = GraphIndex::build(db(40, 3), IndexOptions::default().with_dimensions(30));
        assert_eq!(index.len(), 40);
        assert!(index.stats().mined_features > 0);
        assert_eq!(index.dimensions().len(), index.stats().dimensions);
        let q = index.graph(7).unwrap().clone();
        let resp = index.search(&q, &SearchRequest::topk(3)).unwrap();
        assert_eq!(resp.hits[0].id.get(), 7);
        assert_eq!(resp.hits[0].distance, 0.0);
    }

    #[test]
    fn auto_strategy_switches_to_dspmap() {
        let opts = IndexOptions::default()
            .with_dimensions(20)
            .with_strategy(SelectionStrategy::Auto { threshold: 10 });
        let index = GraphIndex::build(db(30, 5), opts);
        assert!(index.stats().used_dspmap);
        // DSPMap never touches all pairs.
        assert!(index.stats().delta_pairs < 30 * 29 / 2);
        let small = GraphIndex::build(
            db(8, 5),
            IndexOptions::default()
                .with_dimensions(10)
                .with_strategy(SelectionStrategy::Auto { threshold: 10 }),
        );
        assert!(!small.stats().used_dspmap);
    }

    #[test]
    fn explicit_dspmap_partition_size() {
        let opts = IndexOptions::default()
            .with_dimensions(15)
            .with_strategy(SelectionStrategy::Dspmap { partition_size: 8 });
        let index = GraphIndex::build(db(25, 7), opts);
        assert!(index.stats().used_dspmap);
        let q = index.graph(0).unwrap().clone();
        let resp = index.search(&q, &SearchRequest::topk(1)).unwrap();
        assert_eq!(resp.hits[0].id.get(), 0);
    }

    #[test]
    fn exact_and_mapped_agree_on_self_query() {
        let index = GraphIndex::build(db(15, 9), IndexOptions::default().with_dimensions(20));
        let q = index.graph(4).unwrap().clone();
        for ranker in [Ranker::Mapped, Ranker::Exact] {
            let resp = index
                .search(&q, &SearchRequest::topk(1).with_ranker(ranker))
                .unwrap();
            assert_eq!(resp.hits[0].id.get(), 4, "{ranker:?}");
        }
    }

    #[test]
    fn exact_reranking_uses_the_configured_dissimilarity() {
        // Build with δ1 (MaxNorm): the index must re-rank with δ1, not
        // the hardcoded default δ2.
        let mut opts = IndexOptions::default().with_dimensions(15);
        opts.delta.kind = Dissimilarity::MaxNorm;
        let index = GraphIndex::build(db(12, 21), opts);
        assert_eq!(index.dissimilarity(), Dissimilarity::MaxNorm);
        let q = index.graph(5).unwrap().clone();
        let resp = index
            .search(&q, &SearchRequest::topk(12).with_ranker(Ranker::Exact))
            .unwrap();
        let want = crate::query::exact_ranking(
            index.graphs(),
            &q,
            Dissimilarity::MaxNorm,
            &index.delta_config().mcs,
            index.exec(),
        );
        let got: Vec<(u32, f64)> = resp.hits.iter().map(|h| (h.id.get(), h.distance)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn out_of_range_graph_is_an_error_not_a_panic() {
        let index = GraphIndex::build(db(5, 23), IndexOptions::default().with_dimensions(10));
        match index.graph(99) {
            Err(GdimError::GraphOutOfRange { id: 99, len: 5 }) => {}
            other => panic!("expected GraphOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn insert_maps_against_the_existing_space() {
        let mut index = GraphIndex::build(db(20, 31), IndexOptions::default().with_dimensions(20));
        let newcomers = db(3, 77);
        let base_features = index.feature_space().num_features();
        for g in &newcomers {
            let id = index.insert(g.clone());
            // The appended vector is exactly the query mapping of the
            // inserted graph — a later self-query scores distance 0.
            assert_eq!(
                index.mapped().vector(id.index()),
                index.map_query(g),
                "{id}"
            );
            // The feature space stays consistent: the new graph's row
            // and inverted lists agree.
            let row = index.feature_space().row(id.index()).clone();
            for r in 0..base_features {
                assert_eq!(
                    index.feature_space().if_list(r).contains(&id.get()),
                    row.get(r),
                    "feature {r}"
                );
            }
        }
        assert_eq!(index.len(), 23);
        assert_eq!(index.live_len(), 23);
        assert_eq!(index.pending_inserts(), 3);
        // No new features appear without a rebuild.
        assert_eq!(index.feature_space().num_features(), base_features);
        let resp = index
            .search(&newcomers[1], &SearchRequest::topk(1))
            .unwrap();
        assert_eq!(resp.hits[0].id.get(), 21);
        assert_eq!(resp.hits[0].distance, 0.0);
    }

    #[test]
    fn remove_tombstones_and_double_remove_is_a_noop() {
        let mut index = GraphIndex::build(db(10, 33), IndexOptions::default().with_dimensions(15));
        use crate::search::GraphId;
        assert!(index.remove(GraphId(4)).unwrap());
        assert!(!index.remove(GraphId(4)).unwrap(), "already tombstoned");
        assert_eq!(index.live_len(), 9);
        assert_eq!(index.tombstone_count(), 1);
        // The graph stays readable; the rankers just skip it.
        let q = index.graph(4).unwrap().clone();
        let resp = index.search(&q, &SearchRequest::topk(10)).unwrap();
        assert!(resp.hits.iter().all(|h| h.id.get() != 4));
        assert_eq!(resp.hits.len(), 9);
        match index.remove(GraphId(99)) {
            Err(GdimError::GraphOutOfRange { id: 99, len: 10 }) => {}
            other => panic!("expected GraphOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn staleness_policy_triggers_and_rebuild_clears_it() {
        let policy = RebuildPolicy {
            max_inserts: 2,
            max_tombstone_frac: 0.3,
        };
        let mut index = GraphIndex::build(
            db(12, 35),
            IndexOptions::default()
                .with_dimensions(15)
                .with_rebuild_policy(policy),
        );
        assert!(!index.is_stale());
        let extra = db(2, 78);
        index.insert(extra[0].clone());
        assert!(!index.is_stale());
        index.insert(extra[1].clone());
        assert!(index.is_stale(), "2 inserts reach max_inserts");
        assert_eq!(index.epoch(), 0);
        assert!(index.rebuild_if_stale());
        assert_eq!(index.epoch(), 1);
        assert!(!index.is_stale());
        assert_eq!(index.pending_inserts(), 0);
        assert_eq!(index.len(), 14);
        // Tombstone fraction: 5 of 14 dead (0.357 > 0.3) flips staleness.
        for i in 0..5u32 {
            index.remove(crate::search::GraphId(i)).unwrap();
            assert_eq!(index.is_stale(), i == 4, "after removing {}", i + 1);
        }
        index.rebuild();
        assert_eq!(index.epoch(), 2);
        assert_eq!(index.len(), 9);
        assert_eq!(index.tombstone_count(), 0);
    }

    #[test]
    fn background_rebuild_installs_or_reports_staleness() {
        let mut index = GraphIndex::build(db(10, 37), IndexOptions::default().with_dimensions(12));
        let extra = db(2, 79);
        index.insert(extra[0].clone());

        // A mutation after the snapshot makes installation refuse.
        let task = index.spawn_rebuild();
        index.insert(extra[1].clone());
        match index.install(task) {
            Err(GdimError::StaleRebuild { missed: 1 }) => {}
            other => panic!("expected StaleRebuild, got {other:?}"),
        }
        assert_eq!(index.epoch(), 0, "nothing installed");

        // A quiet index installs the snapshot and bumps the epoch.
        let task = index.spawn_rebuild();
        assert!(index.install(task).unwrap());
        assert_eq!(index.epoch(), 1);
        assert_eq!(index.pending_inserts(), 0);
        // The installed index equals a synchronous rebuild's answers.
        let q = index.graph(3).unwrap().clone();
        let resp = index.search(&q, &SearchRequest::topk(3)).unwrap();
        assert_eq!(resp.hits[0].id.get(), 3);
        assert_eq!(resp.stats.epoch, 1);

        // Cancellation before the build starts yields Ok(false).
        let task = index.spawn_rebuild();
        task.cancel();
        let installed = index.install(task).unwrap();
        if installed {
            // The race is legal: the build may already have passed its
            // first poll. Either way the index stays consistent.
            assert_eq!(index.epoch(), 2);
        } else {
            assert_eq!(index.epoch(), 1);
        }
    }

    #[test]
    fn serving_knobs_survive_a_background_install() {
        // set_exec / set_rebuild_policy are serving-machine knobs, not
        // snapshot state: changing them while a rebuild runs must not
        // be reverted by installing it (they also do not count as
        // mutations, so the install is not refused).
        let mut index = GraphIndex::build(db(8, 39), IndexOptions::default().with_dimensions(10));
        let task = index.spawn_rebuild();
        index.set_exec(ExecConfig::new(5));
        let policy = RebuildPolicy {
            max_inserts: 3,
            max_tombstone_frac: 0.9,
        };
        index.set_rebuild_policy(policy);
        assert!(index.install(task).unwrap());
        assert_eq!(index.epoch(), 1);
        assert_eq!(index.exec().threads, 5);
        assert_eq!(index.rebuild_policy(), &policy);
    }

    #[test]
    fn from_parts_rejects_inconsistent_supports() {
        // The public assembly seam must uphold the no-panic contract:
        // a support id outside the database, or an unsorted support
        // list, is a typed error before any derived state is built.
        let idx = GraphIndex::build(db(6, 41), IndexOptions::default().with_dimensions(8));
        let assemble = |features| {
            GraphIndex::from_parts(
                idx.graphs().to_vec(),
                features,
                idx.dimensions().to_vec(),
                idx.weights().to_vec(),
                idx.options().clone(),
                idx.stats().clone(),
                0,
                Tombstones::all_live(idx.len()),
                0,
            )
        };
        let mut features = idx.feature_space().features().to_vec();
        features[0].support = vec![0, 99];
        match assemble(features) {
            Err(GdimError::Corrupt(msg)) => assert!(msg.contains("99"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let mut features = idx.feature_space().features().to_vec();
        features[0].support = vec![2, 1];
        match assemble(features) {
            Err(GdimError::Corrupt(msg)) => assert!(msg.contains("ascending"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The unmodified parts still assemble.
        assert!(assemble(idx.feature_space().features().to_vec()).is_ok());
    }

    #[test]
    fn empty_database_builds_and_serves() {
        let index = GraphIndex::build(Vec::new(), IndexOptions::default());
        assert!(index.is_empty());
        let q = db(1, 1).remove(0);
        for ranker in [
            Ranker::Mapped,
            Ranker::Exact,
            Ranker::Refined { candidates: 3 },
        ] {
            let resp = index
                .search(&q, &SearchRequest::topk(5).with_ranker(ranker))
                .unwrap();
            assert!(resp.hits.is_empty(), "{ranker:?}");
        }
    }
}

//! High-level index API: the one-type entry point a downstream
//! application uses. [`GraphIndex::build`] runs the whole paper
//! pipeline (gSpan mining → δ matrix or DSPMap blocks → dimension
//! selection → mapped database) behind a single builder, and the
//! resulting index answers top-k similarity queries, serializes to the
//! workspace text format, and exposes its dimensions for inspection.
//!
//! ```
//! use gdim_core::index::{GraphIndex, IndexOptions};
//!
//! let db = gdim_datagen::chem_db(60, &gdim_datagen::ChemConfig::default(), 7);
//! let index = GraphIndex::build(db, IndexOptions::default().with_dimensions(40));
//! let query = index.graph(3).clone();
//! let hits = index.topk(&query, 5);
//! assert_eq!(hits[0].0, 3);
//! ```

use std::time::{Duration, Instant};

use gdim_exec::ExecConfig;
use gdim_graph::Graph;
use gdim_mining::{mine, MinerConfig, Support};

use crate::bitset::Bitset;
use crate::delta::{DeltaConfig, DeltaMatrix, SharedDelta};
use crate::dspm::{dspm, DspmConfig};
use crate::dspmap::{dspmap, DspmapConfig};
use crate::featurespace::FeatureSpace;
use crate::query::{MappedDatabase, MappingKind};

/// How dimensions are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Full DSPM over the complete δ matrix (quadratic state; the
    /// quality reference).
    Dspm,
    /// DSPMap with the given partition size (linear scaling; for large
    /// databases).
    Dspmap {
        /// Partition size `b`.
        partition_size: usize,
    },
    /// Automatic: DSPM below `threshold` graphs, DSPMap (with
    /// `b = n/20`) above — mirroring the paper's practical guidance.
    Auto {
        /// Database size at which to switch to DSPMap.
        threshold: usize,
    },
}

/// Options for [`GraphIndex::build`].
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Number of dimensions `p`.
    pub dimensions: usize,
    /// gSpan minimum support τ.
    pub min_support: Support,
    /// gSpan pattern-size cap (edges).
    pub max_pattern_edges: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// δ computation configuration (dissimilarity kind, MCS budget).
    /// Its embedded [`DeltaConfig::exec`] is the **single parallelism
    /// budget** for the whole build and the index's query entry points
    /// (δ matrix, DSPM/DSPMap, exact ranking, batch query mapping) —
    /// set it via [`IndexOptions::with_threads`] / [`IndexOptions::with_exec`].
    pub delta: DeltaConfig,
    /// RNG seed (DSPMap partitioning).
    pub seed: u64,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            dimensions: 100,
            min_support: Support::Relative(0.05),
            max_pattern_edges: 5,
            strategy: SelectionStrategy::Auto { threshold: 2000 },
            delta: DeltaConfig::default(),
            seed: 0,
        }
    }
}

impl IndexOptions {
    /// Sets the number of dimensions.
    pub fn with_dimensions(mut self, p: usize) -> Self {
        self.dimensions = p;
        self
    }

    /// Sets the gSpan support threshold.
    pub fn with_min_support(mut self, s: Support) -> Self {
        self.min_support = s;
        self
    }

    /// Sets the selection strategy.
    pub fn with_strategy(mut self, s: SelectionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets the worker-thread budget (`0` = all cores) for every
    /// parallel phase of the build and the built index's queries.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.delta.exec = ExecConfig::new(threads);
        self
    }

    /// Sets the full parallelism budget.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.delta.exec = exec;
        self
    }
}

/// Build-phase statistics, for observability.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// Number of frequent features mined (`m`).
    pub mined_features: usize,
    /// Number of selected dimensions (`p`).
    pub dimensions: usize,
    /// Which strategy actually ran.
    pub used_dspmap: bool,
    /// δ pairs computed during the build.
    pub delta_pairs: usize,
    /// Time in gSpan.
    pub mining_time: Duration,
    /// Time computing δ values.
    pub delta_time: Duration,
    /// Time in DSPM/DSPMap.
    pub selection_time: Duration,
}

/// A built graph-similarity index over an owned database.
pub struct GraphIndex {
    db: Vec<Graph>,
    space: FeatureSpace,
    mapped: MappedDatabase,
    selected: Vec<u32>,
    weights: Vec<f64>,
    exec: ExecConfig,
    stats: IndexStats,
}

impl GraphIndex {
    /// Runs the full pipeline over `db`. Every parallel phase draws on
    /// the single [`IndexOptions::exec`] budget.
    pub fn build(db: Vec<Graph>, opts: IndexOptions) -> GraphIndex {
        let exec = opts.delta.exec;
        let delta_cfg = opts.delta.clone();
        let t0 = Instant::now();
        let features = mine(
            &db,
            &MinerConfig::new(opts.min_support).with_max_edges(opts.max_pattern_edges),
        );
        let mining_time = t0.elapsed();
        let space = FeatureSpace::build(db.len(), features);
        let m = space.num_features();
        let p = opts.dimensions.min(m);

        let use_dspmap = match opts.strategy {
            SelectionStrategy::Dspm => false,
            SelectionStrategy::Dspmap { .. } => true,
            SelectionStrategy::Auto { threshold } => db.len() > threshold,
        };

        let (selected, weights, delta_pairs, delta_time, selection_time) = if use_dspmap {
            let b = match opts.strategy {
                SelectionStrategy::Dspmap { partition_size } => partition_size,
                _ => (db.len() / 20).max(10),
            };
            let t1 = Instant::now();
            let sdelta = SharedDelta::new(&db, delta_cfg);
            let cfg = DspmapConfig {
                p,
                partition_size: b,
                sample_size: 16,
                epsilon: 1e-6,
                max_iters: 100,
                exec,
                seed: opts.seed,
            };
            let res = dspmap(&space, &sdelta, &cfg);
            let sel_time = t1.elapsed();
            (
                res.selected,
                res.weights,
                sdelta.computed_pairs(),
                Duration::ZERO, // δ time is interleaved with selection
                sel_time,
            )
        } else {
            let t1 = Instant::now();
            let delta = DeltaMatrix::compute(&db, &delta_cfg);
            let delta_time = t1.elapsed();
            let t2 = Instant::now();
            let res = dspm(
                &space,
                &delta,
                &DspmConfig {
                    exec,
                    ..DspmConfig::new(p)
                },
            );
            let pairs = db.len() * db.len().saturating_sub(1) / 2;
            (res.selected, res.weights, pairs, delta_time, t2.elapsed())
        };

        let mapped = MappedDatabase::build(&space, &selected, MappingKind::Binary);
        let stats = IndexStats {
            mined_features: m,
            dimensions: selected.len(),
            used_dspmap: use_dspmap,
            delta_pairs,
            mining_time,
            delta_time,
            selection_time,
        };
        GraphIndex {
            db,
            space,
            mapped,
            selected,
            weights,
            exec,
            stats,
        }
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// The indexed graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.db
    }

    /// One indexed graph.
    pub fn graph(&self, i: usize) -> &Graph {
        &self.db[i]
    }

    /// Build statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// The underlying feature space (all mined features).
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.space
    }

    /// The mapped database over the selected dimensions.
    pub fn mapped(&self) -> &MappedDatabase {
        &self.mapped
    }

    /// Selected dimension ids into [`GraphIndex::feature_space`].
    pub fn dimensions(&self) -> &[u32] {
        &self.selected
    }

    /// DSPM/DSPMap weights over all mined features.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The parallelism budget the index was built with (also used by
    /// its query entry points).
    pub fn exec(&self) -> &ExecConfig {
        &self.exec
    }

    /// Maps a query graph onto the index's dimensions.
    pub fn map_query(&self, q: &Graph) -> Bitset {
        self.mapped.map_query(q)
    }

    /// Top-k similarity query: `(graph id, mapped distance)` ascending.
    pub fn topk(&self, q: &Graph, k: usize) -> Vec<(u32, f64)> {
        self.mapped.topk(&self.mapped.map_query(q), k)
    }

    /// Batch top-k: maps all queries on the index's exec budget, then
    /// scans. Output order matches `queries` for any thread budget.
    pub fn topk_batch(&self, queries: &[Graph], k: usize) -> Vec<Vec<(u32, f64)>> {
        self.mapped
            .map_queries(queries, &self.exec)
            .iter()
            .map(|qvec| self.mapped.topk(qvec, k))
            .collect()
    }

    /// Exact top-k by graph dissimilarity — the slow reference ranker —
    /// on the index's exec budget.
    pub fn exact_topk(&self, q: &Graph, k: usize) -> Vec<(u32, f64)> {
        crate::query::exact_topk(
            &self.db,
            q,
            k,
            self.stats_delta_kind(),
            &gdim_graph::McsOptions::default(),
            &self.exec,
        )
    }

    fn stats_delta_kind(&self) -> gdim_graph::Dissimilarity {
        // The index stores the kind inside the mapped config implicitly;
        // δ2 is the paper's default and what `DeltaConfig::default` uses.
        gdim_graph::Dissimilarity::AvgNorm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: usize, seed: u64) -> Vec<Graph> {
        gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed)
    }

    #[test]
    fn build_and_query_roundtrip() {
        let index = GraphIndex::build(db(40, 3), IndexOptions::default().with_dimensions(30));
        assert_eq!(index.len(), 40);
        assert!(index.stats().mined_features > 0);
        assert_eq!(index.dimensions().len(), index.stats().dimensions);
        let q = index.graph(7).clone();
        let hits = index.topk(&q, 3);
        assert_eq!(hits[0].0, 7);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn auto_strategy_switches_to_dspmap() {
        let opts = IndexOptions::default()
            .with_dimensions(20)
            .with_strategy(SelectionStrategy::Auto { threshold: 10 });
        let index = GraphIndex::build(db(30, 5), opts);
        assert!(index.stats().used_dspmap);
        // DSPMap never touches all pairs.
        assert!(index.stats().delta_pairs < 30 * 29 / 2);
        let small = GraphIndex::build(
            db(8, 5),
            IndexOptions::default()
                .with_dimensions(10)
                .with_strategy(SelectionStrategy::Auto { threshold: 10 }),
        );
        assert!(!small.stats().used_dspmap);
    }

    #[test]
    fn explicit_dspmap_partition_size() {
        let opts = IndexOptions::default()
            .with_dimensions(15)
            .with_strategy(SelectionStrategy::Dspmap { partition_size: 8 });
        let index = GraphIndex::build(db(25, 7), opts);
        assert!(index.stats().used_dspmap);
        let q = index.graph(0).clone();
        assert_eq!(index.topk(&q, 1)[0].0, 0);
    }

    #[test]
    fn exact_and_mapped_agree_on_self_query() {
        let index = GraphIndex::build(db(15, 9), IndexOptions::default().with_dimensions(20));
        let q = index.graph(4).clone();
        assert_eq!(index.exact_topk(&q, 1)[0].0, 4);
        assert_eq!(index.topk(&q, 1)[0].0, 4);
    }
}

//! Fixed-length bitsets: the binary feature vectors `y_i` of §4 and the
//! fingerprints of the benchmark ranker. Hot operations are the word-wise
//! set-algebra counts used by distances (XOR/AND popcounts).

/// A fixed-length bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bitset {
    len: usize,
    words: Vec<u64>,
}

impl Bitset {
    /// All-zero bitset of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bitset {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a bitset directly from its word representation — the
    /// constructor the flat [`VectorStore`](crate::scan::VectorStore)
    /// uses to materialize a row as a standalone vector. `words` must
    /// hold exactly `len.div_ceil(64)` words; bits past `len` in the
    /// last word are cleared so equality and hashing stay canonical.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count must match len");
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        Bitset { len, words }
    }

    /// Number of backing words (`len.div_ceil(64)`), the row stride of
    /// a word-matrix layout over same-length vectors.
    #[inline]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `|self ∧ other|`.
    pub fn and_count(&self, other: &Bitset) -> u32 {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// `|self ∨ other|`.
    pub fn or_count(&self, other: &Bitset) -> u32 {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones())
            .sum()
    }

    /// `|self ⊕ other|` — the Hamming distance, i.e. `p·d²` for the
    /// paper's normalized Euclidean distance over binary vectors.
    pub fn xor_count(&self, other: &Bitset) -> u32 {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Weighted squared distance: `Σ_{i ∈ self ⊕ other} w[i]²`, the
    /// kernel of the weighted-mapping ablation and of `Computeobj`.
    /// Word-blocked: zero XOR words are skipped wholesale and each
    /// non-zero word walks its own 64-weight block, so the common
    /// sparse-difference case never touches most of `w_sq`.
    pub fn weighted_sq_xor(&self, other: &Bitset, w_sq: &[f64]) -> f64 {
        debug_assert_eq!(self.len, other.len);
        debug_assert!(w_sq.len() >= self.len);
        weighted_sq_xor_words(&self.words, &other.words, w_sq)
    }

    /// Raw words (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// The word-level accumulation behind [`Bitset::weighted_sq_xor`],
/// shared with the flat scan kernel — and exported for the sharded
/// small-database direct scan — so every path adds the same weights in
/// the same order and therefore produces bit-identical sums. `w_sq`
/// must cover every bit index addressable by the shorter word slice.
#[inline]
pub fn weighted_sq_xor_words(a: &[u64], b: &[u64], w_sq: &[f64]) -> f64 {
    let mut total = 0.0;
    for (wi, (x, y)) in a.iter().zip(b).enumerate() {
        let mut x = x ^ y;
        if x == 0 {
            continue;
        }
        let block = &w_sq[wi * 64..];
        while x != 0 {
            let bit = x.trailing_zeros() as usize;
            x &= x - 1;
            total += block[bit];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn set_algebra_counts() {
        let mut a = Bitset::zeros(100);
        let mut b = Bitset::zeros(100);
        for i in [1, 5, 70, 99] {
            a.set(i);
        }
        for i in [5, 70, 80] {
            b.set(i);
        }
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 5);
        assert_eq!(a.xor_count(&b), 3);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitset::zeros(200);
        for i in [3, 64, 65, 199] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 199]);
    }

    #[test]
    fn weighted_sq_xor_matches_manual() {
        let mut a = Bitset::zeros(5);
        let mut b = Bitset::zeros(5);
        a.set(0);
        a.set(2);
        b.set(2);
        b.set(4);
        let w_sq = [1.0, 10.0, 100.0, 1000.0, 0.25];
        // Symmetric difference = {0, 4}.
        assert_eq!(a.weighted_sq_xor(&b, &w_sq), 1.25);
    }

    #[test]
    fn from_words_roundtrips_and_masks_the_tail() {
        let mut b = Bitset::zeros(130);
        for i in [0, 63, 64, 129] {
            b.set(i);
        }
        assert_eq!(b.word_len(), 3);
        let rebuilt = Bitset::from_words(b.words().to_vec(), 130);
        assert_eq!(rebuilt, b);
        // Garbage above `len` in the last word is cleared.
        let dirty = Bitset::from_words(vec![0, 0, u64::MAX], 130);
        assert_eq!(dirty.count_ones(), 2);
        assert!(dirty.get(128) && dirty.get(129));
    }

    #[test]
    fn empty_bitset() {
        let b = Bitset::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}

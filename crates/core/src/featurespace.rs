//! The feature space `F` of §4–5: mined features, the binary matrix
//! `[y_ir]` as bitset rows, and the two inverted lists of §5.1.2 —
//! `IF_r` (graphs containing feature `f_r`) and `IG_i` (features
//! contained in graph `g_i`). Also maps **unseen query graphs** onto the
//! space via VF2 with histogram pre-filters and anti-monotone pruning
//! along the gSpan parent relation.

use gdim_graph::fxhash::FxHashMap;
use gdim_graph::vf2::is_subgraph_iso;
use gdim_graph::Graph;
use gdim_mining::Feature;

use crate::bitset::Bitset;

/// The multidimensional feature space built over a graph database.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    n_graphs: usize,
    features: Vec<Feature>,
    /// `rows[i]` = bitset of features contained in graph `i` (binary `y_i`).
    rows: Vec<Bitset>,
    /// `IG_i`: sorted feature ids contained in graph `i`.
    ig: Vec<Vec<u32>>,
    /// gSpan parent (code prefix) per feature, for anti-monotone query
    /// mapping: if the parent is absent from a query, so is the child.
    parent: Vec<Option<u32>>,
}

impl FeatureSpace {
    /// Builds the space from gSpan output (`features[r].support` becomes
    /// `IF_r` directly — no isomorphism tests are repeated).
    pub fn build(n_graphs: usize, features: Vec<Feature>) -> Self {
        let mut rows = vec![Bitset::zeros(features.len()); n_graphs];
        let mut ig = vec![Vec::new(); n_graphs];
        for (r, f) in features.iter().enumerate() {
            for &gid in &f.support {
                rows[gid as usize].set(r);
                ig[gid as usize].push(r as u32);
            }
        }
        // Parent lookup by DFS-code prefix. gSpan emits parents before
        // children, but `min_edges` filtering may drop them; missing
        // parents simply disable the pruning for that feature.
        let mut by_code: FxHashMap<&gdim_graph::dfscode::DfsCode, u32> = FxHashMap::default();
        for (r, f) in features.iter().enumerate() {
            by_code.insert(&f.code, r as u32);
        }
        let parent: Vec<Option<u32>> = features
            .iter()
            .map(|f| {
                if f.code.len() <= 1 {
                    return None;
                }
                let prefix = gdim_graph::dfscode::DfsCode(f.code.0[..f.code.len() - 1].to_vec());
                by_code.get(&prefix).copied()
            })
            .collect();
        FeatureSpace {
            n_graphs,
            features,
            rows,
            ig,
            parent,
        }
    }

    /// Number of graphs `n = |DG|`.
    #[inline]
    pub fn num_graphs(&self) -> usize {
        self.n_graphs
    }

    /// Number of features `m = |F|`.
    #[inline]
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// The mined features.
    #[inline]
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Binary vector `y_i` of graph `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &Bitset {
        &self.rows[i]
    }

    /// Inverted list `IF_r` (sorted graph ids containing feature `r`).
    #[inline]
    pub fn if_list(&self, r: usize) -> &[u32] {
        &self.features[r].support
    }

    /// Inverted list `IG_i` (sorted feature ids contained in graph `i`).
    #[inline]
    pub fn ig_list(&self, i: usize) -> &[u32] {
        &self.ig[i]
    }

    /// `|sup(f_r)|`.
    #[inline]
    pub fn support_count(&self, r: usize) -> usize {
        self.features[r].support.len()
    }

    /// Maps an unseen query graph onto the full feature space: bit `r`
    /// is set iff `f_r ⊆ q` (VF2 subgraph-isomorphism, the step the
    /// paper times as "feature matching time" in Exp-4).
    ///
    /// Features are tested in gSpan emission order so each feature's
    /// parent verdict is already known; a feature whose parent is absent
    /// is skipped without a VF2 call (anti-monotonicity).
    pub fn map_query(&self, q: &Graph) -> Bitset {
        let mut bits = Bitset::zeros(self.features.len());
        for (r, f) in self.features.iter().enumerate() {
            if let Some(p) = self.parent[r] {
                debug_assert!((p as usize) < r, "gSpan emits parents first");
                if !bits.get(p as usize) {
                    continue;
                }
            }
            if is_subgraph_iso(&f.graph, q) {
                bits.set(r);
            }
        }
        bits
    }

    /// Restricts the space to a subset of graphs (new dense ids follow
    /// `graph_ids` order) keeping **all** features — used by DSPMap,
    /// whose partitions re-run DSPM on sub-databases. Features with
    /// empty restricted support are retained (weight updates handle
    /// them); callers can check [`FeatureSpace::support_count`].
    pub fn restrict_graphs(&self, graph_ids: &[u32]) -> FeatureSpace {
        let remap: FxHashMap<u32, u32> = graph_ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let features: Vec<Feature> = self
            .features
            .iter()
            .map(|f| {
                let mut support: Vec<u32> = f
                    .support
                    .iter()
                    .filter_map(|g| remap.get(g).copied())
                    .collect();
                support.sort_unstable();
                Feature {
                    graph: f.graph.clone(),
                    code: f.code.clone(),
                    support,
                }
            })
            .collect();
        FeatureSpace::build(graph_ids.len(), features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn tiny_db() -> Vec<Graph> {
        let tri = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0), (0, 2, 0)]).unwrap();
        let path = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0)]).unwrap();
        let other = Graph::from_parts(vec![1, 1], [(0, 1, 5)]).unwrap();
        vec![tri, path, other]
    }

    fn space() -> (Vec<Graph>, FeatureSpace) {
        let db = tiny_db();
        let feats = mine(&db, &MinerConfig::new(Support::Absolute(1)));
        let space = FeatureSpace::build(db.len(), feats);
        (db, space)
    }

    #[test]
    fn inverted_lists_are_consistent() {
        let (_, s) = space();
        for r in 0..s.num_features() {
            for &gid in s.if_list(r) {
                assert!(s.row(gid as usize).get(r));
                assert!(s.ig_list(gid as usize).contains(&(r as u32)));
            }
        }
        for i in 0..s.num_graphs() {
            assert_eq!(s.row(i).count_ones() as usize, s.ig_list(i).len());
        }
    }

    #[test]
    fn map_query_agrees_with_db_rows() {
        // Mapping a database graph as a "query" must reproduce its row.
        let (db, s) = space();
        for (i, g) in db.iter().enumerate() {
            assert_eq!(&s.map_query(g), s.row(i), "graph {i}");
        }
    }

    #[test]
    fn map_unseen_query() {
        let (_, s) = space();
        // A 4-path contains the edge and the 2-path but not the triangle.
        let q = Graph::from_parts(vec![0; 4], [(0, 1, 0), (1, 2, 0), (2, 3, 0)]).unwrap();
        let bits = s.map_query(&q);
        for (r, f) in s.features().iter().enumerate() {
            assert_eq!(
                bits.get(r),
                is_subgraph_iso(&f.graph, &q),
                "feature {r}: {:?}",
                f.graph
            );
        }
        assert!(bits.count_ones() >= 2);
    }

    #[test]
    fn restrict_graphs_remaps_supports() {
        let (_, s) = space();
        let sub = s.restrict_graphs(&[2, 0]);
        assert_eq!(sub.num_graphs(), 2);
        assert_eq!(sub.num_features(), s.num_features());
        // Graph 2 (the label-1 edge) is now id 0.
        for r in 0..s.num_features() {
            let had = s.if_list(r).contains(&2);
            assert_eq!(sub.if_list(r).contains(&0), had);
            let had0 = s.if_list(r).contains(&0);
            assert_eq!(sub.if_list(r).contains(&1), had0);
        }
    }

    #[test]
    fn parent_pruning_never_changes_results() {
        // Compare map_query against brute-force VF2 over all features on
        // a query where many parents are absent.
        let (_, s) = space();
        let q = Graph::from_parts(vec![1, 1, 1], [(0, 1, 5), (1, 2, 5)]).unwrap();
        let bits = s.map_query(&q);
        for (r, f) in s.features().iter().enumerate() {
            assert_eq!(bits.get(r), is_subgraph_iso(&f.graph, &q));
        }
    }
}

//! The feature space `F` of §4–5: mined features, the binary matrix
//! `[y_ir]` as bitset rows, and the two inverted lists of §5.1.2 —
//! `IF_r` (graphs containing feature `f_r`) and `IG_i` (features
//! contained in graph `g_i`). Also maps **unseen query graphs** onto the
//! space via VF2 with histogram pre-filters and anti-monotone pruning
//! along the gSpan parent relation.
//!
//! Two pruning structures keep the VF2 "feature matching time" (the
//! paper's Exp-4 cost component) down:
//!
//! * [`GraphInvariants`] — free per-feature invariants (vertex/edge
//!   counts, label multisets) checked before any VF2 call: if a
//!   feature needs a label the query lacks, no isomorphism test runs.
//! * [`ContainmentDag`] — the containment partial order `f ⊆ f′` over
//!   a *selected* feature set, computed once at index-build time with
//!   VF2 on the tiny feature graphs. At query time features are
//!   matched in topological order; once `f ⊄ q` is known, every
//!   selected supergraph of `f` is skipped without a VF2 call
//!   (anti-monotonicity, generalizing the gSpan parent pruning to
//!   feature subsets where the gSpan parent was not selected).

use gdim_graph::fxhash::{FxHashMap, FxHashSet};
use gdim_graph::vf2::is_subgraph_iso;
use gdim_graph::Graph;
use gdim_mining::Feature;

use crate::bitset::Bitset;

/// Cheap order-respecting graph invariants: if `sub ⊆ sup` then every
/// invariant of `sub` is dominated by `sup`'s, so a failed dominance
/// check disproves containment for free — no VF2 call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInvariants {
    /// `|V|`.
    pub vertices: usize,
    /// `|E|`.
    pub edges: usize,
    /// Vertex-label histogram, sorted by label.
    pub vlabels: Vec<(u32, u32)>,
    /// Edge-label histogram, sorted by label.
    pub elabels: Vec<(u32, u32)>,
}

impl GraphInvariants {
    /// The invariants of `g`.
    pub fn of(g: &Graph) -> Self {
        GraphInvariants {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            vlabels: g.vlabel_counts(),
            elabels: g.elabel_counts(),
        }
    }

    /// Whether a graph with these invariants *can* contain one with
    /// `sub`'s (necessary, not sufficient): counts dominate and both
    /// label multisets include `sub`'s.
    pub fn may_contain(&self, sub: &GraphInvariants) -> bool {
        sub.vertices <= self.vertices
            && sub.edges <= self.edges
            && multiset_includes(&self.vlabels, &sub.vlabels)
            && multiset_includes(&self.elabels, &sub.elabels)
    }
}

/// Whether the sorted histogram `sup` includes `sub` (every label with
/// at least the same count).
fn multiset_includes(sup: &[(u32, u32)], sub: &[(u32, u32)]) -> bool {
    let mut it = sup.iter();
    'outer: for &(label, count) in sub {
        for &(l, c) in it.by_ref() {
            if l == label {
                if c < count {
                    return false;
                }
                continue 'outer;
            }
            if l > label {
                return false;
            }
        }
        return false;
    }
    true
}

/// Per-query counters of the feature-matching leg: how many VF2
/// subgraph-isomorphism tests actually ran and how many were avoided
/// by the containment DAG and the invariant prescreen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// VF2 calls performed.
    pub vf2_calls: usize,
    /// VF2 calls skipped (absent sub-feature or failed invariant).
    pub vf2_pruned: usize,
}

/// The containment partial order `f_i ⊆ f_j` over a feature set,
/// precomputed once so query mapping can skip VF2 calls: a feature
/// whose (necessarily smaller) contained feature is already known
/// absent from the query cannot be present either.
///
/// Built at index-build time and **rebuilt deterministically on
/// load** — it is derived state, never persisted (see
/// [`crate::persist`]). Construction prescreens candidate pairs with
/// [`GraphInvariants`] and the anti-monotone support-list relation
/// (`f_i ⊆ f_j ⟹ sup(f_j) ⊆ sup(f_i)`) before running VF2 on the tiny
/// feature graphs, and stores the transitive reduction (a parent
/// implied by another parent adds no pruning power).
#[derive(Debug, Clone, Default)]
pub struct ContainmentDag {
    /// Column evaluation order: ascending `(edges, vertices, column)`,
    /// so every feature is evaluated after all features it contains.
    order: Vec<u32>,
    /// `parents[j]` = columns whose feature is contained in feature
    /// `j` (transitively reduced).
    parents: Vec<Vec<u32>>,
    /// Invariants per column, for the free query prescreen.
    invariants: Vec<GraphInvariants>,
}

impl ContainmentDag {
    /// Builds the DAG over `features` (one VF2 containment test per
    /// invariant- and support-plausible ordered pair).
    pub fn build(features: &[Feature]) -> Self {
        let invariants: Vec<GraphInvariants> = features
            .iter()
            .map(|f| GraphInvariants::of(&f.graph))
            .collect();
        let mut order: Vec<u32> = (0..features.len() as u32).collect();
        order.sort_by_key(|&c| {
            let f = &features[c as usize];
            (f.graph.edge_count(), f.graph.vertex_count(), c)
        });
        // `(i, j)` ∈ contains ⟺ f_i ⊆ f_j, over pairs that survive the
        // prescreens (i strictly before j in evaluation order).
        let mut contains: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); features.len()];
        for (pos, &j) in order.iter().enumerate() {
            let fj = &features[j as usize];
            let mut direct: Vec<u32> = Vec::new();
            for &i in &order[..pos] {
                let fi = &features[i as usize];
                if !invariants[j as usize].may_contain(&invariants[i as usize]) {
                    continue;
                }
                // Anti-monotone on the database: every graph containing
                // f_j must contain any f_i ⊆ f_j.
                if !sorted_subset(&fj.support, &fi.support) {
                    continue;
                }
                if is_subgraph_iso(&fi.graph, &fj.graph) {
                    contains.insert((i, j));
                    direct.push(i);
                }
            }
            // Transitive reduction: drop a parent contained in another
            // parent — its absence is already implied.
            let reduced: Vec<u32> = direct
                .iter()
                .copied()
                .filter(|&i| !parents_cover(&contains, &direct, i))
                .collect();
            parents[j as usize] = reduced;
        }
        ContainmentDag {
            order,
            parents,
            invariants,
        }
    }

    /// Maps a query onto `features` (the same slice the DAG was built
    /// over): bit `r` set iff `f_r ⊆ q`, bit-identical to testing
    /// every feature with VF2, with the DAG and the invariant
    /// prescreen skipping calls whose answer is already forced.
    pub fn map_query(&self, features: &[Feature], q: &Graph) -> (Bitset, MatchStats) {
        debug_assert_eq!(features.len(), self.parents.len());
        let qinv = GraphInvariants::of(q);
        let mut bits = Bitset::zeros(features.len());
        let mut stats = MatchStats::default();
        'cols: for &col in &self.order {
            let c = col as usize;
            for &parent in &self.parents[c] {
                if !bits.get(parent as usize) {
                    stats.vf2_pruned += 1;
                    continue 'cols;
                }
            }
            if !qinv.may_contain(&self.invariants[c]) {
                stats.vf2_pruned += 1;
                continue;
            }
            stats.vf2_calls += 1;
            if is_subgraph_iso(&features[c].graph, q) {
                bits.set(c);
            }
        }
        (bits, stats)
    }

    /// Direct (transitively reduced) contained-feature columns of
    /// column `j`.
    pub fn parents(&self, j: usize) -> &[u32] {
        &self.parents[j]
    }

    /// Total containment edges kept after transitive reduction.
    pub fn edge_count(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }
}

/// Whether another member of `direct` contains column `i` (making the
/// edge from `i` transitively implied).
fn parents_cover(contains: &FxHashSet<(u32, u32)>, direct: &[u32], i: u32) -> bool {
    direct
        .iter()
        .any(|&other| other != i && contains.contains(&(i, other)))
}

/// Whether sorted id list `sub` is a subset of sorted id list `sup`.
fn sorted_subset(sub: &[u32], sup: &[u32]) -> bool {
    let mut it = sup.iter();
    'outer: for &x in sub {
        for &y in it.by_ref() {
            if y == x {
                continue 'outer;
            }
            if y > x {
                return false;
            }
        }
        return false;
    }
    true
}

/// The multidimensional feature space built over a graph database.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    n_graphs: usize,
    features: Vec<Feature>,
    /// `rows[i]` = bitset of features contained in graph `i` (binary `y_i`).
    rows: Vec<Bitset>,
    /// `IG_i`: sorted feature ids contained in graph `i`.
    ig: Vec<Vec<u32>>,
    /// gSpan parent (code prefix) per feature, for anti-monotone query
    /// mapping: if the parent is absent from a query, so is the child.
    parent: Vec<Option<u32>>,
    /// Per-feature invariants for the free query-mapping prescreen.
    invariants: Vec<GraphInvariants>,
}

impl FeatureSpace {
    /// Builds the space from gSpan output (`features[r].support` becomes
    /// `IF_r` directly — no isomorphism tests are repeated).
    pub fn build(n_graphs: usize, features: Vec<Feature>) -> Self {
        let mut rows = vec![Bitset::zeros(features.len()); n_graphs];
        let mut ig = vec![Vec::new(); n_graphs];
        for (r, f) in features.iter().enumerate() {
            for &gid in &f.support {
                rows[gid as usize].set(r);
                ig[gid as usize].push(r as u32);
            }
        }
        // Parent lookup by DFS-code prefix. gSpan emits parents before
        // children, but `min_edges` filtering may drop them; missing
        // parents simply disable the pruning for that feature.
        let mut by_code: FxHashMap<&gdim_graph::dfscode::DfsCode, u32> = FxHashMap::default();
        for (r, f) in features.iter().enumerate() {
            by_code.insert(&f.code, r as u32);
        }
        let parent: Vec<Option<u32>> = features
            .iter()
            .map(|f| {
                if f.code.len() <= 1 {
                    return None;
                }
                let prefix = gdim_graph::dfscode::DfsCode(f.code.0[..f.code.len() - 1].to_vec());
                by_code.get(&prefix).copied()
            })
            .collect();
        let invariants = features
            .iter()
            .map(|f| GraphInvariants::of(&f.graph))
            .collect();
        FeatureSpace {
            n_graphs,
            features,
            rows,
            ig,
            parent,
            invariants,
        }
    }

    /// Number of graphs `n = |DG|`.
    #[inline]
    pub fn num_graphs(&self) -> usize {
        self.n_graphs
    }

    /// Number of features `m = |F|`.
    #[inline]
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// The mined features.
    #[inline]
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Binary vector `y_i` of graph `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &Bitset {
        &self.rows[i]
    }

    /// Inverted list `IF_r` (sorted graph ids containing feature `r`).
    #[inline]
    pub fn if_list(&self, r: usize) -> &[u32] {
        &self.features[r].support
    }

    /// Inverted list `IG_i` (sorted feature ids contained in graph `i`).
    #[inline]
    pub fn ig_list(&self, i: usize) -> &[u32] {
        &self.ig[i]
    }

    /// `|sup(f_r)|`.
    #[inline]
    pub fn support_count(&self, r: usize) -> usize {
        self.features[r].support.len()
    }

    /// Maps an unseen query graph onto the full feature space: bit `r`
    /// is set iff `f_r ⊆ q` (VF2 subgraph-isomorphism, the step the
    /// paper times as "feature matching time" in Exp-4).
    ///
    /// Features are tested in gSpan emission order so each feature's
    /// parent verdict is already known; a feature whose parent is absent
    /// is skipped without a VF2 call (anti-monotonicity), and the free
    /// [`GraphInvariants`] prescreen rejects features whose counts or
    /// label multisets the query cannot cover before any VF2 runs.
    pub fn map_query(&self, q: &Graph) -> Bitset {
        let qinv = GraphInvariants::of(q);
        let mut bits = Bitset::zeros(self.features.len());
        for (r, f) in self.features.iter().enumerate() {
            if let Some(p) = self.parent[r] {
                debug_assert!((p as usize) < r, "gSpan emits parents first");
                if !bits.get(p as usize) {
                    continue;
                }
            }
            if !qinv.may_contain(&self.invariants[r]) {
                continue;
            }
            if is_subgraph_iso(&f.graph, q) {
                bits.set(r);
            }
        }
        bits
    }

    /// Appends one graph to the space with its **already computed**
    /// full-space feature row (bit `r` set iff `f_r ⊆ g`): the row is
    /// recorded, `IG` gains the graph's feature list, and every
    /// matched feature's support (`IF_r`) gains the new id — so an
    /// online insert keeps the space internally consistent (and
    /// persistable) without re-mining. The feature set itself does not
    /// change; features the new graph *would* have made frequent are
    /// only discovered by the next full rebuild.
    ///
    /// Returns the new graph's id.
    ///
    /// # Panics
    /// If `row` does not cover exactly the space's features.
    pub fn push_graph(&mut self, row: &Bitset) -> u32 {
        assert_eq!(
            row.len(),
            self.features.len(),
            "feature row length mismatch"
        );
        let id = self.n_graphs as u32;
        self.n_graphs += 1;
        let mut ig = Vec::new();
        for r in row.iter_ones() {
            // `id` is the maximum id so far: pushing keeps `support` sorted.
            self.features[r].support.push(id);
            ig.push(r as u32);
        }
        self.rows.push(row.clone());
        self.ig.push(ig);
        id
    }

    /// Restricts the space to a subset of graphs (new dense ids follow
    /// `graph_ids` order) keeping **all** features — used by DSPMap,
    /// whose partitions re-run DSPM on sub-databases. Features with
    /// empty restricted support are retained (weight updates handle
    /// them); callers can check [`FeatureSpace::support_count`].
    pub fn restrict_graphs(&self, graph_ids: &[u32]) -> FeatureSpace {
        let remap: FxHashMap<u32, u32> = graph_ids
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let features: Vec<Feature> = self
            .features
            .iter()
            .map(|f| {
                let mut support: Vec<u32> = f
                    .support
                    .iter()
                    .filter_map(|g| remap.get(g).copied())
                    .collect();
                support.sort_unstable();
                Feature {
                    graph: f.graph.clone(),
                    code: f.code.clone(),
                    support,
                }
            })
            .collect();
        FeatureSpace::build(graph_ids.len(), features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn tiny_db() -> Vec<Graph> {
        let tri = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0), (0, 2, 0)]).unwrap();
        let path = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0)]).unwrap();
        let other = Graph::from_parts(vec![1, 1], [(0, 1, 5)]).unwrap();
        vec![tri, path, other]
    }

    fn space() -> (Vec<Graph>, FeatureSpace) {
        let db = tiny_db();
        let feats = mine(&db, &MinerConfig::new(Support::Absolute(1)));
        let space = FeatureSpace::build(db.len(), feats);
        (db, space)
    }

    #[test]
    fn inverted_lists_are_consistent() {
        let (_, s) = space();
        for r in 0..s.num_features() {
            for &gid in s.if_list(r) {
                assert!(s.row(gid as usize).get(r));
                assert!(s.ig_list(gid as usize).contains(&(r as u32)));
            }
        }
        for i in 0..s.num_graphs() {
            assert_eq!(s.row(i).count_ones() as usize, s.ig_list(i).len());
        }
    }

    #[test]
    fn map_query_agrees_with_db_rows() {
        // Mapping a database graph as a "query" must reproduce its row.
        let (db, s) = space();
        for (i, g) in db.iter().enumerate() {
            assert_eq!(&s.map_query(g), s.row(i), "graph {i}");
        }
    }

    #[test]
    fn map_unseen_query() {
        let (_, s) = space();
        // A 4-path contains the edge and the 2-path but not the triangle.
        let q = Graph::from_parts(vec![0; 4], [(0, 1, 0), (1, 2, 0), (2, 3, 0)]).unwrap();
        let bits = s.map_query(&q);
        for (r, f) in s.features().iter().enumerate() {
            assert_eq!(
                bits.get(r),
                is_subgraph_iso(&f.graph, &q),
                "feature {r}: {:?}",
                f.graph
            );
        }
        assert!(bits.count_ones() >= 2);
    }

    #[test]
    fn restrict_graphs_remaps_supports() {
        let (_, s) = space();
        let sub = s.restrict_graphs(&[2, 0]);
        assert_eq!(sub.num_graphs(), 2);
        assert_eq!(sub.num_features(), s.num_features());
        // Graph 2 (the label-1 edge) is now id 0.
        for r in 0..s.num_features() {
            let had = s.if_list(r).contains(&2);
            assert_eq!(sub.if_list(r).contains(&0), had);
            let had0 = s.if_list(r).contains(&0);
            assert_eq!(sub.if_list(r).contains(&1), had0);
        }
    }

    #[test]
    fn push_graph_matches_batch_construction() {
        // Build the space over the first two graphs, push the third:
        // the result must equal building over all three at once (same
        // features, so supports/rows/IG lists line up exactly).
        let db = tiny_db();
        let feats = mine(&db, &MinerConfig::new(Support::Absolute(1)));
        let full = FeatureSpace::build(db.len(), feats.clone());
        let restricted: Vec<Feature> = feats
            .iter()
            .map(|f| Feature {
                graph: f.graph.clone(),
                code: f.code.clone(),
                support: f.support.iter().copied().filter(|&g| g < 2).collect(),
            })
            .collect();
        let mut grown = FeatureSpace::build(2, restricted);
        let row = grown.map_query(&db[2]);
        let id = grown.push_graph(&row);
        assert_eq!(id, 2);
        assert_eq!(grown.num_graphs(), full.num_graphs());
        for r in 0..full.num_features() {
            assert_eq!(grown.if_list(r), full.if_list(r), "feature {r}");
        }
        for i in 0..full.num_graphs() {
            assert_eq!(grown.row(i), full.row(i), "graph {i}");
            assert_eq!(grown.ig_list(i), full.ig_list(i), "graph {i}");
        }
    }

    #[test]
    fn invariants_dominance_is_sound() {
        let tri = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0), (0, 2, 0)]).unwrap();
        let path = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0)]).unwrap();
        let other = Graph::from_parts(vec![1, 1], [(0, 1, 5)]).unwrap();
        let (ti, pi, oi) = (
            GraphInvariants::of(&tri),
            GraphInvariants::of(&path),
            GraphInvariants::of(&other),
        );
        assert!(ti.may_contain(&pi)); // path ⊆ triangle is plausible
        assert!(!pi.may_contain(&ti)); // fewer edges cannot contain more
        assert!(!ti.may_contain(&oi)); // label 1 vertices absent from tri
        assert!(ti.may_contain(&ti));
    }

    #[test]
    fn containment_dag_maps_bit_identically_to_brute_force() {
        let db = gdim_datagen::chem_db(20, &gdim_datagen::ChemConfig::default(), 5);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(4),
        );
        assert!(feats.len() > 4);
        let dag = ContainmentDag::build(&feats);
        let queries = gdim_datagen::chem_db(4, &gdim_datagen::ChemConfig::default(), 77);
        for q in db.iter().take(3).chain(&queries) {
            let (bits, stats) = dag.map_query(&feats, q);
            for (r, f) in feats.iter().enumerate() {
                assert_eq!(bits.get(r), is_subgraph_iso(&f.graph, q), "feature {r}");
            }
            assert_eq!(stats.vf2_calls + stats.vf2_pruned, feats.len());
        }
    }

    #[test]
    fn containment_dag_edges_point_from_subfeatures() {
        // Hand-built features: edge ⊆ path ⊆ triangle, plus an
        // unrelated labeled edge. Use supports consistent with the
        // anti-monotone relation (sup shrinks as features grow).
        let edge = Graph::from_parts(vec![0; 2], [(0, 1, 0)]).unwrap();
        let path = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0)]).unwrap();
        let tri = Graph::from_parts(vec![0; 3], [(0, 1, 0), (1, 2, 0), (0, 2, 0)]).unwrap();
        let other = Graph::from_parts(vec![1, 1], [(0, 1, 5)]).unwrap();
        let feats: Vec<Feature> = [
            (tri, vec![0]),
            (edge, vec![0, 1, 2]),
            (other, vec![3]),
            (path, vec![0, 1]),
        ]
        .into_iter()
        .map(|(graph, support)| {
            let code = gdim_graph::dfscode::min_dfs_code(&graph);
            Feature {
                graph,
                code,
                support,
            }
        })
        .collect();
        let dag = ContainmentDag::build(&feats);
        // Triangle's only direct parent is the path (edge is implied).
        assert_eq!(dag.parents(0), &[3]);
        assert_eq!(dag.parents(1), &[] as &[u32]);
        assert_eq!(dag.parents(2), &[] as &[u32]);
        assert_eq!(dag.parents(3), &[1]);
        assert_eq!(dag.edge_count(), 2);
    }

    #[test]
    fn parent_pruning_never_changes_results() {
        // Compare map_query against brute-force VF2 over all features on
        // a query where many parents are absent.
        let (_, s) = space();
        let q = Graph::from_parts(vec![1, 1, 1], [(0, 1, 5), (1, 2, 5)]).unwrap();
        let bits = s.map_query(&q);
        for (r, f) in s.features().iter().enumerate() {
            assert_eq!(bits.get(r), is_subgraph_iso(&f.graph, &q));
        }
    }
}

//! The crate-wide error type. Every fallible entry point of the
//! serving surface — mapped-database construction, index accessors,
//! search requests, index persistence — returns [`GdimError`] instead
//! of panicking, so a long-running server can reject one bad request
//! (or one corrupt index file) and keep serving the rest.

use std::fmt;
use std::io;

/// Errors surfaced by the query and persistence paths of `gdim-core`.
#[derive(Debug)]
#[non_exhaustive]
pub enum GdimError {
    /// A graph id addressed a graph outside the database.
    GraphOutOfRange {
        /// The requested graph id.
        id: usize,
        /// Number of graphs in the database.
        len: usize,
    },
    /// A selected dimension id addressed a feature outside the space.
    DimensionOutOfRange {
        /// The offending feature id.
        id: u32,
        /// Number of features in the space.
        num_features: usize,
    },
    /// A weight vector did not cover the feature space it was paired
    /// with (weighted mappings need one weight per mined feature).
    WeightsMismatch {
        /// Expected length (`FeatureSpace::num_features`).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Underlying I/O failure while saving or loading an index.
    Io(io::Error),
    /// A persisted index file failed structural validation.
    Corrupt(String),
    /// A persisted index was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// A shard id addressed a shard outside a sharded index (the
    /// sharded layer lives in `gdim-shard`; the variant lives here so
    /// the whole serving surface shares one error type).
    ShardOutOfRange {
        /// The requested shard id.
        id: usize,
        /// Number of shards in the index.
        shards: usize,
    },
    /// A background rebuild snapshot no longer matches the live index:
    /// inserts or removes landed after the rebuild was spawned, so
    /// installing it would silently drop them. Spawn a fresh rebuild
    /// instead.
    StaleRebuild {
        /// Mutations (inserts + removes) applied since the snapshot.
        missed: u64,
    },
    /// A write-ahead log ended in a torn or unreadable tail that could
    /// not be reconciled with a valid record prefix. Recovery trusts
    /// the prefix before the tear; this error means the log is damaged
    /// *within* what should have been trusted (e.g. a CRC-valid frame
    /// whose payload fails to decode), so replaying further would
    /// corrupt the index.
    TornLog {
        /// Bytes of the log that form a valid record stream.
        trusted: u64,
        /// Total bytes found in the log file.
        total: u64,
        /// Human-readable description of the first failure.
        detail: String,
    },
    /// A checkpoint generation referenced by the durable directory's
    /// `CURRENT` file is missing or fails validation, so the index
    /// cannot be recovered from it.
    CorruptCheckpoint {
        /// The generation number that failed to load.
        generation: u64,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// The durable handle stopped accepting mutations after a failure
    /// that left its in-memory state ahead of what is durably
    /// published (e.g. a rebuild whose checkpoint failed): logging
    /// further mutations would record them against state that cannot
    /// be reproduced on recovery. Reads keep working; mutations fail
    /// until the directory is reopened.
    DurablePoisoned {
        /// Human-readable description of the failure that poisoned it.
        detail: String,
    },
}

impl GdimError {
    /// The error's **stable, machine-readable code**: a lowercase
    /// `snake_case` string naming the variant, independent of the
    /// human-readable [`Display`](fmt::Display) message. This is the
    /// wire contract a served error body carries (and what clients
    /// match on), so codes must never change spelling or meaning once
    /// released — the full mapping is pinned by a unit test.
    pub fn code(&self) -> &'static str {
        match self {
            GdimError::GraphOutOfRange { .. } => "graph_out_of_range",
            GdimError::DimensionOutOfRange { .. } => "dimension_out_of_range",
            GdimError::WeightsMismatch { .. } => "weights_mismatch",
            GdimError::Io(_) => "io",
            GdimError::Corrupt(_) => "corrupt",
            GdimError::UnsupportedVersion { .. } => "unsupported_version",
            GdimError::ShardOutOfRange { .. } => "shard_out_of_range",
            GdimError::StaleRebuild { .. } => "stale_rebuild",
            GdimError::TornLog { .. } => "torn_log",
            GdimError::CorruptCheckpoint { .. } => "corrupt_checkpoint",
            GdimError::DurablePoisoned { .. } => "durable_poisoned",
        }
    }

    /// Whether the error indicts the *request* (a caller addressed a
    /// graph/shard/dimension that does not exist, or raced a rebuild)
    /// rather than the server's own state (I/O failures, corrupt or
    /// unreadable index files). A serving layer maps caller faults to
    /// 4xx statuses and server faults to 5xx.
    pub fn is_caller_fault(&self) -> bool {
        match self {
            GdimError::GraphOutOfRange { .. }
            | GdimError::DimensionOutOfRange { .. }
            | GdimError::WeightsMismatch { .. }
            | GdimError::ShardOutOfRange { .. }
            | GdimError::StaleRebuild { .. } => true,
            GdimError::Io(_)
            | GdimError::Corrupt(_)
            | GdimError::UnsupportedVersion { .. }
            | GdimError::TornLog { .. }
            | GdimError::CorruptCheckpoint { .. }
            | GdimError::DurablePoisoned { .. } => false,
        }
    }
}

impl fmt::Display for GdimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdimError::GraphOutOfRange { id, len } => {
                write!(f, "graph id {id} out of range for database of {len} graphs")
            }
            GdimError::DimensionOutOfRange { id, num_features } => {
                write!(
                    f,
                    "dimension id {id} out of range for feature space of {num_features} features"
                )
            }
            GdimError::WeightsMismatch { expected, got } => {
                write!(f, "weight vector has {got} entries, expected {expected}")
            }
            GdimError::Io(e) => write!(f, "index i/o error: {e}"),
            GdimError::Corrupt(msg) => write!(f, "corrupt index data: {msg}"),
            GdimError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "index format version {found} not supported (newest readable: {supported})"
                )
            }
            GdimError::ShardOutOfRange { id, shards } => {
                write!(f, "shard id {id} out of range for index of {shards} shards")
            }
            GdimError::StaleRebuild { missed } => {
                write!(
                    f,
                    "rebuild snapshot is stale: {missed} mutation(s) landed after it was spawned"
                )
            }
            GdimError::TornLog {
                trusted,
                total,
                detail,
            } => {
                write!(
                    f,
                    "write-ahead log is torn ({trusted}/{total} bytes trusted): {detail}"
                )
            }
            GdimError::CorruptCheckpoint { generation, detail } => {
                write!(f, "checkpoint generation {generation} is corrupt: {detail}")
            }
            GdimError::DurablePoisoned { detail } => {
                write!(
                    f,
                    "durable index no longer accepts mutations (reopen to recover): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for GdimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GdimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GdimError {
    fn from(e: io::Error) -> Self {
        GdimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = GdimError::GraphOutOfRange { id: 9, len: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let e = GdimError::UnsupportedVersion {
            found: 7,
            supported: 1,
        };
        assert!(e.to_string().contains('7'));
        let e = GdimError::WeightsMismatch {
            expected: 10,
            got: 4,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_codes_are_pinned() {
        // The full code table, pinned so the wire contract can never
        // silently change: adding a variant must extend this test, and
        // respelling a code must fail it.
        let io = GdimError::Io(io::Error::other("x"));
        let table: [(GdimError, &str, bool); 11] = [
            (
                GdimError::GraphOutOfRange { id: 0, len: 0 },
                "graph_out_of_range",
                true,
            ),
            (
                GdimError::DimensionOutOfRange {
                    id: 0,
                    num_features: 0,
                },
                "dimension_out_of_range",
                true,
            ),
            (
                GdimError::WeightsMismatch {
                    expected: 1,
                    got: 2,
                },
                "weights_mismatch",
                true,
            ),
            (io, "io", false),
            (GdimError::Corrupt(String::new()), "corrupt", false),
            (
                GdimError::UnsupportedVersion {
                    found: 9,
                    supported: 2,
                },
                "unsupported_version",
                false,
            ),
            (
                GdimError::ShardOutOfRange { id: 3, shards: 2 },
                "shard_out_of_range",
                true,
            ),
            (GdimError::StaleRebuild { missed: 1 }, "stale_rebuild", true),
            (
                GdimError::TornLog {
                    trusted: 8,
                    total: 20,
                    detail: String::new(),
                },
                "torn_log",
                false,
            ),
            (
                GdimError::CorruptCheckpoint {
                    generation: 3,
                    detail: String::new(),
                },
                "corrupt_checkpoint",
                false,
            ),
            (
                GdimError::DurablePoisoned {
                    detail: String::new(),
                },
                "durable_poisoned",
                false,
            ),
        ];
        for (err, code, caller_fault) in table {
            assert_eq!(err.code(), code);
            assert_eq!(err.is_caller_fault(), caller_fault, "{code}");
            // Codes are identifier-shaped: lowercase snake_case.
            assert!(code.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e: GdimError = inner.into();
        assert!(matches!(e, GdimError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

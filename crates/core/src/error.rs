//! The crate-wide error type. Every fallible entry point of the
//! serving surface — mapped-database construction, index accessors,
//! search requests, index persistence — returns [`GdimError`] instead
//! of panicking, so a long-running server can reject one bad request
//! (or one corrupt index file) and keep serving the rest.

use std::fmt;
use std::io;

/// Errors surfaced by the query and persistence paths of `gdim-core`.
#[derive(Debug)]
#[non_exhaustive]
pub enum GdimError {
    /// A graph id addressed a graph outside the database.
    GraphOutOfRange {
        /// The requested graph id.
        id: usize,
        /// Number of graphs in the database.
        len: usize,
    },
    /// A selected dimension id addressed a feature outside the space.
    DimensionOutOfRange {
        /// The offending feature id.
        id: u32,
        /// Number of features in the space.
        num_features: usize,
    },
    /// A weight vector did not cover the feature space it was paired
    /// with (weighted mappings need one weight per mined feature).
    WeightsMismatch {
        /// Expected length (`FeatureSpace::num_features`).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Underlying I/O failure while saving or loading an index.
    Io(io::Error),
    /// A persisted index file failed structural validation.
    Corrupt(String),
    /// A persisted index was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// A shard id addressed a shard outside a sharded index (the
    /// sharded layer lives in `gdim-shard`; the variant lives here so
    /// the whole serving surface shares one error type).
    ShardOutOfRange {
        /// The requested shard id.
        id: usize,
        /// Number of shards in the index.
        shards: usize,
    },
    /// A background rebuild snapshot no longer matches the live index:
    /// inserts or removes landed after the rebuild was spawned, so
    /// installing it would silently drop them. Spawn a fresh rebuild
    /// instead.
    StaleRebuild {
        /// Mutations (inserts + removes) applied since the snapshot.
        missed: u64,
    },
}

impl fmt::Display for GdimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdimError::GraphOutOfRange { id, len } => {
                write!(f, "graph id {id} out of range for database of {len} graphs")
            }
            GdimError::DimensionOutOfRange { id, num_features } => {
                write!(
                    f,
                    "dimension id {id} out of range for feature space of {num_features} features"
                )
            }
            GdimError::WeightsMismatch { expected, got } => {
                write!(f, "weight vector has {got} entries, expected {expected}")
            }
            GdimError::Io(e) => write!(f, "index i/o error: {e}"),
            GdimError::Corrupt(msg) => write!(f, "corrupt index data: {msg}"),
            GdimError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "index format version {found} not supported (newest readable: {supported})"
                )
            }
            GdimError::ShardOutOfRange { id, shards } => {
                write!(f, "shard id {id} out of range for index of {shards} shards")
            }
            GdimError::StaleRebuild { missed } => {
                write!(
                    f,
                    "rebuild snapshot is stale: {missed} mutation(s) landed after it was spawned"
                )
            }
        }
    }
}

impl std::error::Error for GdimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GdimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GdimError {
    fn from(e: io::Error) -> Self {
        GdimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = GdimError::GraphOutOfRange { id: 9, len: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let e = GdimError::UnsupportedVersion {
            found: 7,
            supported: 1,
        };
        assert!(e.to_string().contains('7'));
        let e = GdimError::WeightsMismatch {
            expected: 10,
            got: 4,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "nope");
        let e: GdimError = inner.into();
        assert!(matches!(e, GdimError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! **DSPM** — the paper's core contribution (§5.1, Algorithms 1–4): an
//! iterative majorization algorithm (SMACOF with restrictions, after
//! De Leeuw & Heiser) that fits a weight `c_r` to every frequent
//! subgraph feature so that weighted Euclidean distances between the
//! graphs' feature vectors approximate the graph dissimilarities, then
//! keeps the `p` features with the largest weights as the dimensions.
//!
//! One iteration (Algorithm 1, lines 9–14):
//!
//! 1. `Updatexbar` (Algorithm 3): Guttman transform
//!    `x̄_ir = (1/n) Σ_{k ∈ IF_r} b_ik z_kr` with the B-matrix of Eq. 8,
//!    restricted to the inverted list `IF_r` since `z_kr = 0` elsewhere.
//! 2. `Updatec` (Algorithm 2 / Eq. 9, simplified by Theorem 5.1):
//!    `c_r = Σ_i x̄_ir (n·y_ir − |sup(f_r)|) / (|sup(f_r)|(n − |sup(f_r)|))`.
//! 3. `z = y ∘ c`, `Computeobj` (Algorithm 4): stress
//!    `E = Σ_{i,j} (d(z_i, z_j) − δ_ij)²` via the symmetric difference
//!    of `IG` lists.
//!
//! The default path additionally fuses steps 1–2 analytically: because
//! the B-matrix has zero row sums, the update collapses to
//! `c_r ← c_r · S_r / (s_r (n − s_r))` where `S_r = Σ_{i,k ∈ IF_r} b_ik`
//! — an exact algebraic identity, not an approximation (verified against
//! the literal Algorithms 2–3 in tests and kept as
//! [`dspm_reference`] for the ablation bench).

use gdim_exec::ExecConfig;

use crate::delta::DeltaMatrix;
use crate::featurespace::FeatureSpace;

/// Configuration for [`dspm`].
#[derive(Debug, Clone)]
pub struct DspmConfig {
    /// Number of dimensions `p` to select.
    pub p: usize,
    /// Convergence threshold ε, **relative to the initial objective**:
    /// iteration stops when `(E_{k−1} − E_k) ≤ epsilon · E_0` (the paper
    /// leaves the absolute ε unspecified; a relative threshold is
    /// scale-free across database sizes).
    pub epsilon: f64,
    /// Maximum number of majorization iterations.
    pub max_iters: usize,
    /// Parallelism budget for the distance/weight update fan-outs.
    pub exec: ExecConfig,
}

impl DspmConfig {
    /// Defaults: ε = 1e-6 (relative), 100 iterations. The objective
    /// drops fast in the first iterations, but weight *differentiation*
    /// between near-duplicate features — what drives the low feature
    /// correlation of Fig. 2 — continues long after, so the default
    /// leans toward running longer.
    pub fn new(p: usize) -> Self {
        DspmConfig {
            p,
            epsilon: 1e-6,
            max_iters: 100,
            exec: ExecConfig::default(),
        }
    }
}

/// Output of [`dspm`].
#[derive(Debug, Clone)]
pub struct DspmResult {
    /// Final weight per feature (length `m`), non-negative weights
    /// carry selection strength; unused features are 0.
    pub weights: Vec<f64>,
    /// Ids of the `min(p, m)` features with the largest weights, in
    /// decreasing weight order (ties broken by id).
    pub selected: Vec<u32>,
    /// Objective value after initialization and after each iteration.
    pub objective_trace: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs DSPM and selects the top-`p` features. See the module docs.
pub fn dspm(space: &FeatureSpace, delta: &DeltaMatrix, cfg: &DspmConfig) -> DspmResult {
    run(space, delta, cfg, false)
}

/// The literal Algorithms 2–3 (materialized `x̄`, un-fused updates).
/// Numerically identical to [`dspm`]; kept for verification and as the
/// baseline of the fused-update ablation bench.
pub fn dspm_reference(space: &FeatureSpace, delta: &DeltaMatrix, cfg: &DspmConfig) -> DspmResult {
    run(space, delta, cfg, true)
}

fn run(space: &FeatureSpace, delta: &DeltaMatrix, cfg: &DspmConfig, literal: bool) -> DspmResult {
    let n = space.num_graphs();
    let m = space.num_features();
    assert_eq!(delta.n(), n, "δ matrix size must match the database");
    if m == 0 || n < 2 {
        return DspmResult {
            weights: vec![0.0; m],
            selected: (0..m.min(cfg.p) as u32).collect(),
            objective_trace: vec![0.0],
            iterations: 0,
        };
    }

    let exec = &cfg.exec;
    // Line 3: c_r = 1/√m.
    let mut c: Vec<f64> = vec![1.0 / (m as f64).sqrt(); m];
    let mut c_sq: Vec<f64> = c.iter().map(|x| x * x).collect();

    // Line 8: initial distances and objective.
    let mut dist = compute_distances(space, &c_sq, exec);
    let e0 = objective_from(&dist, delta);
    let mut trace = vec![e0];
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        // B-matrix (Eq. 8) from the distances of the previous Computeobj.
        let b = b_matrix(&dist, delta);

        let c_new = if literal {
            update_c_literal(space, &b, &c)
        } else {
            update_c_fused(space, &b, &c, exec)
        };
        c = c_new;
        for (sq, &x) in c_sq.iter_mut().zip(&c) {
            *sq = x * x;
        }

        // Line 12 + 14: z = y ∘ c, recompute distances and objective.
        dist = compute_distances(space, &c_sq, exec);
        let e = objective_from(&dist, delta);
        let prev = *trace.last().expect("trace non-empty");
        trace.push(e);
        iterations += 1;
        if prev - e <= cfg.epsilon * e0.max(f64::MIN_POSITIVE) {
            break;
        }
    }

    // Line 15: p features with the largest weights.
    let selected = select_top(&c, cfg.p);
    DspmResult {
        weights: c,
        selected,
        objective_trace: trace,
        iterations,
    }
}

/// Ids of the `min(p, m)` largest weights, descending, ties by id.
pub(crate) fn select_top(weights: &[f64], p: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..weights.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .expect("weights are finite")
            .then(a.cmp(&b))
    });
    ids.truncate(p.min(weights.len()));
    ids
}

/// Pairwise weighted distances `d(z_i, z_j)` (condensed upper triangle):
/// `d² = Σ_{r ∈ IG_i Δ IG_j} c_r²` — Algorithm 4's inverted-list trick,
/// realized as a word-wise XOR walk over the bitset rows, one task per
/// triangle row on the shared exec runtime.
fn compute_distances(space: &FeatureSpace, c_sq: &[f64], exec: &ExecConfig) -> Vec<f64> {
    let n = space.num_graphs();
    if n < 2 {
        return Vec::new();
    }
    gdim_exec::fill_tasks(
        exec,
        n - 1,
        n * (n - 1) / 2,
        0.0,
        |i| i * (2 * n - i - 1) / 2,
        |i| {
            let row_i = space.row(i);
            (i + 1..n)
                .map(|j| row_i.weighted_sq_xor(space.row(j), c_sq).sqrt())
                .collect()
        },
    )
}

/// `E = Σ_{1≤i,j≤n} (d_ij − δ_ij)²` (Eq. 4; ordered pairs, so twice the
/// upper-triangle sum — the diagonal contributes zero).
fn objective_from(dist: &[f64], delta: &DeltaMatrix) -> f64 {
    2.0 * dist
        .iter()
        .zip(delta.condensed())
        .map(|(&d, &dl)| (d - dl) * (d - dl))
        .sum::<f64>()
}

/// Full B-matrix of Eq. 8 (row-major `n × n`).
fn b_matrix(dist: &[f64], delta: &DeltaMatrix) -> Vec<f64> {
    let n = delta.n();
    let mut b = vec![0.0f64; n * n];
    let mut idx = 0;
    for i in 0..n {
        for j in i + 1..n {
            let d = dist[idx];
            let v = if d != 0.0 { -delta.get(i, j) / d } else { 0.0 };
            b[i * n + j] = v;
            b[j * n + i] = v;
            idx += 1;
        }
    }
    for i in 0..n {
        let row_sum: f64 = b[i * n..(i + 1) * n].iter().sum();
        b[i * n + i] = -row_sum; // b_ii = −Σ_{j≠i} b_ij (diagonal was 0)
    }
    b
}

/// Fused Updatexbar + Updatec: `c_r ← c_r · S_r / (s_r (n − s_r))` with
/// `S_r = Σ_{i,k ∈ IF_r} b_ik` (see module docs for the derivation).
/// Features are fanned out in 64-wide chunks on the shared exec runtime.
fn update_c_fused(space: &FeatureSpace, b: &[f64], c: &[f64], exec: &ExecConfig) -> Vec<f64> {
    let n = space.num_graphs();
    let m = space.num_features();
    gdim_exec::map_chunks(exec, m, 64, |range| {
        range
            .map(|r| {
                let sup = space.if_list(r);
                let s_r = sup.len();
                if s_r == 0 || s_r == n {
                    return 0.0; // constant column: no distance signal
                }
                let mut sum = 0.0;
                for &i in sup {
                    let row = &b[i as usize * n..(i as usize + 1) * n];
                    for &k in sup {
                        sum += row[k as usize];
                    }
                }
                c[r] * sum / (s_r as f64 * (n - s_r) as f64)
            })
            .collect()
    })
}

/// Literal Algorithms 2–3: materialize `x̄` column by column, then apply
/// Eq. 9. Single-threaded on purpose (it is the measured baseline of the
/// optimization ablation).
fn update_c_literal(space: &FeatureSpace, b: &[f64], c: &[f64]) -> Vec<f64> {
    let n = space.num_graphs();
    let m = space.num_features();
    let mut out = vec![0.0f64; m];
    let mut xbar_col = vec![0.0f64; n];
    for r in 0..m {
        let sup = space.if_list(r);
        let s_r = sup.len();
        if s_r == 0 || s_r == n {
            out[r] = 0.0;
            continue;
        }
        // Algorithm 3 restricted to IF_r: x̄_ir = (1/n) Σ_{k ∈ IF_r} b_ik z_kr.
        for x in xbar_col.iter_mut() {
            *x = 0.0;
        }
        for &k in sup {
            let z_kr = c[r]; // y_kr = 1 for k ∈ IF_r
            for i in 0..n {
                xbar_col[i] += b[i * n + k as usize] * z_kr / n as f64;
            }
        }
        // Algorithm 2 / Eq. 9.
        let denom = s_r as f64 * (n - s_r) as f64;
        let mut acc = 0.0;
        let mut sup_iter = sup.iter().peekable();
        for (i, &x) in xbar_col.iter().enumerate() {
            let y_ir = if sup_iter.peek() == Some(&&(i as u32)) {
                sup_iter.next();
                1.0
            } else {
                0.0
            };
            acc += x * (n as f64 * y_ir - s_r as f64);
        }
        out[r] = acc / denom;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaConfig;
    use gdim_mining::{mine, MinerConfig, Support};

    fn setup(n_db: usize, seed: u64) -> (Vec<gdim_graph::Graph>, FeatureSpace, DeltaMatrix) {
        let db = gdim_datagen::chem_db(n_db, &gdim_datagen::ChemConfig::default(), seed);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.1)).with_max_edges(4),
        );
        let space = FeatureSpace::build(db.len(), feats);
        let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
        (db, space, delta)
    }

    #[test]
    fn objective_is_monotonically_non_increasing() {
        let (_, space, delta) = setup(30, 1);
        let cfg = DspmConfig {
            epsilon: 0.0,
            max_iters: 15,
            ..DspmConfig::new(20)
        };
        let res = dspm(&space, &delta, &cfg);
        for w in res.objective_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * w[0].abs().max(1.0),
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(res.iterations >= 1);
    }

    #[test]
    fn improves_over_uniform_weights() {
        let (_, space, delta) = setup(30, 2);
        let res = dspm(&space, &delta, &DspmConfig::new(20));
        let first = res.objective_trace[0];
        let last = *res.objective_trace.last().unwrap();
        assert!(last < first, "no improvement: {first} -> {last}");
    }

    #[test]
    fn fused_update_matches_literal_algorithms() {
        let (_, space, delta) = setup(25, 3);
        let cfg = DspmConfig {
            epsilon: 0.0,
            max_iters: 5,
            exec: ExecConfig::new(2),
            ..DspmConfig::new(10)
        };
        let fast = dspm(&space, &delta, &cfg);
        let slow = dspm_reference(&space, &delta, &cfg);
        assert_eq!(fast.iterations, slow.iterations);
        for (a, b) in fast.weights.iter().zip(&slow.weights) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(fast.selected, slow.selected);
        for (a, b) in fast.objective_trace.iter().zip(&slow.objective_trace) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    #[test]
    fn selects_requested_dimension_count() {
        let (_, space, delta) = setup(25, 4);
        for p in [1, 5, 17] {
            let res = dspm(&space, &delta, &DspmConfig::new(p));
            assert_eq!(res.selected.len(), p.min(space.num_features()));
            // Selected ids are distinct.
            let mut ids = res.selected.clone();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), res.selected.len());
        }
        // p larger than m caps at m.
        let res = dspm(&space, &delta, &DspmConfig::new(10_000));
        assert_eq!(res.selected.len(), space.num_features());
    }

    #[test]
    fn selected_weights_dominate_unselected() {
        let (_, space, delta) = setup(30, 5);
        let p = 8;
        let res = dspm(&space, &delta, &DspmConfig::new(p));
        let min_selected = res
            .selected
            .iter()
            .map(|&r| res.weights[r as usize])
            .fold(f64::INFINITY, f64::min);
        for r in 0..space.num_features() as u32 {
            if !res.selected.contains(&r) {
                assert!(res.weights[r as usize] <= min_selected + 1e-12);
            }
        }
    }

    #[test]
    fn constant_features_get_zero_weight() {
        // A feature supported by every graph carries no distance signal.
        let (_, space, delta) = setup(20, 6);
        let res = dspm(&space, &delta, &DspmConfig::new(5));
        for r in 0..space.num_features() {
            let s = space.support_count(r);
            if s == space.num_graphs() {
                assert_eq!(res.weights[r], 0.0, "feature {r} has full support");
            }
        }
    }

    #[test]
    fn empty_feature_set_is_handled() {
        let db = gdim_datagen::chem_db(5, &gdim_datagen::ChemConfig::default(), 7);
        let space = FeatureSpace::build(db.len(), Vec::new());
        let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
        let res = dspm(&space, &delta, &DspmConfig::new(10));
        assert!(res.selected.is_empty());
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn deterministic() {
        let (_, space, delta) = setup(20, 8);
        let a = dspm(&space, &delta, &DspmConfig::new(10));
        let b = dspm(&space, &delta, &DspmConfig::new(10));
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.objective_trace, b.objective_trace);
    }
}

//! Top-k graph similarity queries (§2, §6): the **exact** ranker
//! (MCS-based dissimilarity against every database graph — the paper's
//! slow baseline) and the **mapped** ranker (map the query with VF2,
//! sequentially scan the database vectors — the paper's fast path; "we
//! sequentially scan all vectors in the mapped multidimensional space",
//! §6).
//!
//! The mapped path is served by two optimized legs:
//!
//! * **matching** — [`MappedDatabase::map_query`] prunes VF2 calls
//!   with a precomputed feature [`ContainmentDag`] plus a free
//!   invariant prescreen (bit-identical to the brute-force loop,
//!   which survives as [`MappedDatabase::map_query_unpruned`]);
//! * **scanning** — the flat [`VectorStore`] kernel behind
//!   [`MappedDatabase::topk`], with bounded top-k
//!   selection and early abandon. The naive full-sort
//!   [`MappedDatabase::ranking`] / [`MappedDatabase::ranking_with`]
//!   remain as the reference implementations the equivalence tests
//!   (and benches) compare the kernel against.

use gdim_exec::ExecConfig;
use gdim_graph::vf2::is_subgraph_iso;
use gdim_graph::{delta, Dissimilarity, Graph, McsOptions};
use gdim_mining::Feature;

use crate::bitset::{weighted_sq_xor_words, Bitset};
use crate::error::GdimError;
use crate::featurespace::{ContainmentDag, FeatureSpace, MatchStats};
use crate::scan::{ScanStats, Tombstones, VectorStore};

/// How database graphs and queries are embedded over the selected
/// features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum MappingKind {
    /// The paper's φ (§4): binary vectors with normalized Euclidean
    /// distance `d = √(|y_q ⊕ y_g| / p)`.
    #[default]
    Binary,
    /// Ablation variant: distances weighted by the (normalized) DSPM
    /// weights of the selected features instead of `1/p`.
    Weighted,
}

/// How to weight the selected dimensions when building a
/// [`MappedDatabase`] — the argument of [`MappedDatabase::new`], which
/// replaced the former panicking `build` / `build_weighted` pair.
#[derive(Debug, Clone, Copy, Default)]
pub enum Mapping<'a> {
    /// The paper's binary φ: uniform per-dimension weight `1/p`.
    #[default]
    Binary,
    /// The weighted ablation: per-dimension weights proportional to the
    /// squared DSPM weight of each selected feature, normalized to sum
    /// to 1. The slice must hold one weight per feature of the space.
    Weighted(&'a [f64]),
}

/// Normalized squared per-dimension weights for the weighted mapping:
/// `w_sq[col] ∝ weights[selected[col]]²`, summing to 1 (uniform `1/p`
/// when every weight is zero).
pub(crate) fn weighted_w_sq(selected: &[u32], weights: &[f64]) -> Vec<f64> {
    let p = selected.len();
    let raw: Vec<f64> = selected
        .iter()
        .map(|&r| {
            let x = weights[r as usize];
            x * x
        })
        .collect();
    let total: f64 = raw.iter().sum();
    if total > 0.0 {
        raw.iter().map(|x| x / total).collect()
    } else {
        vec![1.0 / p.max(1) as f64; p]
    }
}

/// The mapped multidimensional database `DM`: one vector per database
/// graph over the `p` selected feature dimensions, stored as a flat
/// row-major word matrix ([`VectorStore`]) so the sequential scan is
/// one linear memory walk.
#[derive(Debug, Clone)]
pub struct MappedDatabase {
    features: Vec<Feature>,
    store: VectorStore,
    /// Squared per-dimension weight; uniform `1/p` for [`MappingKind::Binary`].
    w_sq: Vec<f64>,
    kind: MappingKind,
    /// Containment partial order over `features`, pruning query-time
    /// VF2 calls. Built lazily on the first mapped query (derived and
    /// deterministic, so laziness is unobservable in answers) — a
    /// database constructed only to compare vectors never pays the
    /// O(p²) pairwise containment prescreen.
    dag: std::sync::OnceLock<ContainmentDag>,
}

impl MappedDatabase {
    /// Builds the mapped database over the selected feature dimensions.
    ///
    /// Replaces the former `build` / `build_weighted` pair (which
    /// asserted on a wrong [`MappingKind`]): the [`Mapping`] argument
    /// selects the weighting, and invalid inputs surface as
    /// [`GdimError`] instead of panicking — out-of-range dimension ids
    /// as [`GdimError::DimensionOutOfRange`], a weight slice that does
    /// not cover the space as [`GdimError::WeightsMismatch`].
    pub fn new(
        space: &FeatureSpace,
        selected: &[u32],
        mapping: Mapping<'_>,
    ) -> Result<Self, GdimError> {
        let m = space.num_features();
        if let Some(&bad) = selected.iter().find(|&&r| r as usize >= m) {
            return Err(GdimError::DimensionOutOfRange {
                id: bad,
                num_features: m,
            });
        }
        if let Mapping::Weighted(w) = mapping {
            if w.len() != m {
                return Err(GdimError::WeightsMismatch {
                    expected: m,
                    got: w.len(),
                });
            }
        }
        let p = selected.len();
        let features: Vec<Feature> = selected
            .iter()
            .map(|&r| space.features()[r as usize].clone())
            .collect();
        let mut store = VectorStore::zeros(space.num_graphs(), p);
        for (col, &r) in selected.iter().enumerate() {
            for &gid in space.if_list(r as usize) {
                store.set(gid as usize, col);
            }
        }
        let (w_sq, kind) = match mapping {
            Mapping::Binary => (vec![1.0 / p.max(1) as f64; p], MappingKind::Binary),
            Mapping::Weighted(w) => (weighted_w_sq(selected, w), MappingKind::Weighted),
        };
        Ok(MappedDatabase {
            features,
            store,
            w_sq,
            kind,
            dag: std::sync::OnceLock::new(),
        })
    }

    /// Number of dimensions `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.features.len()
    }

    /// Number of database vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the database holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The mapping kind in use.
    #[inline]
    pub fn kind(&self) -> MappingKind {
        self.kind
    }

    /// The selected feature dimensions.
    #[inline]
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// The flat vector storage backing the scan.
    #[inline]
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The feature containment DAG pruning query mapping, built on
    /// first use.
    pub fn containment_dag(&self) -> &ContainmentDag {
        self.dag
            .get_or_init(|| ContainmentDag::build(&self.features))
    }

    /// Vector of database graph `i`, materialized from its store row.
    #[inline]
    pub fn vector(&self, i: usize) -> Bitset {
        self.store.vector(i)
    }

    /// Appends one already-mapped vector (over this database's `p`
    /// selected dimensions) — the mapped-database half of an online
    /// insert. The per-feature support lists cloned into this value at
    /// construction are **not** extended (the authoritative supports
    /// live in the [`FeatureSpace`], which
    /// [`GraphIndex::insert`](crate::index::GraphIndex::insert) does
    /// update); the containment DAG derived from them depends only on
    /// the feature graphs, so query pruning is unaffected.
    ///
    /// # Panics
    /// If `row` does not cover exactly `p` dimensions.
    pub fn push_row(&mut self, row: &Bitset) {
        self.store.push_row(row);
    }

    /// Maps an (unseen) query onto the selected dimensions via VF2 —
    /// the "feature matching time" component of the paper's query
    /// cost — skipping calls the [`ContainmentDag`] and the invariant
    /// prescreen prove unnecessary. Bit-identical to
    /// [`MappedDatabase::map_query_unpruned`].
    pub fn map_query(&self, q: &Graph) -> Bitset {
        self.map_query_with_stats(q).0
    }

    /// [`MappedDatabase::map_query`] plus the [`MatchStats`] recording
    /// how many VF2 calls ran and how many were pruned.
    pub fn map_query_with_stats(&self, q: &Graph) -> (Bitset, MatchStats) {
        self.containment_dag().map_query(&self.features, q)
    }

    /// The unpruned reference mapping: one VF2 test per selected
    /// feature. Kept for the equivalence tests and the pruning
    /// benches; serving paths use [`MappedDatabase::map_query`].
    pub fn map_query_unpruned(&self, q: &Graph) -> Bitset {
        let mut bits = Bitset::zeros(self.p());
        for (col, f) in self.features.iter().enumerate() {
            if is_subgraph_iso(&f.graph, q) {
                bits.set(col);
            }
        }
        bits
    }

    /// Maps a batch of queries, fanning the per-query VF2 feature
    /// matching out on the shared exec runtime. Output order matches
    /// `queries`, identically for every thread budget.
    pub fn map_queries(&self, queries: &[Graph], exec: &ExecConfig) -> Vec<Bitset> {
        gdim_exec::map_tasks(exec, queries.len(), |i| self.map_query(&queries[i]))
    }

    /// Distance between two vectors in the mapped space: `√(h/p)` over
    /// the integer XOR popcount for the binary mapping, the weighted
    /// accumulation otherwise.
    #[inline]
    pub fn distance(&self, a: &Bitset, b: &Bitset) -> f64 {
        match self.kind {
            MappingKind::Binary => (a.xor_count(b) as f64 / self.p().max(1) as f64).sqrt(),
            MappingKind::Weighted => a.weighted_sq_xor(b, &self.w_sq).sqrt(),
        }
    }

    /// Distance from a query vector to database graph `i`.
    #[inline]
    pub fn distance_to(&self, qvec: &Bitset, i: usize) -> f64 {
        match self.kind {
            MappingKind::Binary => {
                let h: u32 = qvec
                    .words()
                    .iter()
                    .zip(self.store.row(i))
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                (h as f64 / self.p().max(1) as f64).sqrt()
            }
            MappingKind::Weighted => {
                weighted_sq_xor_words(qvec.words(), self.store.row(i), &self.w_sq).sqrt()
            }
        }
    }

    /// Top-k scan: the `k` database graphs closest to `qvec`, as
    /// `(graph id, distance)` sorted ascending. Tie-breaking is
    /// deterministic — stable order by `(distance, id)` — so batch and
    /// single-query paths agree for every thread budget. Served by the
    /// bounded scan kernel ([`MappedDatabase::scan_topk`]); the former
    /// full-sort materialization survives as
    /// [`MappedDatabase::ranking`] for reference.
    pub fn topk(&self, qvec: &Bitset, k: usize) -> Vec<(u32, f64)> {
        self.scan_topk(qvec, k).0
    }

    /// The bounded top-k scan under the database's own mapping, with
    /// the per-scan work counters.
    pub fn scan_topk(&self, qvec: &Bitset, k: usize) -> (Vec<(u32, f64)>, ScanStats) {
        self.scan_topk_masked(qvec, k, None)
    }

    /// [`MappedDatabase::scan_topk`] with an optional [`Tombstones`]
    /// mask: dead rows are skipped by the kernel and never appear in
    /// the hits (the dynamic-index serving path; `None` or a mask with
    /// no dead rows costs nothing — see
    /// [`VectorStore::topk_binary_masked`]).
    pub fn scan_topk_masked(
        &self,
        qvec: &Bitset,
        k: usize,
        dead: Option<&Tombstones>,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        match self.kind {
            MappingKind::Binary => self.store.topk_binary_masked(qvec.words(), k, dead),
            MappingKind::Weighted => {
                self.store
                    .topk_weighted_masked(qvec.words(), k, &self.w_sq, dead)
            }
        }
    }

    /// The bounded top-k scan under caller-supplied squared
    /// per-dimension weights (`w_sq.len() ≥ p`) — the hook
    /// [`GraphIndex`](crate::index::GraphIndex) uses to serve the
    /// weighted mapped distance from the same binary vectors.
    pub fn scan_topk_with(
        &self,
        qvec: &Bitset,
        k: usize,
        w_sq: &[f64],
    ) -> (Vec<(u32, f64)>, ScanStats) {
        self.store.topk_weighted(qvec.words(), k, w_sq)
    }

    /// [`MappedDatabase::scan_topk_with`] with an optional
    /// [`Tombstones`] mask (same contract as
    /// [`MappedDatabase::scan_topk_masked`]).
    pub fn scan_topk_with_masked(
        &self,
        qvec: &Bitset,
        k: usize,
        w_sq: &[f64],
        dead: Option<&Tombstones>,
    ) -> (Vec<(u32, f64)>, ScanStats) {
        self.store.topk_weighted_masked(qvec.words(), k, w_sq, dead)
    }

    /// The **fused** batch form of [`MappedDatabase::scan_topk_masked`]:
    /// all query vectors answered in one pass over the store (see
    /// [`VectorStore::topk_binary_fused`]), one `(hits, stats)` pair
    /// per query, bit-identical to per-query scans. `exec` bounds the
    /// row-range fan-out.
    pub fn scan_topk_fused_masked(
        &self,
        qvecs: &[&Bitset],
        k: usize,
        dead: Option<&Tombstones>,
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        let words: Vec<&[u64]> = qvecs.iter().map(|q| q.words()).collect();
        match self.kind {
            MappingKind::Binary => self.store.topk_binary_fused_masked(&words, k, dead, exec),
            MappingKind::Weighted => self
                .store
                .topk_weighted_fused_masked(&words, k, &self.w_sq, dead, exec),
        }
    }

    /// The fused batch form of [`MappedDatabase::scan_topk_with_masked`]:
    /// caller-supplied squared weights, every query answered in one
    /// pass over the store.
    pub fn scan_topk_fused_with_masked(
        &self,
        qvecs: &[&Bitset],
        k: usize,
        w_sq: &[f64],
        dead: Option<&Tombstones>,
        exec: &ExecConfig,
    ) -> Vec<(Vec<(u32, f64)>, ScanStats)> {
        let words: Vec<&[u64]> = qvecs.iter().map(|q| q.words()).collect();
        self.store
            .topk_weighted_fused_masked(&words, k, w_sq, dead, exec)
    }

    /// Full ranking of the database for a query vector, ascending by
    /// `(distance, id)` — the naive full-sort **reference
    /// implementation** the scan kernel is tested against (selection
    /// and order must agree element-for-element).
    pub fn ranking(&self, qvec: &Bitset) -> Vec<(u32, f64)> {
        match self.kind {
            MappingKind::Binary => {
                let p = self.p().max(1) as f64;
                let mut all: Vec<(u32, f64)> = (0..self.len())
                    .map(|i| {
                        let h: u32 = qvec
                            .words()
                            .iter()
                            .zip(self.store.row(i))
                            .map(|(a, b)| (a ^ b).count_ones())
                            .sum();
                        (i as u32, h as f64)
                    })
                    .collect();
                sort_ranking(&mut all);
                for e in &mut all {
                    e.1 = (e.1 / p).sqrt();
                }
                all
            }
            MappingKind::Weighted => self.ranking_with(qvec, &self.w_sq),
        }
    }

    /// Full ranking under caller-supplied squared per-dimension weights
    /// (`w_sq.len() ≥ p`), ascending by `(distance, id)` — the naive
    /// reference for the weighted scan kernel. Sorts on the squared
    /// distances (the √ is monotone) and takes the root once per
    /// entry, exactly as the kernel does, so the two paths agree
    /// bit-for-bit.
    pub fn ranking_with(&self, qvec: &Bitset, w_sq: &[f64]) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = (0..self.len())
            .map(|i| {
                (
                    i as u32,
                    weighted_sq_xor_words(qvec.words(), self.store.row(i), w_sq),
                )
            })
            .collect();
        sort_ranking(&mut all);
        for e in &mut all {
            e.1 = e.1.sqrt();
        }
        all
    }
}

/// Sorts `(id, distance)` pairs ascending by `(distance, id)` with a
/// total order (no NaN panic on the query path).
pub(crate) fn sort_ranking(ranked: &mut [(u32, f64)]) {
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
}

/// Exact full ranking of `db` for query `q` under the graph
/// dissimilarity (one MCS search per database graph, fanned out in
/// 8-wide chunks on the shared exec runtime). Sorted ascending by
/// `(δ, id)`; byte-identical for every thread budget.
pub fn exact_ranking(
    db: &[Graph],
    q: &Graph,
    kind: Dissimilarity,
    mcs: &McsOptions,
    exec: &ExecConfig,
) -> Vec<(u32, f64)> {
    let ids: Vec<u32> = (0..db.len() as u32).collect();
    exact_ranking_among(db, &ids, q, kind, mcs, exec)
}

/// [`exact_ranking`] restricted to the graphs named by `ids` (which
/// keep their database ids in the result) — the one δ-ranking kernel;
/// the dynamic index ranks only its live rows through this, so
/// tombstoned graphs cost no MCS calls.
pub fn exact_ranking_among(
    db: &[Graph],
    ids: &[u32],
    q: &Graph,
    kind: Dissimilarity,
    mcs: &McsOptions,
    exec: &ExecConfig,
) -> Vec<(u32, f64)> {
    let vals = gdim_exec::map_chunks(exec, ids.len(), 8, |range| {
        range
            .map(|x| delta(kind, q, &db[ids[x] as usize], mcs))
            .collect()
    });
    let mut ranked: Vec<(u32, f64)> = ids.iter().copied().zip(vals).collect();
    sort_ranking(&mut ranked);
    ranked
}

/// Exact top-k (§2's query workload): the first `k` entries of
/// [`exact_ranking`].
pub fn exact_topk(
    db: &[Graph],
    q: &Graph,
    k: usize,
    kind: Dissimilarity,
    mcs: &McsOptions,
    exec: &ExecConfig,
) -> Vec<(u32, f64)> {
    let mut ranked = exact_ranking(db, q, kind, mcs, exec);
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn setup() -> (Vec<Graph>, FeatureSpace) {
        let db = gdim_datagen::chem_db(25, &gdim_datagen::ChemConfig::default(), 17);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.15)).with_max_edges(3),
        );
        let space = FeatureSpace::build(db.len(), feats);
        (db, space)
    }

    #[test]
    fn binary_distance_matches_formula() {
        let (_, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(16) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let p = mapped.p() as f64;
        let a = mapped.vector(0);
        let b = mapped.vector(1);
        let want = ((a.xor_count(&b) as f64) / p).sqrt();
        assert!((mapped.distance(&a, &b) - want).abs() < 1e-12);
    }

    #[test]
    fn db_graph_query_maps_to_own_row() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(20) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        for i in [0usize, 5, 11] {
            let qvec = mapped.map_query(&db[i]);
            assert_eq!(qvec, mapped.vector(i), "graph {i}");
            // Therefore the graph itself ranks first (distance 0, min id tie).
            let top = mapped.topk(&qvec, 1);
            assert_eq!(top[0].1, 0.0);
        }
    }

    #[test]
    fn topk_is_sorted_and_sized() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(16) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let qvec = mapped.map_query(&db[3]);
        let top = mapped.topk(&qvec, 10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Oversized k returns everything.
        assert_eq!(mapped.topk(&qvec, 10_000).len(), db.len());
    }

    #[test]
    fn weighted_mapping_normalizes() {
        let (_, space) = setup();
        let m = space.num_features();
        let weights: Vec<f64> = (0..m).map(|r| (r % 5) as f64).collect();
        let selected: Vec<u32> = (0..m.min(12) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Weighted(&weights)).unwrap();
        assert_eq!(mapped.kind(), MappingKind::Weighted);
        let total: f64 = mapped.w_sq.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Max possible distance is 1.
        let zero = Bitset::zeros(mapped.p());
        let mut ones = Bitset::zeros(mapped.p());
        for i in 0..mapped.p() {
            ones.set(i);
        }
        assert!((mapped.distance(&zero, &ones) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_ranking_puts_self_first_and_is_parallel_consistent() {
        let (db, _) = setup();
        let mcs = McsOptions::default();
        let r1 = exact_ranking(
            &db,
            &db[4],
            Dissimilarity::AvgNorm,
            &mcs,
            &ExecConfig::serial(),
        );
        let r4 = exact_ranking(
            &db,
            &db[4],
            Dissimilarity::AvgNorm,
            &mcs,
            &ExecConfig::new(4),
        );
        assert_eq!(r1, r4);
        assert_eq!(r1[0].0, 4);
        assert_eq!(r1[0].1, 0.0);
        for w in r1.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn batch_query_mapping_matches_serial_for_any_thread_budget() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(16) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let serial: Vec<Bitset> = db.iter().map(|q| mapped.map_query(q)).collect();
        for threads in [1usize, 2, 8] {
            assert_eq!(
                mapped.map_queries(&db, &ExecConfig::new(threads)),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn constructor_rejects_invalid_inputs() {
        let (_, space) = setup();
        let m = space.num_features();
        let bad = [0u32, m as u32];
        match MappedDatabase::new(&space, &bad, Mapping::Binary) {
            Err(crate::error::GdimError::DimensionOutOfRange { id, num_features }) => {
                assert_eq!(id, m as u32);
                assert_eq!(num_features, m);
            }
            other => panic!("expected DimensionOutOfRange, got {other:?}"),
        }
        let short = vec![1.0; m.saturating_sub(1)];
        match MappedDatabase::new(&space, &[0], Mapping::Weighted(&short)) {
            Err(crate::error::GdimError::WeightsMismatch { expected, got }) => {
                assert_eq!(expected, m);
                assert_eq!(got, m - 1);
            }
            other => panic!("expected WeightsMismatch, got {other:?}"),
        }
    }

    #[test]
    fn ties_break_by_ascending_id() {
        // Two graphs with identical rows tie at every distance; the
        // smaller id must always come first.
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(16) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let ranked = mapped.ranking(&mapped.map_query(&db[3]));
        for w in ranked.windows(2) {
            assert!(
                w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "tie between {} and {} not broken by id",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn pruned_query_mapping_is_bit_identical_to_unpruned() {
        // The containment-DAG + invariant-prescreened mapping must set
        // exactly the bits of the brute-force per-feature VF2 loop —
        // for database graphs and unseen queries alike.
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features() as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let unseen = gdim_datagen::chem_db(5, &gdim_datagen::ChemConfig::default(), 321);
        let mut pruned_total = 0usize;
        for q in db.iter().take(5).chain(&unseen) {
            let (bits, stats) = mapped.map_query_with_stats(q);
            assert_eq!(bits, mapped.map_query_unpruned(q));
            assert_eq!(stats.vf2_calls + stats.vf2_pruned, mapped.p());
            pruned_total += stats.vf2_pruned;
        }
        assert!(pruned_total > 0, "chem features should contain each other");
    }

    #[test]
    fn bounded_topk_equals_truncated_reference_ranking() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(20) as u32).collect();
        for mapping in [
            Mapping::Binary,
            Mapping::Weighted(&vec![0.7; space.num_features()]),
        ] {
            let mapped = MappedDatabase::new(&space, &selected, mapping).unwrap();
            let qvec = mapped.map_query(&db[2]);
            let reference = mapped.ranking(&qvec);
            for k in [0usize, 1, 5, db.len(), db.len() + 5] {
                let kk = k.min(db.len());
                assert_eq!(mapped.topk(&qvec, k), &reference[..kk], "k = {k}");
            }
        }
    }

    #[test]
    fn scan_stats_account_for_every_vector() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(16) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let qvec = mapped.map_query(&db[0]);
        let (_, stats) = mapped.scan_topk(&qvec, 3);
        assert_eq!(stats.vectors_scanned + stats.early_abandoned, db.len());
        let (hits, stats) = mapped.scan_topk(&qvec, 0);
        assert!(hits.is_empty());
        assert_eq!(stats, crate::scan::ScanStats::default());
    }

    #[test]
    fn ranking_with_uniform_weights_matches_binary() {
        let (db, space) = setup();
        let selected: Vec<u32> = (0..space.num_features().min(16) as u32).collect();
        let mapped = MappedDatabase::new(&space, &selected, Mapping::Binary).unwrap();
        let qvec = mapped.map_query(&db[1]);
        let uniform = vec![1.0 / mapped.p() as f64; mapped.p()];
        assert_eq!(mapped.ranking(&qvec), mapped.ranking_with(&qvec, &uniform));
    }

    #[test]
    fn exact_ranking_among_all_ids_is_exact_ranking() {
        let (db, _) = setup();
        let mcs = McsOptions::default();
        let exec = ExecConfig::new(2);
        let all: Vec<u32> = (0..db.len() as u32).collect();
        assert_eq!(
            exact_ranking_among(&db, &all, &db[1], Dissimilarity::AvgNorm, &mcs, &exec),
            exact_ranking(&db, &db[1], Dissimilarity::AvgNorm, &mcs, &exec)
        );
        // A strict subset ranks only its members, keeping database ids.
        let some = [3u32, 7, 11, 19];
        let sub = exact_ranking_among(&db, &some, &db[7], Dissimilarity::AvgNorm, &mcs, &exec);
        assert_eq!(sub.len(), some.len());
        assert_eq!(sub[0], (7, 0.0));
        for (id, _) in &sub {
            assert!(some.contains(id));
        }
    }

    #[test]
    fn exact_topk_truncates() {
        let (db, _) = setup();
        let top = exact_topk(
            &db,
            &db[0],
            5,
            Dissimilarity::AvgNorm,
            &McsOptions::default(),
            &ExecConfig::new(2),
        );
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].0, 0);
    }
}

//! HNSW-style proximity-graph ANN over the mapped vector store — the
//! engine behind [`Ranker::Approx`](crate::search::Ranker::Approx),
//! the serving surface's one **deliberately inexact** path.
//!
//! The mapped scan is exact but O(n) per query; at millions of graphs
//! even the fused SIMD kernels blow a latency budget. A navigable
//! small-world graph over the same [`VectorStore`] rows answers a
//! top-k query in sub-linear time with *measured* (not guaranteed)
//! recall — the standard scale lever for vector search
//! (Prokhorenkova & Shekhovtsov; Wang et al., "A Revisit"; see
//! PAPERS.md).
//!
//! Design constraints, in order:
//!
//! * **The metric is the scan's metric.** Traversal keys are the
//!   integer XOR popcount (binary) or the word-blocked weighted
//!   squared distance — the same quantities the kernels rank on — and
//!   the distances returned to callers go through the *same* final
//!   formulas as [`MappedDatabase::distance_to`](crate::query::MappedDatabase::distance_to)
//!   (`√(h/p)` / `√Σw²`), so an `Approx` hit's distance is
//!   bit-identical to what the exact scan would report for that row.
//!   Approximation affects only *which* rows are found, never what
//!   their distances are.
//! * **Deterministic builds.** Layer assignment hashes `(seed, id)`
//!   through splitmix64 instead of drawing from an RNG stream, so the
//!   same store + params always yields byte-identical graphs — on any
//!   machine, any thread budget, any insertion history replay.
//! * **Deletions filter, never break navigation.** Tombstoned rows
//!   stay in the graph as *waypoints* (removing them would tear the
//!   small-world topology) but are barred from the result set; the
//!   beam keeps expanding until it has `ef` live answers or exhausts
//!   the frontier, so dead rows can never surface as hits.
//! * **Inserts are served exactly until folded in.** The graph covers
//!   the first [`AnnIndex::built_n`] rows of the store; rows appended
//!   after the build (online inserts) form a **pending tail** the
//!   caller scans exactly and merges with the beam's answers (see
//!   [`GraphIndex::approx_scan_premapped`](crate::index::GraphIndex::approx_scan_premapped)).
//!   An epoch rebuild replaces the index wholesale, which folds the
//!   tail into a fresh graph.
//!
//! The structure is the classic two-phase HNSW descent: greedy
//! best-first on the upper layers (beam width 1), then a bounded beam
//! of width `ef` on layer 0. Construction inserts rows in id order
//! with beam width [`AnnParams::ef_construction`], linking each new
//! node bidirectionally to up to `m` discovered neighbors chosen by
//! the **diversity heuristic** (keep a candidate only if it is closer
//! to the new node than to any neighbor already kept — this preserves
//! the long-range links that keep clustered stores navigable), and
//! re-selecting with the same heuristic when a list overflows its cap
//! (`m` on upper layers, `2·m` on layer 0).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gdim_kernels::hamming_row;

use crate::scan::{Tombstones, VectorStore};

/// Hard ceiling on layer levels — splitmix64 makes levels this high
/// astronomically unlikely; the clamp just bounds the descent loop.
const MAX_LEVEL: usize = 24;

/// Construction parameters of an [`AnnIndex`].
///
/// Marked `#[non_exhaustive]`: build values with
/// [`AnnParams::default`] plus the `with_*` setters so future knobs
/// stay additive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AnnParams {
    /// Neighbors linked per new node, and the list cap on upper
    /// layers (layer 0 caps at `2·m`). Clamped to ≥ 2.
    pub m: usize,
    /// Beam width while constructing (quality/cost of the build).
    /// Clamped to ≥ `m`.
    pub ef_construction: usize,
    /// Seed of the deterministic per-id layer assignment.
    pub seed: u64,
}

impl Default for AnnParams {
    fn default() -> Self {
        AnnParams {
            m: 16,
            ef_construction: 100,
            seed: 0x9D1A_77C4_5EED_0001,
        }
    }
}

impl AnnParams {
    /// Sets the per-node link count `m`.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Sets the construction beam width.
    pub fn with_ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef;
        self
    }

    /// Sets the layer-assignment seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The params with degenerate values clamped into the valid range
    /// (`m ≥ 2` so the level distribution is well-defined,
    /// `ef_construction ≥ m` so every insert can find `m` neighbors).
    fn normalized(self) -> Self {
        let m = self.m.max(2);
        AnnParams {
            m,
            ef_construction: self.ef_construction.max(m),
            seed: self.seed,
        }
    }
}

/// Work counters of one beam search — what
/// [`SearchStats::beam_visited`](crate::search::SearchStats::beam_visited)
/// and friends are stamped from.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct AnnScanStats {
    /// Distance evaluations the descent + beam performed (the ANN
    /// analogue of rows scanned — the work that replaced the O(n)
    /// pass).
    pub beam_visited: usize,
    /// Pending-tail rows (inserted after the graph build) scanned
    /// exactly.
    pub tail_scanned: usize,
    /// Tombstoned pending-tail rows skipped without evaluation.
    pub tail_tombstones: usize,
}

/// A beam/heap entry ordered ascending by `(distance key, id)` — the
/// same tie-break as the exact kernels' `(distance, id)` hit order.
#[derive(Clone, Copy, PartialEq)]
struct Key {
    d: f64,
    id: u32,
}

impl Eq for Key {}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d.total_cmp(&other.d).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// splitmix64 — the standard 64-bit finalizer; full-period, passes
/// BigCrush, and two instructions short of free. Used only for layer
/// assignment, never for distances.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A layered navigable proximity graph over the rows of a
/// [`VectorStore`] — see the module docs for the contract. Built by
/// [`AnnIndex::build`], queried through [`AnnIndex::query`] with a
/// caller-supplied distance key (so one graph serves both the binary
/// and the weighted metric), persisted as the optional v3 section of
/// the index format (see [`crate::persist`]).
#[derive(Debug, Clone)]
pub struct AnnIndex {
    params: AnnParams,
    /// Rows the graph covers: ids `0..built_n`. Store rows appended
    /// later are the caller's pending exact-scanned tail.
    built_n: usize,
    /// Top layer of each node.
    levels: Vec<u8>,
    /// `links[node][layer]` — neighbor ids, unordered.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry point of the descent (a node on the top layer).
    entry: u32,
    /// Highest populated layer.
    max_level: u8,
}

impl AnnIndex {
    /// Builds the proximity graph over **all** current rows of the
    /// store (tombstoned rows included — they keep the graph navigable
    /// and are filtered at query time). Deterministic: same store and
    /// params ⇒ byte-identical graph.
    pub fn build(store: &VectorStore, params: AnnParams) -> AnnIndex {
        let params = params.normalized();
        let n = store.len();
        let mut ann = AnnIndex {
            params,
            built_n: 0,
            levels: Vec::with_capacity(n),
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
        };
        for id in 0..n {
            ann.insert_node(id as u32, store);
        }
        ann
    }

    /// Construction parameters the graph was built with.
    pub fn params(&self) -> AnnParams {
        self.params
    }

    /// Rows covered by the graph — store rows `built_n..` were
    /// appended after the build and must be scanned exactly.
    pub fn built_n(&self) -> usize {
        self.built_n
    }

    /// The descent entry node.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The highest populated layer.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Per-node top layers (`built_n` entries).
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Per-node, per-layer neighbor lists (`links()[node][layer]`).
    pub fn links(&self) -> &[Vec<Vec<u32>>] {
        &self.links
    }

    /// Reassembles a graph from persisted parts, validating every
    /// structural invariant a hostile file could violate (the decode
    /// seam of [`crate::persist`]). Returns a human-readable reason on
    /// the first violation.
    pub fn from_parts(
        params: AnnParams,
        entry: u32,
        levels: Vec<u8>,
        links: Vec<Vec<Vec<u32>>>,
    ) -> Result<AnnIndex, String> {
        let params = params.normalized();
        let built_n = levels.len();
        if links.len() != built_n {
            return Err(format!(
                "ann links cover {} nodes, levels cover {built_n}",
                links.len()
            ));
        }
        if built_n == 0 {
            return Ok(AnnIndex {
                params,
                built_n,
                levels,
                links,
                entry: 0,
                max_level: 0,
            });
        }
        if entry as usize >= built_n {
            return Err(format!("ann entry {entry} out of {built_n} nodes"));
        }
        let mut max_level = 0u8;
        for (id, (&level, layers)) in levels.iter().zip(&links).enumerate() {
            if level as usize > MAX_LEVEL {
                return Err(format!("ann node {id} level {level} exceeds {MAX_LEVEL}"));
            }
            if layers.len() != level as usize + 1 {
                return Err(format!(
                    "ann node {id} has {} layers for level {level}",
                    layers.len()
                ));
            }
            max_level = max_level.max(level);
            for list in layers {
                if let Some(&bad) = list.iter().find(|&&nb| nb as usize >= built_n) {
                    return Err(format!("ann node {id} links to {bad} of {built_n} nodes"));
                }
            }
        }
        if levels[entry as usize] != max_level {
            return Err(format!(
                "ann entry {entry} is not on the top layer {max_level}"
            ));
        }
        Ok(AnnIndex {
            params,
            built_n,
            levels,
            links,
            entry,
            max_level,
        })
    }

    /// Deterministic layer of node `id`: splitmix64 of `(seed, id)`
    /// mapped to `(0, 1]`, then the geometric `⌊-ln(u) / ln(m)⌋`.
    fn level_for(&self, id: u32) -> u8 {
        let h = splitmix64(self.params.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits, +1 so u ∈ (0, 1] and ln(u) is finite.
        let u = ((h >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let ml = 1.0 / (self.params.m as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL) as u8
    }

    /// Neighbor cap of a list on `layer`.
    fn cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Neighbors of `id` on `layer` (empty above the node's level).
    fn neighbors(&self, id: u32, layer: usize) -> &[u32] {
        self.links[id as usize]
            .get(layer)
            .map_or(&[][..], |v| v.as_slice())
    }

    /// One construction insert: assign a layer, descend greedily to
    /// it, then beam + bidirectionally link on every layer down to 0.
    fn insert_node(&mut self, id: u32, store: &VectorStore) {
        let level = self.level_for(id) as usize;
        self.levels.push(level as u8);
        self.links.push(vec![Vec::new(); level + 1]);
        let idx = id as usize;
        debug_assert_eq!(self.links.len() - 1, idx);
        if self.built_n == 0 {
            self.entry = id;
            self.max_level = level as u8;
            self.built_n = 1;
            return;
        }
        // Build-time keys: integer Hamming to the new row (exact in
        // f64 — popcounts are ≤ the bit width ≪ 2^53).
        let new_row = store.row(idx);
        let mut key = |i: u32| hamming_row(store.row(i as usize), new_row) as f64;
        let top = self.max_level as usize;
        let mut ep = Key {
            d: key(self.entry),
            id: self.entry,
        };
        for layer in ((level + 1)..=top).rev() {
            ep = self.greedy(&mut key, ep, layer);
        }
        let mut entries = vec![ep];
        for layer in (0..=level.min(top)).rev() {
            let found =
                self.search_layer(&mut key, &entries, layer, self.params.ef_construction, None);
            let chosen = self.select_diverse(&found, self.params.m, store);
            for &nb in &chosen {
                self.links[idx][layer].push(nb);
                self.links[nb as usize][layer].push(id);
                if self.links[nb as usize][layer].len() > self.cap(layer) {
                    self.trim(nb, layer, store);
                }
            }
            entries = found;
            if entries.is_empty() {
                // Unreachable in practice (the entry node always
                // seeds the beam), but keep the next layer seeded.
                entries = vec![ep];
            }
        }
        if level > top {
            self.entry = id;
            self.max_level = level as u8;
        }
        self.built_n += 1;
    }

    /// The HNSW neighbor-selection heuristic: walk `candidates`
    /// ascending by `(key, id)` and keep one only if it is closer to
    /// the base point than to every neighbor already kept (ties keep).
    /// Nearest-only selection spends the whole cap on one direction —
    /// on clustered stores that leaves no inter-cluster links and the
    /// descent gets trapped in whichever basin it enters first; the
    /// diversity rule prunes same-direction redundancy so the list
    /// retains the long-range links that keep the graph navigable.
    /// Deterministic, so builds stay byte-identical.
    fn select_diverse(&self, candidates: &[Key], cap: usize, store: &VectorStore) -> Vec<u32> {
        let mut chosen: Vec<u32> = Vec::with_capacity(cap);
        for c in candidates {
            if chosen.len() == cap {
                break;
            }
            let dominated = chosen.iter().any(|&s| {
                (hamming_row(store.row(c.id as usize), store.row(s as usize)) as f64) < c.d
            });
            if !dominated {
                chosen.push(c.id);
            }
        }
        chosen
    }

    /// Trims an overflowing neighbor list back under the cap with the
    /// same diversity heuristic as insertion, keyed by `(Hamming, id)`
    /// to the owner.
    fn trim(&mut self, node: u32, layer: usize, store: &VectorStore) {
        let cap = self.cap(layer);
        let own_row = store.row(node as usize);
        let mut keyed: Vec<Key> = self.links[node as usize][layer]
            .iter()
            .map(|&nb| Key {
                d: hamming_row(store.row(nb as usize), own_row) as f64,
                id: nb,
            })
            .collect();
        keyed.sort_unstable();
        self.links[node as usize][layer] = self.select_diverse(&keyed, cap, store);
    }

    /// Greedy best-first descent on one upper layer (beam width 1):
    /// hop to the best-keyed neighbor until no neighbor improves.
    fn greedy<F: FnMut(u32) -> f64>(&self, key: &mut F, mut ep: Key, layer: usize) -> Key {
        loop {
            let mut improved = false;
            for &nb in self.neighbors(ep.id, layer) {
                let cand = Key { d: key(nb), id: nb };
                if cand < ep {
                    ep = cand;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Bounded beam search on one layer: expands the frontier in key
    /// order, keeping the best `ef` **admissible** nodes (all nodes
    /// during construction; live rows only when `dead` is given —
    /// tombstoned nodes still navigate, so the result bound stays ∞
    /// until `ef` live rows are found and the beam keeps digging past
    /// dead neighborhoods). Returns the kept nodes ascending by
    /// `(key, id)`.
    fn search_layer<F: FnMut(u32) -> f64>(
        &self,
        key: &mut F,
        entries: &[Key],
        layer: usize,
        ef: usize,
        dead: Option<&Tombstones>,
    ) -> Vec<Key> {
        let ef = ef.max(1);
        let alive = |id: u32| dead.is_none_or(|t| !t.is_dead(id as usize));
        let mut seen = vec![0u64; self.built_n.div_ceil(64).max(1)];
        let mark = |id: u32, seen: &mut Vec<u64>| {
            let (w, b) = (id as usize / 64, id as usize % 64);
            let was = seen[w] >> b & 1 == 1;
            seen[w] |= 1 << b;
            was
        };
        // Frontier min-heap and result max-heap (worst live kept on
        // top so overflow pops it).
        let mut frontier: BinaryHeap<std::cmp::Reverse<Key>> = BinaryHeap::new();
        let mut kept: BinaryHeap<Key> = BinaryHeap::new();
        for &e in entries {
            if mark(e.id, &mut seen) {
                continue;
            }
            frontier.push(std::cmp::Reverse(e));
            if alive(e.id) {
                kept.push(e);
                if kept.len() > ef {
                    kept.pop();
                }
            }
        }
        while let Some(std::cmp::Reverse(c)) = frontier.pop() {
            if kept.len() == ef {
                if let Some(&worst) = kept.peek() {
                    if c > worst {
                        break;
                    }
                }
            }
            for &nb in self.neighbors(c.id, layer) {
                if mark(nb, &mut seen) {
                    continue;
                }
                let cand = Key { d: key(nb), id: nb };
                let admit = kept.len() < ef || cand < *kept.peek().expect("kept is full");
                if admit {
                    frontier.push(std::cmp::Reverse(cand));
                    if alive(cand.id) {
                        kept.push(cand);
                        if kept.len() > ef {
                            kept.pop();
                        }
                    }
                }
            }
        }
        kept.into_sorted_vec()
    }

    /// Answers one query over the graph: greedy descent from the top
    /// layer, then an `ef`-wide beam on layer 0 filtered to live rows.
    /// `key` maps a row id to its distance key under the caller's
    /// metric (any strictly increasing transform of the true distance
    /// — the integer popcount for binary, the squared weighted
    /// distance for weighted); returns up to `ef` live rows ascending
    /// by `(key, id)` plus the number of key evaluations performed.
    pub fn query<F: FnMut(u32) -> f64>(
        &self,
        mut key: F,
        ef: usize,
        dead: Option<&Tombstones>,
    ) -> (Vec<(u32, f64)>, usize) {
        if self.built_n == 0 {
            return (Vec::new(), 0);
        }
        let mut evals = 0usize;
        let mut counted = |i: u32| {
            evals += 1;
            key(i)
        };
        let mut ep = Key {
            d: counted(self.entry),
            id: self.entry,
        };
        for layer in (1..=self.max_level as usize).rev() {
            ep = self.greedy(&mut counted, ep, layer);
        }
        let found = self.search_layer(&mut counted, &[ep], 0, ef, dead);
        (found.into_iter().map(|k| (k.id, k.d)).collect(), evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::Bitset;

    /// A store of `n` pseudo-random rows over `bits` bits.
    fn random_store(n: usize, bits: usize, seed: u64) -> VectorStore {
        let rows: Vec<Bitset> = (0..n)
            .map(|i| {
                let mut b = Bitset::zeros(bits);
                for bit in 0..bits {
                    if splitmix64(seed ^ (i as u64) << 20 ^ bit as u64) & 1 == 1 {
                        b.set(bit);
                    }
                }
                b
            })
            .collect();
        VectorStore::from_bitsets(&rows)
    }

    /// A store with genuine neighbor structure: `n` rows spread over
    /// 64 cluster centers, each row a center with ~8 bits flipped —
    /// the shape real mapped-vector workloads (zipf/chem) have, where
    /// a proximity graph earns its keep. (Uniform random bits are the
    /// adversarial no-structure case: all distances concentrate and
    /// *every* ANN method degrades toward a full scan.)
    fn clustered_store(n: usize, bits: usize, seed: u64) -> VectorStore {
        let centers = 64;
        let rows: Vec<Bitset> = (0..n)
            .map(|i| {
                let c = (i % centers) as u64;
                let mut b = Bitset::zeros(bits);
                for bit in 0..bits {
                    if splitmix64(seed ^ c << 32 ^ bit as u64) & 1 == 1 {
                        b.set(bit);
                    }
                }
                for flip in 0..8 {
                    let bit = splitmix64(seed ^ (i as u64) << 8 ^ flip) as usize % bits;
                    if b.get(bit) {
                        b.clear(bit);
                    } else {
                        b.set(bit);
                    }
                }
                b
            })
            .collect();
        VectorStore::from_bitsets(&rows)
    }

    fn exact_topk(store: &VectorStore, q: usize, k: usize) -> Vec<u32> {
        let mut all: Vec<(u32, u32)> = (0..store.len())
            .map(|i| (hamming_row(store.row(q), store.row(i)), i as u32))
            .collect();
        all.sort_unstable();
        all.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn build_is_deterministic_and_well_formed() {
        let store = random_store(300, 192, 7);
        let a = AnnIndex::build(&store, AnnParams::default());
        let b = AnnIndex::build(&store, AnnParams::default());
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.built_n, 300);
        // Caps hold everywhere; all ids in range; entry on top layer.
        for (id, layers) in a.links.iter().enumerate() {
            assert_eq!(layers.len(), a.levels[id] as usize + 1);
            for (layer, list) in layers.iter().enumerate() {
                assert!(list.len() <= a.cap(layer), "node {id} layer {layer}");
                assert!(list.iter().all(|&nb| (nb as usize) < 300));
                assert!(!list.contains(&(id as u32)), "self-link at {id}");
            }
        }
        assert_eq!(a.levels[a.entry as usize], a.max_level);
        // A different seed reshuffles the layers.
        let c = AnnIndex::build(&store, AnnParams::default().with_seed(99));
        assert_ne!(a.levels, c.levels);
    }

    #[test]
    fn beam_recall_is_high_on_a_random_store() {
        let store = clustered_store(2000, 128, 11);
        let ann = AnnIndex::build(&store, AnnParams::default());
        let mut hitrate = 0usize;
        let mut total_evals = 0usize;
        let queries = 25;
        let k = 10;
        for q in 0..queries {
            let truth = exact_topk(&store, q, k);
            let (got, evals) = ann.query(
                |i| hamming_row(store.row(q), store.row(i as usize)) as f64,
                64,
                None,
            );
            let got: Vec<u32> = got.into_iter().take(k).map(|(id, _)| id).collect();
            hitrate += truth.iter().filter(|id| got.contains(id)).count();
            total_evals += evals;
        }
        let recall = hitrate as f64 / (queries * k) as f64;
        assert!(recall >= 0.9, "recall@{k} = {recall}");
        // Sub-linearity: on average the beam touches well under half
        // the store (an exact scan touches all of it, every query).
        assert!(
            total_evals < queries * store.len() / 2,
            "avg {} evals of {} rows",
            total_evals / queries,
            store.len()
        );
    }

    #[test]
    fn filtered_beam_never_returns_dead_rows() {
        let store = random_store(200, 96, 3);
        let ann = AnnIndex::build(&store, AnnParams::default());
        let mut dead = Tombstones::all_live(200);
        for i in (0..200).step_by(3) {
            dead.mark_dead(i);
        }
        for q in 0..20 {
            let (got, _) = ann.query(
                |i| hamming_row(store.row(q), store.row(i as usize)) as f64,
                32,
                Some(&dead),
            );
            assert!(!got.is_empty());
            assert!(got.iter().all(|&(id, _)| !dead.is_dead(id as usize)));
        }
    }

    #[test]
    fn wide_beam_on_a_small_graph_is_exhaustive() {
        // n ≤ 2m+1 means layer-0 lists never trim, so the graph is
        // connected and an ef = n beam must enumerate every live row —
        // the property the verify ≡ refined serving test leans on.
        let store = random_store(33, 64, 5);
        let ann = AnnIndex::build(&store, AnnParams::default());
        let (got, _) = ann.query(
            |i| hamming_row(store.row(0), store.row(i as usize)) as f64,
            33,
            None,
        );
        assert_eq!(got.len(), 33);
        let ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
        assert_eq!(exact_topk(&store, 0, 33), ids);
    }

    #[test]
    fn empty_and_singleton_stores_are_well_formed() {
        let empty = VectorStore::zeros(0, 64);
        let ann = AnnIndex::build(&empty, AnnParams::default());
        assert_eq!(ann.built_n(), 0);
        let (got, evals) = ann.query(|_| 0.0, 8, None);
        assert!(got.is_empty());
        assert_eq!(evals, 0);
        let one = random_store(1, 64, 1);
        let ann = AnnIndex::build(&one, AnnParams::default());
        let (got, _) = ann.query(
            |i| hamming_row(one.row(0), one.row(i as usize)) as f64,
            4,
            None,
        );
        assert_eq!(got, vec![(0, 0.0)]);
    }

    #[test]
    fn from_parts_validates_structure() {
        let store = random_store(50, 64, 13);
        let ann = AnnIndex::build(&store, AnnParams::default());
        let rebuilt = AnnIndex::from_parts(
            ann.params(),
            ann.entry(),
            ann.levels().to_vec(),
            ann.links().to_vec(),
        )
        .expect("faithful parts validate");
        assert_eq!(rebuilt.links, ann.links);
        assert_eq!(rebuilt.max_level, ann.max_level);
        // Entry out of range.
        assert!(AnnIndex::from_parts(
            ann.params(),
            99,
            ann.levels().to_vec(),
            ann.links().to_vec()
        )
        .is_err());
        // Neighbor id out of range.
        let mut bad = ann.links().to_vec();
        bad[0][0].push(1000);
        assert!(
            AnnIndex::from_parts(ann.params(), ann.entry(), ann.levels().to_vec(), bad).is_err()
        );
        // Layer count disagrees with the level.
        let mut bad = ann.links().to_vec();
        bad[0].push(Vec::new());
        assert!(
            AnnIndex::from_parts(ann.params(), ann.entry(), ann.levels().to_vec(), bad).is_err()
        );
        // Level/links length mismatch.
        assert!(
            AnnIndex::from_parts(ann.params(), ann.entry(), vec![0; 49], ann.links().to_vec())
                .is_err()
        );
    }

    #[test]
    fn level_assignment_is_geometric_ish() {
        let store = random_store(2000, 64, 17);
        let ann = AnnIndex::build(&store, AnnParams::default());
        let ground = ann.levels.iter().filter(|&&l| l == 0).count();
        // With m = 16, ~93.75% of nodes should sit on layer 0 alone.
        assert!(ground > 1700, "{ground} of 2000 on layer 0");
        assert!((ann.max_level as usize) <= MAX_LEVEL);
    }
}

//! **DSPMap** — the scalable approximate algorithm (§5.2, Algorithms
//! 5–7). DSPM needs the full `n × n` dissimilarity/configuration state
//! (`O(n(n+m))` memory), which the paper reports exhausting a PC at
//! |DG| ≥ 6k. DSPMap instead:
//!
//! 1. **Partition** (Algorithm 7): recursively bisects the database into
//!    `np = ⌈n/b⌉` parts of size `≤ b`, clustering a small sample into
//!    two center sets (`Ol`/`Or`), assigning the rest by mean
//!    binary-vector distance to the centers, and rebalancing to
//!    `⌊np/2⌋·b` per side.
//! 2. **Computec** (Algorithm 6): recursively computes weight vectors
//!    for the two halves, plus an *overlap* DSPM run over `b` graphs
//!    sampled from one random part of each side (stitching the halves'
//!    weight scales together), and sums the three vectors.
//!
//! Every leaf/overlap DSPM call touches only `b × b` dissimilarity
//! blocks served by the [`SharedDelta`] cache, so total work is
//! `O(k·m′·b·n)` — linear in the database size (Theorem 5.3).

use gdim_exec::ExecConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::delta::SharedDelta;
use crate::dspm::{dspm, select_top, DspmConfig};
use crate::featurespace::FeatureSpace;

/// Configuration for [`dspmap`].
#[derive(Debug, Clone)]
pub struct DspmapConfig {
    /// Number of dimensions `p` to select.
    pub p: usize,
    /// Partition size `b` (§6 Exp-5 sweeps 20..100; Exp-6 uses `n/20`).
    pub partition_size: usize,
    /// Sample size `n_o` for generating the center sets (the paper notes
    /// it is "usually very small").
    pub sample_size: usize,
    /// Relative convergence threshold of the inner DSPM runs.
    pub epsilon: f64,
    /// Max iterations of the inner DSPM runs.
    pub max_iters: usize,
    /// Parallelism budget for the inner DSPM runs and δ sub-blocks.
    pub exec: ExecConfig,
    /// RNG seed (partitioning and overlap sampling are randomized).
    pub seed: u64,
}

impl DspmapConfig {
    /// Defaults mirroring [`crate::dspm::DspmConfig::new`] (ε = 1e-6,
    /// 100 iterations) plus `b = 50`, `n_o = 16`.
    pub fn new(p: usize) -> Self {
        DspmapConfig {
            p,
            partition_size: 50,
            sample_size: 16,
            epsilon: 1e-6,
            max_iters: 100,
            exec: ExecConfig::default(),
            seed: 0,
        }
    }

    /// Sets the partition size `b`.
    pub fn with_partition_size(mut self, b: usize) -> Self {
        self.partition_size = b.max(2);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Output of [`dspmap`].
#[derive(Debug, Clone)]
pub struct DspmapResult {
    /// Summed weight vector over all features.
    pub weights: Vec<f64>,
    /// Ids of the `min(p, m)` features with the largest summed weights.
    pub selected: Vec<u32>,
    /// The leaf partitions (database ids), in recursion order.
    pub partitions: Vec<Vec<u32>>,
    /// Number of inner DSPM invocations (leaves + overlaps = `2·np − 1`).
    pub dspm_calls: usize,
}

/// Runs DSPMap over the full feature space, with dissimilarities served
/// (and cached) by `sdelta`.
pub fn dspmap(space: &FeatureSpace, sdelta: &SharedDelta<'_>, cfg: &DspmapConfig) -> DspmapResult {
    let n = space.num_graphs();
    let m = space.num_features();
    let b = cfg.partition_size.max(2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Phase 1 (Algorithm 7).
    let all_ids: Vec<u32> = (0..n as u32).collect();
    let mut partitions: Vec<Vec<u32>> = Vec::new();
    partition(
        space,
        all_ids,
        b,
        cfg.sample_size.max(4),
        &mut rng,
        &mut partitions,
    );

    // Phase 2 (Algorithms 5–6).
    let mut calls = 0usize;
    let weights = computec(space, sdelta, cfg, &partitions, &mut rng, &mut calls);

    let selected = select_top(&weights, cfg.p.min(m));
    DspmapResult {
        weights,
        selected,
        partitions,
        dspm_calls: calls,
    }
}

/// Algorithm 7: recursive balanced bisection.
fn partition(
    space: &FeatureSpace,
    ids: Vec<u32>,
    b: usize,
    n_o: usize,
    rng: &mut StdRng,
    out: &mut Vec<Vec<u32>>,
) {
    if ids.len() <= b {
        out.push(ids);
        return;
    }
    // Line 4: generate the center sets Ol / Or by 2-means over a sample.
    let mut sample = ids.clone();
    sample.shuffle(rng);
    sample.truncate(n_o.min(ids.len()));
    let points: Vec<Vec<f64>> = sample.iter().map(|&g| dense_row(space, g)).collect();
    let km = gdim_linalg::kmeans(&points, 2, 25, rng.next_u64());
    let mut ol: Vec<u32> = Vec::new();
    let mut or: Vec<u32> = Vec::new();
    for (idx, &g) in sample.iter().enumerate() {
        if km.assignment[idx] == 0 {
            ol.push(g);
        } else {
            or.push(g);
        }
    }
    if ol.is_empty() || or.is_empty() {
        // Degenerate clustering (identical vectors): split the sample.
        let mid = sample.len() / 2;
        ol = sample[..mid.max(1)].to_vec();
        or = sample[mid.max(1)..].to_vec();
        if or.is_empty() {
            or.push(ol.pop().expect("sample has two ids"));
        }
    }

    // Lines 5-9: assign remaining graphs to the closer center set.
    let in_sample: std::collections::BTreeSet<u32> = sample.iter().copied().collect();
    let mut left: Vec<(u32, f64)> = ol.iter().map(|&g| (g, 0.0)).collect();
    let mut right: Vec<(u32, f64)> = or.iter().map(|&g| (g, 0.0)).collect();
    for &g in &ids {
        if in_sample.contains(&g) {
            continue;
        }
        let dl = center_distance(space, g, &ol);
        let dr = center_distance(space, g, &or);
        if dl <= dr {
            left.push((g, dl));
        } else {
            right.push((g, dr));
        }
    }
    // Recompute center distances for the center members themselves so
    // rebalancing treats every graph uniformly.
    for (g, d) in left.iter_mut() {
        *d = center_distance(space, *g, &ol);
    }
    for (g, d) in right.iter_mut() {
        *d = center_distance(space, *g, &or);
    }

    // Line 10: rebalance to nl = ⌊np/2⌋·b graphs on the left.
    let np = ids.len().div_ceil(b);
    let nl = (np / 2) * b;
    let by_dist_desc =
        |a: &(u32, f64), c: &(u32, f64)| c.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&c.0));
    if left.len() > nl {
        left.sort_by(by_dist_desc);
        while left.len() > nl {
            right.push(left.remove(0)); // farthest-from-Ol moves right
        }
    } else if left.len() < nl {
        right.sort_by(by_dist_desc);
        while left.len() < nl {
            left.push(right.remove(0)); // farthest-from-Or moves left
        }
    }

    let mut left_ids: Vec<u32> = left.into_iter().map(|(g, _)| g).collect();
    let mut right_ids: Vec<u32> = right.into_iter().map(|(g, _)| g).collect();
    left_ids.sort_unstable();
    right_ids.sort_unstable();
    partition(space, left_ids, b, n_o, rng, out);
    partition(space, right_ids, b, n_o, rng, out);
}

/// Graph-to-center-set distance: `d(g, O) = Σ_{g_j ∈ O} d(y_g, y_j) / |O|`
/// with the normalized binary Euclidean distance.
fn center_distance(space: &FeatureSpace, g: u32, centers: &[u32]) -> f64 {
    let m = space.num_features().max(1) as f64;
    let row = space.row(g as usize);
    let total: f64 = centers
        .iter()
        .map(|&c| (row.xor_count(space.row(c as usize)) as f64 / m).sqrt())
        .sum();
    total / centers.len().max(1) as f64
}

fn dense_row(space: &FeatureSpace, g: u32) -> Vec<f64> {
    let m = space.num_features();
    let mut v = vec![0.0; m];
    for r in space.row(g as usize).iter_ones() {
        v[r] = 1.0;
    }
    v
}

/// Algorithm 6: recursive weight combination.
fn computec(
    space: &FeatureSpace,
    sdelta: &SharedDelta<'_>,
    cfg: &DspmapConfig,
    parts: &[Vec<u32>],
    rng: &mut StdRng,
    calls: &mut usize,
) -> Vec<f64> {
    if parts.len() == 1 {
        return dspm_weights(space, sdelta, cfg, &parts[0], calls);
    }
    let mid = parts.len().div_ceil(2); // Pl = parts 1..⌈np/2⌉
    let cl = computec(space, sdelta, cfg, &parts[..mid], rng, calls);
    let cr = computec(space, sdelta, cfg, &parts[mid..], rng, calls);

    // Overlap: b graphs sampled from one random part per side (line 8).
    let dgl = &parts[rng.gen_range_usize(mid)];
    let dgr = &parts[mid + rng.gen_range_usize(parts.len() - mid)];
    let mut pool: Vec<u32> = dgl.iter().chain(dgr.iter()).copied().collect();
    pool.shuffle(rng);
    pool.truncate(cfg.partition_size);
    pool.sort_unstable();
    let co = dspm_weights(space, sdelta, cfg, &pool, calls);

    cl.iter()
        .zip(&cr)
        .zip(&co)
        .map(|((a, b), c)| a + b + c)
        .collect()
}

/// One inner DSPM run over a sub-database (features restricted by
/// support intersection, F′ of line 3 — zero-support features simply
/// receive zero weight).
fn dspm_weights(
    space: &FeatureSpace,
    sdelta: &SharedDelta<'_>,
    cfg: &DspmapConfig,
    ids: &[u32],
    calls: &mut usize,
) -> Vec<f64> {
    *calls += 1;
    let sub_space = space.restrict_graphs(ids);
    let sub_delta = sdelta.submatrix(ids);
    let inner = DspmConfig {
        p: cfg.p,
        epsilon: cfg.epsilon,
        max_iters: cfg.max_iters,
        exec: cfg.exec,
    };
    dspm(&sub_space, &sub_delta, &inner).weights
}

/// Tiny extension trait to keep `rand` usage in one style.
trait RngExt {
    fn gen_range_usize(&mut self, upper: usize) -> usize;
    fn next_u64(&mut self) -> u64;
}

impl RngExt for StdRng {
    fn gen_range_usize(&mut self, upper: usize) -> usize {
        use rand::Rng;
        if upper <= 1 {
            0
        } else {
            self.gen_range(0..upper)
        }
    }
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{DeltaConfig, DeltaMatrix};
    use crate::dspm::DspmConfig;
    use gdim_mining::{mine, MinerConfig, Support};

    fn setup(n: usize) -> (Vec<gdim_graph::Graph>, FeatureSpace) {
        let db = gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), 23);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.1)).with_max_edges(3),
        );
        let space = FeatureSpace::build(db.len(), feats);
        (db, space)
    }

    #[test]
    fn partitions_are_a_bounded_disjoint_cover() {
        let (db, space) = setup(47);
        let sdelta = SharedDelta::new(&db, DeltaConfig::default());
        let cfg = DspmapConfig::new(10).with_partition_size(10).with_seed(5);
        let res = dspmap(&space, &sdelta, &cfg);
        let mut seen: Vec<u32> = Vec::new();
        for part in &res.partitions {
            assert!(!part.is_empty());
            assert!(part.len() <= 10, "partition larger than b: {}", part.len());
            seen.extend(part);
        }
        seen.sort_unstable();
        let want: Vec<u32> = (0..47).collect();
        assert_eq!(seen, want, "partitions must cover every graph exactly once");
    }

    #[test]
    fn call_count_matches_recursion_tree() {
        let (db, space) = setup(40);
        let sdelta = SharedDelta::new(&db, DeltaConfig::default());
        let cfg = DspmapConfig::new(10).with_partition_size(10).with_seed(1);
        let res = dspmap(&space, &sdelta, &cfg);
        let np = res.partitions.len();
        assert_eq!(res.dspm_calls, 2 * np - 1, "leaves + overlaps");
    }

    #[test]
    fn small_database_degenerates_to_single_dspm() {
        let (db, space) = setup(12);
        let sdelta = SharedDelta::new(&db, DeltaConfig::default());
        let cfg = DspmapConfig::new(8).with_partition_size(20).with_seed(2);
        let res = dspmap(&space, &sdelta, &cfg);
        assert_eq!(res.partitions.len(), 1);
        assert_eq!(res.dspm_calls, 1);
        // Identical to plain DSPM on the whole database.
        let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
        let direct = crate::dspm::dspm(&space, &delta, &DspmConfig::new(8));
        assert_eq!(res.selected, direct.selected);
    }

    #[test]
    fn deterministic_for_seed() {
        let (db, space) = setup(35);
        let sdelta = SharedDelta::new(&db, DeltaConfig::default());
        let cfg = DspmapConfig::new(10).with_partition_size(12).with_seed(9);
        let a = dspmap(&space, &sdelta, &cfg);
        let sdelta2 = SharedDelta::new(&db, DeltaConfig::default());
        let b = dspmap(&space, &sdelta2, &cfg);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.partitions, b.partitions);
    }

    #[test]
    fn delta_cache_stays_subquadratic() {
        let (db, space) = setup(60);
        let sdelta = SharedDelta::new(&db, DeltaConfig::default());
        let cfg = DspmapConfig::new(10).with_partition_size(10).with_seed(3);
        let _ = dspmap(&space, &sdelta, &cfg);
        let full_pairs = 60 * 59 / 2;
        assert!(
            sdelta.computed_pairs() < full_pairs / 2,
            "DSPMap touched {} of {} pairs",
            sdelta.computed_pairs(),
            full_pairs
        );
    }

    #[test]
    fn selects_p_features() {
        let (db, space) = setup(30);
        let sdelta = SharedDelta::new(&db, DeltaConfig::default());
        let cfg = DspmapConfig::new(7).with_partition_size(10).with_seed(4);
        let res = dspmap(&space, &sdelta, &cfg);
        assert_eq!(res.selected.len(), 7.min(space.num_features()));
    }
}

//! Versioned binary persistence for [`GraphIndex`]: build once, serve
//! from disk.
//!
//! Layout of the current format, **v3** (all integers little-endian,
//! lengths as `u64`):
//!
//! ```text
//! magic    8 B   b"GDIMIDX\0"
//! version  u32   2
//! δ kind   u8    0 = δ1 (MaxNorm), 1 = δ2 (AvgNorm)
//! precheck u8    MCS containment pre-check flag
//! budget   u64   MCS node budget
//! reserved u8    must be 0 (an index stores binary vectors;
//!                weighted requests are served from derived weights)
//! stats    mined_features u64 · dimensions u64 · used_dspmap u8 ·
//!          delta_pairs u64 · three phase times as nanos u64
//! db       n u64, then per graph: |V| u64 · vlabels u32* ·
//!          |E| u64 · (u, v, label) u32³ per edge
//! features m u64, then per feature: pattern graph (as above) ·
//!          code len u64 · (from, to, l_from, l_e, l_to) u32⁵ per edge ·
//!          support len u64 · graph ids u32*
//! selected p u64 · feature ids u32*
//! weights  len u64 · IEEE-754 bit patterns u64*
//! -- v2 tail (dynamic-index state + build options) ------------------
//! options  min_support tag u8 (0 = relative, 1 = absolute) ·
//!          value u64 (f64 bits when relative) ·
//!          max_pattern_edges u64 · requested dimensions u64 ·
//!          strategy tag u8 (0 = DSPM, 1 = DSPMap, 2 = auto) ·
//!          strategy param u64 (0 / partition size / threshold) ·
//!          seed u64 · rebuild max_inserts u64 ·
//!          rebuild max_tombstone_frac f64 bits
//! epoch    u64   rebuild generation
//! pending  u64   inserts accumulated since the last rebuild
//! tombs    count u64 · strictly ascending dead graph ids u32*
//! -- v3 section (optional ANN proximity graph) ----------------------
//! ann flag u8    0 = no graph persisted, 1 = present
//! ann      (when present) m u64 · ef_construction u64 · seed u64 ·
//!          entry u32 · built_n u64 · per-node level u8* ·
//!          per node, per layer 0..=level: count u32 · neighbor u32*
//! ```
//!
//! The tail exists because the index is **dynamic**: removed graphs
//! are persisted with their tombstone (ids must stay stable across a
//! save/load), the epoch survives restarts, and the retained build
//! options let a reloaded index [`rebuild`](GraphIndex::rebuild) with
//! exactly the pipeline that produced it.
//!
//! **v1 and v2 files still load**: a v1 payload is the v2 layout
//! without the tail (it decodes as a fully-live epoch-0 index whose
//! non-δ build options fall back to defaults — the δ kind / MCS budget
//! were always in the header), and a v2 payload is v3 without the ANN
//! section (the proximity graph simply rebuilds lazily on the first
//! approximate query). Saving always writes v3. The ANN graph is the
//! one piece of *derived* state that **is** persisted when present:
//! unlike the scan store it costs O(n·ef_construction) distance
//! evaluations to rebuild, so a serving restart should not have to
//! re-pay the build to keep its latency budget.
//!
//! Derived state — the feature space, the flat
//! [`VectorStore`](crate::scan::VectorStore) of mapped vectors, the
//! feature [`ContainmentDag`](crate::featurespace::ContainmentDag)
//! that prunes query-time VF2 calls, and the weighted scan weights —
//! is **not** persisted: it is rebuilt deterministically on load,
//! which keeps the format small and makes a reloaded index answer
//! byte-identically to the one that was saved (a dirty index persists
//! exactly as well: [`GraphIndex::insert`](GraphIndex::insert) keeps
//! the feature supports authoritative, so inserted rows reappear in
//! the rebuilt scan store). The exec budget
//! is deliberately not persisted either — core counts belong to the
//! serving machine, not the index file
//! ([`GraphIndex::set_exec`](crate::index::GraphIndex::set_exec)).
//!
//! Every structural defect surfaces as [`GdimError::Corrupt`] (or
//! [`GdimError::UnsupportedVersion`] for a future format), never a
//! panic.
//!
//! **Role in the durable layout.** Since the durability PR, a v2 file
//! is no longer necessarily the whole story of an index on disk: under
//! a `--durable` directory it is **one generation of a log-structured
//! directory** — the per-shard snapshot inside a `gen-NNNNNN/`
//! checkpoint, paired with a write-ahead log (`wal-NNNNNN.log`) that
//! holds the mutations acked after the checkpoint was cut. Opening
//! such a directory loads the newest complete generation via this
//! module and then replays the log suffix on top (see
//! `gdim_shard::durable`). The file format itself is unchanged; only
//! its surroundings grew. Standalone saves via
//! [`GraphIndex::save`](crate::index::GraphIndex::save) are now
//! crash-safe (temp file → fsync → rename → fsync parent directory).

use gdim_graph::dfscode::{DfsCode, DfsEdge};
use gdim_graph::{Dissimilarity, Graph, McsOptions};
use gdim_mining::{Feature, Support};

use crate::delta::DeltaConfig;
use crate::error::GdimError;
use crate::index::{GraphIndex, IndexOptions, IndexStats, RebuildPolicy, SelectionStrategy};
use crate::scan::Tombstones;

pub(crate) const MAGIC: [u8; 8] = *b"GDIMIDX\0";
pub(crate) const VERSION: u32 = 3;
/// Oldest format this build still reads.
pub(crate) const MIN_VERSION: u32 = 1;

// ---------------------------------------------------------------- write

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_len(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_graph(buf: &mut Vec<u8>, g: &Graph) {
    put_len(buf, g.vertex_count());
    for &l in g.vlabels() {
        put_u32(buf, l);
    }
    put_len(buf, g.edge_count());
    for e in g.edges() {
        put_u32(buf, e.u);
        put_u32(buf, e.v);
        put_u32(buf, e.label);
    }
}

fn put_feature(buf: &mut Vec<u8>, f: &Feature) {
    put_graph(buf, &f.graph);
    put_len(buf, f.code.len());
    for e in &f.code.0 {
        put_u32(buf, e.from);
        put_u32(buf, e.to);
        put_u32(buf, e.from_label);
        put_u32(buf, e.elabel);
        put_u32(buf, e.to_label);
    }
    put_len(buf, f.support.len());
    for &gid in &f.support {
        put_u32(buf, gid);
    }
}

/// Serializes an index (format documented in the module docs).
pub(crate) fn encode(index: &GraphIndex) -> Vec<u8> {
    let mut buf = encode_body(index);
    encode_tail(index, &mut buf);
    encode_ann(index, &mut buf);
    buf
}

/// The v1-compatible body: header + stats + graphs + features +
/// selection + weights (everything up to the v2 tail).
fn encode_body(index: &GraphIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, VERSION);

    let cfg = index.delta_config();
    put_u8(
        &mut buf,
        match cfg.kind {
            Dissimilarity::MaxNorm => 0,
            Dissimilarity::AvgNorm => 1,
        },
    );
    put_u8(&mut buf, cfg.mcs.containment_precheck as u8);
    put_u64(&mut buf, cfg.mcs.node_budget);
    // Reserved byte. A built index always stores binary vectors — the
    // weighted mapping is served from the same vectors via the derived
    // DSPM weights, never baked into the mapped database — so v1 has
    // nothing to record here.
    put_u8(&mut buf, 0);

    let stats = index.stats();
    put_len(&mut buf, stats.mined_features);
    put_len(&mut buf, stats.dimensions);
    put_u8(&mut buf, stats.used_dspmap as u8);
    put_len(&mut buf, stats.delta_pairs);
    for t in [stats.mining_time, stats.delta_time, stats.selection_time] {
        put_u64(&mut buf, t.as_nanos().min(u64::MAX as u128) as u64);
    }

    put_len(&mut buf, index.len());
    for g in index.graphs() {
        put_graph(&mut buf, g);
    }
    let features = index.feature_space().features();
    put_len(&mut buf, features.len());
    for f in features {
        put_feature(&mut buf, f);
    }
    put_len(&mut buf, index.dimensions().len());
    for &r in index.dimensions() {
        put_u32(&mut buf, r);
    }
    put_len(&mut buf, index.weights().len());
    for &w in index.weights() {
        put_f64(&mut buf, w);
    }
    buf
}

/// The v2 tail: retained build options + dynamic state (see the module
/// docs).
fn encode_tail(index: &GraphIndex, buf: &mut Vec<u8>) {
    let opts = index.options();
    match opts.min_support {
        Support::Relative(tau) => {
            put_u8(buf, 0);
            put_f64(buf, tau);
        }
        Support::Absolute(s) => {
            put_u8(buf, 1);
            put_u64(buf, s as u64);
        }
    }
    put_u64(buf, opts.max_pattern_edges as u64);
    put_u64(buf, opts.dimensions as u64);
    match opts.strategy {
        SelectionStrategy::Dspm => {
            put_u8(buf, 0);
            put_u64(buf, 0);
        }
        SelectionStrategy::Dspmap { partition_size } => {
            put_u8(buf, 1);
            put_u64(buf, partition_size as u64);
        }
        SelectionStrategy::Auto { threshold } => {
            put_u8(buf, 2);
            put_u64(buf, threshold as u64);
        }
    }
    put_u64(buf, opts.seed);
    put_u64(buf, opts.rebuild.max_inserts as u64);
    put_f64(buf, opts.rebuild.max_tombstone_frac);
    put_u64(buf, index.epoch());
    put_u64(buf, index.pending_inserts() as u64);
    let dead = index.tombstones().dead_ids();
    put_len(buf, dead.len());
    for id in dead {
        put_u32(buf, id);
    }
}

/// The v3 section: the ANN proximity graph, **iff one was built** —
/// saving never forces the O(n·ef_construction) build, it only keeps
/// a graph the serving path already paid for.
fn encode_ann(index: &GraphIndex, buf: &mut Vec<u8>) {
    let Some(ann) = index.ann_if_built() else {
        put_u8(buf, 0);
        return;
    };
    put_u8(buf, 1);
    let params = ann.params();
    put_u64(buf, params.m as u64);
    put_u64(buf, params.ef_construction as u64);
    put_u64(buf, params.seed);
    put_u32(buf, ann.entry());
    put_len(buf, ann.built_n());
    buf.extend_from_slice(ann.levels());
    for layers in ann.links() {
        for list in layers {
            put_u32(buf, list.len() as u32);
            for &nb in list {
                put_u32(buf, nb);
            }
        }
    }
}

// ----------------------------------------------------------------- read

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], GdimError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                GdimError::Corrupt(format!(
                    "truncated: wanted {n} bytes at offset {}, file has {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, GdimError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, GdimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, GdimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, GdimError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix, sanity-capped so a corrupt file cannot request
    /// an absurd element count (each counted element is ≥ 1 byte).
    fn len(&mut self) -> Result<usize, GdimError> {
        let v = self.u64()?;
        if v > self.buf.len() as u64 {
            return Err(GdimError::Corrupt(format!(
                "length {v} exceeds file size {}",
                self.buf.len()
            )));
        }
        Ok(v as usize)
    }

    /// Pre-allocation for `count` decoded elements, capped: the `len()`
    /// guard bounds the *count* by the file size, but an in-memory
    /// element can be ~100× its encoded size (a [`Feature`] is three
    /// vectors), so trusting the count verbatim would let a corrupt
    /// file demand an allocation far larger than itself before the
    /// first element fails to parse. Growth past the cap is amortized.
    fn vec_for<T>(count: usize) -> Vec<T> {
        Vec::with_capacity(count.min(4096))
    }

    fn flag(&mut self) -> Result<bool, GdimError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(GdimError::Corrupt(format!("flag byte {other} not 0/1"))),
        }
    }

    fn graph(&mut self) -> Result<Graph, GdimError> {
        let nv = self.len()?;
        let mut vlabels = Self::vec_for(nv);
        for _ in 0..nv {
            vlabels.push(self.u32()?);
        }
        let ne = self.len()?;
        let mut edges = Self::vec_for(ne);
        for _ in 0..ne {
            edges.push((self.u32()?, self.u32()?, self.u32()?));
        }
        Graph::from_parts(vlabels, edges)
            .map_err(|e| GdimError::Corrupt(format!("invalid graph: {e}")))
    }

    fn feature(&mut self) -> Result<Feature, GdimError> {
        let graph = self.graph()?;
        let code_len = self.len()?;
        let mut code = Self::vec_for(code_len);
        for _ in 0..code_len {
            code.push(DfsEdge {
                from: self.u32()?,
                to: self.u32()?,
                from_label: self.u32()?,
                elabel: self.u32()?,
                to_label: self.u32()?,
            });
        }
        let sup_len = self.len()?;
        let mut support = Self::vec_for(sup_len);
        for _ in 0..sup_len {
            support.push(self.u32()?);
        }
        Ok(Feature {
            graph,
            code: DfsCode(code),
            support,
        })
    }
}

/// Deserializes an index written by [`encode`], rebuilding derived
/// state deterministically.
pub(crate) fn decode(bytes: &[u8]) -> Result<GraphIndex, GdimError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(GdimError::Corrupt("bad magic (not a gdim index)".into()));
    }
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(GdimError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = match r.u8()? {
        0 => Dissimilarity::MaxNorm,
        1 => Dissimilarity::AvgNorm,
        other => {
            return Err(GdimError::Corrupt(format!(
                "dissimilarity tag {other} unknown"
            )))
        }
    };
    let containment_precheck = r.flag()?;
    let node_budget = r.u64()?;
    match r.u8()? {
        0 => {}
        other => {
            return Err(GdimError::Corrupt(format!(
                "reserved byte is {other}, expected 0"
            )))
        }
    }
    // Stats are plain counters, not element counts: they must bypass
    // the allocation-guarding `len()` cap (`delta_pairs` is quadratic
    // in `n` and legitimately exceeds the file size at scale).
    let stats = IndexStats {
        mined_features: r.u64()? as usize,
        dimensions: r.u64()? as usize,
        used_dspmap: r.flag()?,
        delta_pairs: r.u64()? as usize,
        mining_time: std::time::Duration::from_nanos(r.u64()?),
        delta_time: std::time::Duration::from_nanos(r.u64()?),
        selection_time: std::time::Duration::from_nanos(r.u64()?),
    };

    let n = r.len()?;
    let mut db = Reader::vec_for(n);
    for _ in 0..n {
        db.push(r.graph()?);
    }
    let m = r.len()?;
    let mut features = Reader::vec_for(m);
    for _ in 0..m {
        let f = r.feature()?;
        if let Some(&bad) = f.support.iter().find(|&&gid| gid as usize >= n) {
            return Err(GdimError::Corrupt(format!(
                "feature support references graph {bad} of {n}"
            )));
        }
        features.push(f);
    }
    let p = r.len()?;
    let mut selected = Reader::vec_for(p);
    for _ in 0..p {
        selected.push(r.u32()?);
    }
    let wn = r.len()?;
    let mut weights = Reader::vec_for(wn);
    for _ in 0..wn {
        weights.push(r.f64()?);
    }

    let delta = DeltaConfig {
        kind,
        mcs: McsOptions {
            node_budget,
            containment_precheck,
        },
        ..DeltaConfig::default()
    };
    // The v2 tail: build options + dynamic state. A v1 file ends here
    // and decodes as a fully-live epoch-0 index whose non-δ build
    // options fall back to defaults.
    let (opts, epoch, tombstones, pending) = if version == 1 {
        let opts = IndexOptions {
            dimensions: selected.len(),
            delta,
            ..IndexOptions::default()
        };
        (opts, 0u64, Tombstones::all_live(n), 0usize)
    } else {
        let min_support = match r.u8()? {
            0 => Support::Relative(r.f64()?),
            1 => Support::Absolute(r.u64()? as usize),
            other => {
                return Err(GdimError::Corrupt(format!("support tag {other} unknown")));
            }
        };
        let max_pattern_edges = r.u64()? as usize;
        let dimensions = r.u64()? as usize;
        let strategy_tag = r.u8()?;
        let strategy_param = r.u64()? as usize;
        let strategy = match strategy_tag {
            0 => SelectionStrategy::Dspm,
            1 => SelectionStrategy::Dspmap {
                partition_size: strategy_param,
            },
            2 => SelectionStrategy::Auto {
                threshold: strategy_param,
            },
            other => {
                return Err(GdimError::Corrupt(format!("strategy tag {other} unknown")));
            }
        };
        let seed = r.u64()?;
        let rebuild = RebuildPolicy {
            max_inserts: r.u64()? as usize,
            max_tombstone_frac: r.f64()?,
        };
        let opts = IndexOptions {
            dimensions,
            min_support,
            max_pattern_edges,
            strategy,
            delta,
            seed,
            rebuild,
        };
        let epoch = r.u64()?;
        let pending = r.u64()? as usize;
        let dead_n = r.len()?;
        let mut tombstones = Tombstones::all_live(n);
        let mut prev: Option<u32> = None;
        for _ in 0..dead_n {
            let id = r.u32()?;
            if prev.is_some_and(|p| id <= p) {
                return Err(GdimError::Corrupt(format!(
                    "tombstone ids not strictly ascending at {id}"
                )));
            }
            if id as usize >= n {
                return Err(GdimError::Corrupt(format!(
                    "tombstone id {id} out of {n} graphs"
                )));
            }
            tombstones.mark_dead(id as usize);
            prev = Some(id);
        }
        (opts, epoch, tombstones, pending)
    };
    // The v3 section: an optional persisted ANN proximity graph. A v2
    // file ends before it and just rebuilds the graph lazily.
    let ann = if version >= 3 && r.flag()? {
        let params = crate::ann::AnnParams::default()
            .with_m(r.u64()? as usize)
            .with_ef_construction(r.u64()? as usize)
            .with_seed(r.u64()?);
        let entry = r.u32()?;
        let built_n = r.len()?;
        if built_n > n {
            return Err(GdimError::Corrupt(format!(
                "ANN graph covers {built_n} rows but the store has {n}"
            )));
        }
        let levels = r.take(built_n)?.to_vec();
        let mut links = Vec::with_capacity(built_n);
        for &level in &levels {
            let mut layers = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let deg = r.u32()? as usize;
                let mut list = Vec::with_capacity(deg.min(4096));
                for _ in 0..deg {
                    list.push(r.u32()?);
                }
                layers.push(list);
            }
            links.push(layers);
        }
        Some(
            crate::ann::AnnIndex::from_parts(params, entry, levels, links)
                .map_err(|e| GdimError::Corrupt(format!("inconsistent ANN graph: {e}")))?,
        )
    } else {
        None
    };
    if r.pos != bytes.len() {
        return Err(GdimError::Corrupt(format!(
            "{} trailing bytes after index payload",
            bytes.len() - r.pos
        )));
    }

    let index = GraphIndex::from_parts(
        db, features, selected, weights, opts, stats, epoch, tombstones, pending,
    )
    // Structurally valid bytes can still describe an inconsistent
    // index (selected id outside the space, wrong weights length);
    // from a file, that is corruption too.
    .map_err(|e| GdimError::Corrupt(format!("inconsistent index payload: {e}")))?;
    if let Some(ann) = ann {
        index.set_ann(ann);
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;
    use crate::search::{Ranker, SearchRequest};

    fn index(n: usize, seed: u64) -> GraphIndex {
        let db = gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed);
        GraphIndex::build(db, IndexOptions::default().with_dimensions(20))
    }

    #[test]
    fn bytes_roundtrip_is_lossless_and_stable() {
        let idx = index(18, 5);
        let bytes = idx.to_bytes();
        let back = GraphIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.graphs(), idx.graphs());
        assert_eq!(back.dimensions(), idx.dimensions());
        assert_eq!(back.weights(), idx.weights());
        assert_eq!(back.dissimilarity(), idx.dissimilarity());
        assert_eq!(back.stats().mined_features, idx.stats().mined_features);
        // Re-encoding the reload reproduces the bytes exactly.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn reloaded_index_answers_identically() {
        let idx = index(16, 7);
        let back = GraphIndex::from_bytes(&idx.to_bytes()).unwrap();
        let queries = gdim_datagen::chem_db(3, &gdim_datagen::ChemConfig::default(), 99);
        for q in &queries {
            for ranker in [
                Ranker::Mapped,
                Ranker::Exact,
                Ranker::Refined { candidates: 6 },
            ] {
                let req = SearchRequest::topk(5).with_ranker(ranker);
                assert_eq!(
                    idx.search(q, &req).unwrap().hits,
                    back.search(q, &req).unwrap().hits,
                    "{ranker:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let idx = index(6, 9);
        let mut bytes = idx.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            GraphIndex::from_bytes(&bytes),
            Err(GdimError::Corrupt(_))
        ));
        let mut bytes = idx.to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            GraphIndex::from_bytes(&bytes),
            Err(GdimError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        ));
    }

    #[test]
    fn truncation_and_trailing_garbage_are_corrupt() {
        let idx = index(6, 11);
        let bytes = idx.to_bytes();
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    GraphIndex::from_bytes(&bytes[..cut]),
                    Err(GdimError::Corrupt(_))
                ),
                "cut at {cut}"
            );
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            GraphIndex::from_bytes(&longer),
            Err(GdimError::Corrupt(_))
        ));
    }

    #[test]
    fn quadratic_delta_pairs_stat_survives_reload() {
        // delta_pairs = n(n-1)/2 exceeds the file size at realistic
        // database scale; the decoder must not apply the element-count
        // sanity cap to plain counters. Patch the persisted stat to a
        // value far beyond the file length and reload.
        let idx = index(6, 13);
        let mut bytes = idx.to_bytes();
        // Layout: magic 8 + version 4 + kind 1 + precheck 1 + budget 8
        // + mapping 1 = 23; mined_features u64 @23, dimensions u64 @31,
        // used_dspmap u8 @39, delta_pairs u64 @40.
        let huge: u64 = 1_999_000;
        assert!(huge > bytes.len() as u64);
        bytes[40..48].copy_from_slice(&huge.to_le_bytes());
        let back = GraphIndex::from_bytes(&bytes).expect("counters bypass the length cap");
        assert_eq!(back.stats().delta_pairs, huge as usize);
    }

    #[test]
    fn inconsistent_payload_surfaces_as_corrupt() {
        // Structurally parseable bytes whose selected ids point outside
        // the feature space must be Corrupt, not DimensionOutOfRange —
        // callers quarantine index files by matching on Corrupt.
        let idx = index(8, 15);
        let p = idx.dimensions().len();
        let wn = idx.weights().len();
        assert!(p > 0);
        let mut bytes = idx.to_bytes();
        // The selected ids are the p u32s immediately before the
        // weights block (8-byte count + 8 bytes per weight), which in
        // v2 is followed by the options/dynamic-state tail.
        let mut tail = Vec::new();
        encode_tail(&idx, &mut tail);
        let mut ann = Vec::new();
        encode_ann(&idx, &mut ann);
        let sel_start = bytes.len() - ann.len() - tail.len() - (8 + 8 * wn) - 4 * p;
        bytes[sel_start..sel_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match GraphIndex::from_bytes(&bytes) {
            Err(GdimError::Corrupt(msg)) => {
                assert!(msg.contains("inconsistent"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_index_roundtrips() {
        let idx = GraphIndex::build(Vec::new(), IndexOptions::default());
        let back = GraphIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.to_bytes(), idx.to_bytes());
    }

    #[test]
    fn v1_files_still_load_as_fully_live_epoch_zero() {
        // A v1 payload is the v2 body without the tail: synthesize one
        // from a clean index and check the back-compat path.
        let idx = index(10, 17);
        let mut v1 = encode_body(&idx);
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let back = GraphIndex::from_bytes(&v1).expect("v1 must stay readable");
        assert_eq!(back.epoch(), 0);
        assert_eq!(back.tombstone_count(), 0);
        assert_eq!(back.pending_inserts(), 0);
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.dissimilarity(), idx.dissimilarity());
        // Non-δ build options fall back to defaults except the
        // dimension count, recovered from the selection itself.
        assert_eq!(back.options().dimensions, idx.dimensions().len());
        let q = idx.graph(4).unwrap().clone();
        let req = SearchRequest::topk(5);
        assert_eq!(
            back.search(&q, &req).unwrap().hits,
            idx.search(&q, &req).unwrap().hits
        );
        // Re-saving a v1-loaded index writes the current version.
        let resaved = back.to_bytes();
        assert_eq!(&resaved[8..12], &VERSION.to_le_bytes());
        assert!(GraphIndex::from_bytes(&resaved).is_ok());
    }

    #[test]
    fn dirty_index_roundtrips_tombstones_epoch_and_options() {
        let db = gdim_datagen::chem_db(14, &gdim_datagen::ChemConfig::default(), 19);
        let extra = gdim_datagen::chem_db(3, &gdim_datagen::ChemConfig::default(), 91);
        let mut idx = GraphIndex::build(
            db,
            IndexOptions::default()
                .with_dimensions(18)
                .with_rebuild_policy(crate::index::RebuildPolicy {
                    max_inserts: 7,
                    max_tombstone_frac: 0.5,
                }),
        );
        idx.rebuild(); // epoch 1, so a non-zero epoch is exercised
        for g in &extra {
            idx.insert(g.clone());
        }
        idx.remove(crate::search::GraphId(2)).unwrap();
        idx.remove(crate::search::GraphId(15)).unwrap(); // an inserted row
        let bytes = idx.to_bytes();
        let back = GraphIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.epoch(), 1);
        assert_eq!(back.pending_inserts(), 3);
        assert_eq!(back.tombstone_count(), 2);
        assert_eq!(back.tombstones().dead_ids(), vec![2, 15]);
        assert_eq!(back.rebuild_policy().max_inserts, 7);
        assert_eq!(back.len(), idx.len());
        // Byte-stable re-encode, and identical answers — including for
        // a query that *is* an inserted graph.
        assert_eq!(back.to_bytes(), bytes);
        for q in extra.iter().chain([idx.graph(2).unwrap()]) {
            for ranker in [
                Ranker::Mapped,
                Ranker::Exact,
                Ranker::Refined { candidates: 6 },
            ] {
                let req = SearchRequest::topk(6).with_ranker(ranker);
                let a = idx.search(q, &req).unwrap();
                let b = back.search(q, &req).unwrap();
                assert_eq!(a.hits, b.hits, "{ranker:?}");
                assert!(a.hits.iter().all(|h| ![2, 15].contains(&h.id.get())));
            }
        }
    }

    #[test]
    fn corrupt_tail_is_a_typed_error() {
        let mut idx = index(8, 21);
        idx.remove(crate::search::GraphId(3)).unwrap();
        let good = idx.to_bytes();
        // Tombstone id out of range: the 4 bytes before the trailing
        // ANN flag are the only dead id; overwrite with an absurd one.
        let mut bad = good.clone();
        let at = bad.len() - 5;
        bad[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            GraphIndex::from_bytes(&bad),
            Err(GdimError::Corrupt(_))
        ));
        // Unknown strategy tag inside the tail.
        let mut tail = Vec::new();
        encode_tail(&idx, &mut tail);
        let mut ann = Vec::new();
        encode_ann(&idx, &mut ann);
        let body_len = good.len() - ann.len() - tail.len();
        // Tail layout: tag u8 + u64 + u64 + u64 = 25 bytes before the
        // strategy tag.
        let mut bad = good.clone();
        bad[body_len + 25] = 9;
        assert!(matches!(
            GraphIndex::from_bytes(&bad),
            Err(GdimError::Corrupt(_))
        ));
    }

    #[test]
    fn ann_graph_persists_and_roundtrips() {
        let idx = index(30, 23);
        // A clean save carries no graph (flag 0): the save path never
        // forces the build, and a reload rebuilds lazily when asked.
        let cold = GraphIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(cold.ann_if_built().is_none());
        // Force the build and save again: the graph rides along.
        idx.ann();
        let bytes = idx.to_bytes();
        let back = GraphIndex::from_bytes(&bytes).unwrap();
        let (a, b) = (idx.ann_if_built().unwrap(), back.ann_if_built().unwrap());
        assert_eq!(a.entry(), b.entry());
        assert_eq!(a.levels(), b.levels());
        assert_eq!(a.links(), b.links());
        assert_eq!(back.to_bytes(), bytes);
        let req = SearchRequest::new(5).ranker(Ranker::Approx {
            ef: 30,
            verify: None,
        });
        let q = idx.graph(7).unwrap().clone();
        let fresh = idx.search(&q, &req).unwrap();
        let warm = back.search(&q, &req).unwrap();
        assert_eq!(fresh.hits, warm.hits);
        assert!(warm.stats.approximate);
        // A v2 payload is v3 without the section and must stay
        // readable; the graph just rebuilds on demand.
        let mut v2 = encode_body(&idx);
        encode_tail(&idx, &mut v2);
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let old = GraphIndex::from_bytes(&v2).expect("v2 must stay readable");
        assert!(old.ann_if_built().is_none());
        assert_eq!(old.search(&q, &req).unwrap().hits, fresh.hits);
        // Mangling the ANN section is typed corruption, not a panic.
        let mut bad = bytes.clone();
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            GraphIndex::from_bytes(&bad),
            Err(GdimError::Corrupt(_))
        ));
    }
}

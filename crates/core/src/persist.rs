//! Versioned binary persistence for [`GraphIndex`]: build once, serve
//! from disk.
//!
//! Layout (all integers little-endian, lengths as `u64`):
//!
//! ```text
//! magic    8 B   b"GDIMIDX\0"
//! version  u32   1
//! δ kind   u8    0 = δ1 (MaxNorm), 1 = δ2 (AvgNorm)
//! precheck u8    MCS containment pre-check flag
//! budget   u64   MCS node budget
//! reserved u8    must be 0 in v1 (an index stores binary vectors;
//!                weighted requests are served from derived weights)
//! stats    mined_features u64 · dimensions u64 · used_dspmap u8 ·
//!          delta_pairs u64 · three phase times as nanos u64
//! db       n u64, then per graph: |V| u64 · vlabels u32* ·
//!          |E| u64 · (u, v, label) u32³ per edge
//! features m u64, then per feature: pattern graph (as above) ·
//!          code len u64 · (from, to, l_from, l_e, l_to) u32⁵ per edge ·
//!          support len u64 · graph ids u32*
//! selected p u64 · feature ids u32*
//! weights  len u64 · IEEE-754 bit patterns u64*
//! ```
//!
//! Derived state — the feature space, the flat
//! [`VectorStore`](crate::scan::VectorStore) of mapped vectors, the
//! feature [`ContainmentDag`](crate::featurespace::ContainmentDag)
//! that prunes query-time VF2 calls, and the weighted scan weights —
//! is **not** persisted: it is rebuilt deterministically on load
//! (same v1 format, no version bump), which keeps the format small
//! and makes a reloaded index answer byte-identically to the one that
//! was saved. The exec budget
//! is deliberately not persisted either — core counts belong to the
//! serving machine, not the index file
//! ([`GraphIndex::set_exec`](crate::index::GraphIndex::set_exec)).
//!
//! Every structural defect surfaces as [`GdimError::Corrupt`] (or
//! [`GdimError::UnsupportedVersion`] for a future format), never a
//! panic.

use gdim_graph::dfscode::{DfsCode, DfsEdge};
use gdim_graph::{Dissimilarity, Graph, McsOptions};
use gdim_mining::Feature;

use crate::delta::DeltaConfig;
use crate::error::GdimError;
use crate::index::{GraphIndex, IndexStats};

pub(crate) const MAGIC: [u8; 8] = *b"GDIMIDX\0";
pub(crate) const VERSION: u32 = 1;

// ---------------------------------------------------------------- write

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_len(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_graph(buf: &mut Vec<u8>, g: &Graph) {
    put_len(buf, g.vertex_count());
    for &l in g.vlabels() {
        put_u32(buf, l);
    }
    put_len(buf, g.edge_count());
    for e in g.edges() {
        put_u32(buf, e.u);
        put_u32(buf, e.v);
        put_u32(buf, e.label);
    }
}

fn put_feature(buf: &mut Vec<u8>, f: &Feature) {
    put_graph(buf, &f.graph);
    put_len(buf, f.code.len());
    for e in &f.code.0 {
        put_u32(buf, e.from);
        put_u32(buf, e.to);
        put_u32(buf, e.from_label);
        put_u32(buf, e.elabel);
        put_u32(buf, e.to_label);
    }
    put_len(buf, f.support.len());
    for &gid in &f.support {
        put_u32(buf, gid);
    }
}

/// Serializes an index (format documented in the module docs).
pub(crate) fn encode(index: &GraphIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, VERSION);

    let cfg = index.delta_config();
    put_u8(
        &mut buf,
        match cfg.kind {
            Dissimilarity::MaxNorm => 0,
            Dissimilarity::AvgNorm => 1,
        },
    );
    put_u8(&mut buf, cfg.mcs.containment_precheck as u8);
    put_u64(&mut buf, cfg.mcs.node_budget);
    // Reserved byte. A built index always stores binary vectors — the
    // weighted mapping is served from the same vectors via the derived
    // DSPM weights, never baked into the mapped database — so v1 has
    // nothing to record here.
    put_u8(&mut buf, 0);

    let stats = index.stats();
    put_len(&mut buf, stats.mined_features);
    put_len(&mut buf, stats.dimensions);
    put_u8(&mut buf, stats.used_dspmap as u8);
    put_len(&mut buf, stats.delta_pairs);
    for t in [stats.mining_time, stats.delta_time, stats.selection_time] {
        put_u64(&mut buf, t.as_nanos().min(u64::MAX as u128) as u64);
    }

    put_len(&mut buf, index.len());
    for g in index.graphs() {
        put_graph(&mut buf, g);
    }
    let features = index.feature_space().features();
    put_len(&mut buf, features.len());
    for f in features {
        put_feature(&mut buf, f);
    }
    put_len(&mut buf, index.dimensions().len());
    for &r in index.dimensions() {
        put_u32(&mut buf, r);
    }
    put_len(&mut buf, index.weights().len());
    for &w in index.weights() {
        put_f64(&mut buf, w);
    }
    buf
}

// ----------------------------------------------------------------- read

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], GdimError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                GdimError::Corrupt(format!(
                    "truncated: wanted {n} bytes at offset {}, file has {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, GdimError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, GdimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, GdimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, GdimError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix, sanity-capped so a corrupt file cannot request
    /// an absurd element count (each counted element is ≥ 1 byte).
    fn len(&mut self) -> Result<usize, GdimError> {
        let v = self.u64()?;
        if v > self.buf.len() as u64 {
            return Err(GdimError::Corrupt(format!(
                "length {v} exceeds file size {}",
                self.buf.len()
            )));
        }
        Ok(v as usize)
    }

    /// Pre-allocation for `count` decoded elements, capped: the `len()`
    /// guard bounds the *count* by the file size, but an in-memory
    /// element can be ~100× its encoded size (a [`Feature`] is three
    /// vectors), so trusting the count verbatim would let a corrupt
    /// file demand an allocation far larger than itself before the
    /// first element fails to parse. Growth past the cap is amortized.
    fn vec_for<T>(count: usize) -> Vec<T> {
        Vec::with_capacity(count.min(4096))
    }

    fn flag(&mut self) -> Result<bool, GdimError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(GdimError::Corrupt(format!("flag byte {other} not 0/1"))),
        }
    }

    fn graph(&mut self) -> Result<Graph, GdimError> {
        let nv = self.len()?;
        let mut vlabels = Self::vec_for(nv);
        for _ in 0..nv {
            vlabels.push(self.u32()?);
        }
        let ne = self.len()?;
        let mut edges = Self::vec_for(ne);
        for _ in 0..ne {
            edges.push((self.u32()?, self.u32()?, self.u32()?));
        }
        Graph::from_parts(vlabels, edges)
            .map_err(|e| GdimError::Corrupt(format!("invalid graph: {e}")))
    }

    fn feature(&mut self) -> Result<Feature, GdimError> {
        let graph = self.graph()?;
        let code_len = self.len()?;
        let mut code = Self::vec_for(code_len);
        for _ in 0..code_len {
            code.push(DfsEdge {
                from: self.u32()?,
                to: self.u32()?,
                from_label: self.u32()?,
                elabel: self.u32()?,
                to_label: self.u32()?,
            });
        }
        let sup_len = self.len()?;
        let mut support = Self::vec_for(sup_len);
        for _ in 0..sup_len {
            support.push(self.u32()?);
        }
        Ok(Feature {
            graph,
            code: DfsCode(code),
            support,
        })
    }
}

/// Deserializes an index written by [`encode`], rebuilding derived
/// state deterministically.
pub(crate) fn decode(bytes: &[u8]) -> Result<GraphIndex, GdimError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(GdimError::Corrupt("bad magic (not a gdim index)".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(GdimError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = match r.u8()? {
        0 => Dissimilarity::MaxNorm,
        1 => Dissimilarity::AvgNorm,
        other => {
            return Err(GdimError::Corrupt(format!(
                "dissimilarity tag {other} unknown"
            )))
        }
    };
    let containment_precheck = r.flag()?;
    let node_budget = r.u64()?;
    match r.u8()? {
        0 => {}
        other => {
            return Err(GdimError::Corrupt(format!(
                "reserved byte is {other}, expected 0"
            )))
        }
    }
    // Stats are plain counters, not element counts: they must bypass
    // the allocation-guarding `len()` cap (`delta_pairs` is quadratic
    // in `n` and legitimately exceeds the file size at scale).
    let stats = IndexStats {
        mined_features: r.u64()? as usize,
        dimensions: r.u64()? as usize,
        used_dspmap: r.flag()?,
        delta_pairs: r.u64()? as usize,
        mining_time: std::time::Duration::from_nanos(r.u64()?),
        delta_time: std::time::Duration::from_nanos(r.u64()?),
        selection_time: std::time::Duration::from_nanos(r.u64()?),
    };

    let n = r.len()?;
    let mut db = Reader::vec_for(n);
    for _ in 0..n {
        db.push(r.graph()?);
    }
    let m = r.len()?;
    let mut features = Reader::vec_for(m);
    for _ in 0..m {
        let f = r.feature()?;
        if let Some(&bad) = f.support.iter().find(|&&gid| gid as usize >= n) {
            return Err(GdimError::Corrupt(format!(
                "feature support references graph {bad} of {n}"
            )));
        }
        features.push(f);
    }
    let p = r.len()?;
    let mut selected = Reader::vec_for(p);
    for _ in 0..p {
        selected.push(r.u32()?);
    }
    let wn = r.len()?;
    let mut weights = Reader::vec_for(wn);
    for _ in 0..wn {
        weights.push(r.f64()?);
    }
    if r.pos != bytes.len() {
        return Err(GdimError::Corrupt(format!(
            "{} trailing bytes after index payload",
            bytes.len() - r.pos
        )));
    }

    let delta = DeltaConfig {
        kind,
        mcs: McsOptions {
            node_budget,
            containment_precheck,
        },
        ..DeltaConfig::default()
    };
    GraphIndex::from_parts(db, features, selected, weights, delta, stats)
        // Structurally valid bytes can still describe an inconsistent
        // index (selected id outside the space, wrong weights length);
        // from a file, that is corruption too.
        .map_err(|e| GdimError::Corrupt(format!("inconsistent index payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;
    use crate::search::{Ranker, SearchRequest};

    fn index(n: usize, seed: u64) -> GraphIndex {
        let db = gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed);
        GraphIndex::build(db, IndexOptions::default().with_dimensions(20))
    }

    #[test]
    fn bytes_roundtrip_is_lossless_and_stable() {
        let idx = index(18, 5);
        let bytes = idx.to_bytes();
        let back = GraphIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.graphs(), idx.graphs());
        assert_eq!(back.dimensions(), idx.dimensions());
        assert_eq!(back.weights(), idx.weights());
        assert_eq!(back.dissimilarity(), idx.dissimilarity());
        assert_eq!(back.stats().mined_features, idx.stats().mined_features);
        // Re-encoding the reload reproduces the bytes exactly.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn reloaded_index_answers_identically() {
        let idx = index(16, 7);
        let back = GraphIndex::from_bytes(&idx.to_bytes()).unwrap();
        let queries = gdim_datagen::chem_db(3, &gdim_datagen::ChemConfig::default(), 99);
        for q in &queries {
            for ranker in [
                Ranker::Mapped,
                Ranker::Exact,
                Ranker::Refined { candidates: 6 },
            ] {
                let req = SearchRequest::topk(5).with_ranker(ranker);
                assert_eq!(
                    idx.search(q, &req).unwrap().hits,
                    back.search(q, &req).unwrap().hits,
                    "{ranker:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let idx = index(6, 9);
        let mut bytes = idx.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            GraphIndex::from_bytes(&bytes),
            Err(GdimError::Corrupt(_))
        ));
        let mut bytes = idx.to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            GraphIndex::from_bytes(&bytes),
            Err(GdimError::UnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        ));
    }

    #[test]
    fn truncation_and_trailing_garbage_are_corrupt() {
        let idx = index(6, 11);
        let bytes = idx.to_bytes();
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    GraphIndex::from_bytes(&bytes[..cut]),
                    Err(GdimError::Corrupt(_))
                ),
                "cut at {cut}"
            );
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            GraphIndex::from_bytes(&longer),
            Err(GdimError::Corrupt(_))
        ));
    }

    #[test]
    fn quadratic_delta_pairs_stat_survives_reload() {
        // delta_pairs = n(n-1)/2 exceeds the file size at realistic
        // database scale; the decoder must not apply the element-count
        // sanity cap to plain counters. Patch the persisted stat to a
        // value far beyond the file length and reload.
        let idx = index(6, 13);
        let mut bytes = idx.to_bytes();
        // Layout: magic 8 + version 4 + kind 1 + precheck 1 + budget 8
        // + mapping 1 = 23; mined_features u64 @23, dimensions u64 @31,
        // used_dspmap u8 @39, delta_pairs u64 @40.
        let huge: u64 = 1_999_000;
        assert!(huge > bytes.len() as u64);
        bytes[40..48].copy_from_slice(&huge.to_le_bytes());
        let back = GraphIndex::from_bytes(&bytes).expect("counters bypass the length cap");
        assert_eq!(back.stats().delta_pairs, huge as usize);
    }

    #[test]
    fn inconsistent_payload_surfaces_as_corrupt() {
        // Structurally parseable bytes whose selected ids point outside
        // the feature space must be Corrupt, not DimensionOutOfRange —
        // callers quarantine index files by matching on Corrupt.
        let idx = index(8, 15);
        let p = idx.dimensions().len();
        let wn = idx.weights().len();
        assert!(p > 0);
        let mut bytes = idx.to_bytes();
        // The selected ids are the p u32s immediately before the
        // weights block (8-byte count + 8 bytes per weight) at the end.
        let sel_start = bytes.len() - (8 + 8 * wn) - 4 * p;
        bytes[sel_start..sel_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match GraphIndex::from_bytes(&bytes) {
            Err(GdimError::Corrupt(msg)) => {
                assert!(msg.contains("inconsistent"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_index_roundtrips() {
        let idx = GraphIndex::build(Vec::new(), IndexOptions::default());
        let back = GraphIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.to_bytes(), idx.to_bytes());
    }
}

//! **Sample**: `p` features drawn uniformly at random — the cheap
//! baseline of §6, whose precision the paper reports at roughly half of
//! DSPM's with a much higher feature-correlation score (Fig. 2).

use gdim_core::FeatureSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Selects `min(p, m)` features uniformly at random (sorted ids,
/// deterministic for a seed).
pub fn sample_select(space: &FeatureSpace, p: usize, seed: u64) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..space.num_features() as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(p.min(space.num_features()));
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn space() -> FeatureSpace {
        let db = gdim_datagen::chem_db(15, &gdim_datagen::ChemConfig::default(), 2);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
        );
        FeatureSpace::build(db.len(), feats)
    }

    #[test]
    fn selects_p_distinct_features() {
        let s = space();
        let p = s.num_features().min(7);
        let sel = sample_select(&s, p, 3);
        assert_eq!(sel.len(), p);
        assert!(sel.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let s = space();
        let p = s.num_features().min(8);
        assert_eq!(sample_select(&s, p, 1), sample_select(&s, p, 1));
        if s.num_features() > p {
            // Different seeds usually pick different sets.
            let differs = (2..10).any(|seed| sample_select(&s, p, seed) != sample_select(&s, p, 1));
            assert!(differs);
        }
    }

    #[test]
    fn oversized_p_returns_all() {
        let s = space();
        assert_eq!(sample_select(&s, 10_000, 0).len(), s.num_features());
    }
}

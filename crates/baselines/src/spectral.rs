//! Shared machinery for the spectral feature-selection baselines
//! (MCFS/UDFS/NDFS): the graphs-as-points data matrix, kNN affinity
//! graphs with heat-kernel weights, Laplacians, and the spectral
//! embedding (generalized eigenproblem `L y = λ D y`).

use gdim_core::FeatureSpace;
use gdim_linalg::{top_eigenpairs, Mat};

/// Binary data matrix `X` (`n × m`): row `i` is graph `g_i`'s feature
/// vector `y_i`.
pub fn data_matrix(space: &FeatureSpace) -> Mat {
    let (n, m) = (space.num_graphs(), space.num_features());
    let mut x = Mat::zeros(n, m);
    for i in 0..n {
        for r in space.row(i).iter_ones() {
            x[(i, r)] = 1.0;
        }
    }
    x
}

/// Column-centered copy of `x` (features get zero mean).
pub fn center_columns(x: &Mat) -> Mat {
    let (n, m) = (x.rows(), x.cols());
    let mut out = x.clone();
    for j in 0..m {
        let mean: f64 = (0..n).map(|i| x[(i, j)]).sum::<f64>() / n.max(1) as f64;
        for i in 0..n {
            out[(i, j)] -= mean;
        }
    }
    out
}

/// Symmetric kNN affinity matrix with heat-kernel weights
/// (`W_ij = exp(−‖x_i − x_j‖² / 2σ²)` when `j ∈ kNN(i)` or vice versa;
/// `σ²` = mean kNN squared distance). `k` is clamped to `n − 1`.
pub fn knn_graph(x: &Mat, k: usize) -> Mat {
    let n = x.rows();
    let k = k.clamp(1, n.saturating_sub(1).max(1));
    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let dist: f64 = x
                .row(i)
                .iter()
                .zip(x.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }
    // kNN sets and bandwidth.
    let mut neighbor = vec![false; n * n];
    let mut sigma_acc = 0.0;
    let mut sigma_cnt = 0usize;
    for i in 0..n {
        let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        order.sort_by(|&a, &b| {
            d2[i * n + a]
                .partial_cmp(&d2[i * n + b])
                .expect("finite")
                .then(a.cmp(&b))
        });
        for &j in order.iter().take(k) {
            neighbor[i * n + j] = true;
            sigma_acc += d2[i * n + j];
            sigma_cnt += 1;
        }
    }
    let sigma_sq = (sigma_acc / sigma_cnt.max(1) as f64).max(1e-12);
    let mut w = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j && (neighbor[i * n + j] || neighbor[j * n + i]) {
                w[(i, j)] = (-d2[i * n + j] / (2.0 * sigma_sq)).exp();
            }
        }
    }
    w
}

/// Unnormalized Laplacian `L = D − W`.
pub fn laplacian(w: &Mat) -> Mat {
    let n = w.rows();
    let mut l = w.scale(-1.0);
    for i in 0..n {
        let deg: f64 = w.row(i).iter().sum();
        l[(i, i)] = deg;
    }
    l
}

/// Spectral embedding: the `kdim` non-trivial generalized eigenvectors
/// of `L y = λ D y` with smallest eigenvalues, computed as the leading
/// eigenvectors of `D^{-1/2} W D^{-1/2}` mapped back through `D^{-1/2}`
/// (the constant leading eigenvector is dropped). Returns `n × kdim`.
pub fn spectral_embedding(w: &Mat, kdim: usize, iters: usize) -> Mat {
    let n = w.rows();
    let deg: Vec<f64> = (0..n)
        .map(|i| w.row(i).iter().sum::<f64>().max(1e-12))
        .collect();
    let mut s = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if w[(i, j)] != 0.0 {
                s[(i, j)] = w[(i, j)] / (deg[i] * deg[j]).sqrt();
            }
        }
    }
    let want = (kdim + 1).min(n);
    let pairs = top_eigenpairs(&s, want, iters);
    let mut y = Mat::zeros(n, kdim.min(n.saturating_sub(1)));
    for c in 0..y.cols() {
        for i in 0..n {
            y[(i, c)] = pairs.vectors[(i, c + 1)] / deg[i].sqrt();
        }
    }
    y
}

/// Row ℓ2-norms of a matrix (the ℓ2,1 scores of UDFS/NDFS).
pub fn row_norms(w: &Mat) -> Vec<f64> {
    (0..w.rows())
        .map(|i| w.row(i).iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect()
}

/// Top-`p` indices by descending score (ties by index), sorted ascending.
pub fn top_by_score(scores: &[f64], p: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("finite")
            .then(a.cmp(&b))
    });
    ids.truncate(p.min(scores.len()));
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn space() -> FeatureSpace {
        let db = gdim_datagen::chem_db(20, &gdim_datagen::ChemConfig::default(), 12);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
        );
        FeatureSpace::build(db.len(), feats)
    }

    #[test]
    fn data_matrix_matches_rows() {
        let s = space();
        let x = data_matrix(&s);
        assert_eq!(x.rows(), s.num_graphs());
        assert_eq!(x.cols(), s.num_features());
        for i in 0..s.num_graphs() {
            for r in 0..s.num_features() {
                assert_eq!(x[(i, r)] == 1.0, s.row(i).get(r));
            }
        }
    }

    #[test]
    fn centered_columns_have_zero_mean() {
        let s = space();
        let xc = center_columns(&data_matrix(&s));
        for j in 0..xc.cols() {
            let mean: f64 = (0..xc.rows()).map(|i| xc[(i, j)]).sum::<f64>();
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn knn_graph_is_symmetric_nonnegative() {
        let s = space();
        let w = knn_graph(&data_matrix(&s), 5);
        assert!(w.is_symmetric(1e-12));
        for i in 0..w.rows() {
            assert_eq!(w[(i, i)], 0.0);
            assert!(w.row(i).iter().all(|&x| (0.0..=1.0).contains(&x)));
            assert!(w.row(i).iter().any(|&x| x > 0.0), "row {i} connected");
        }
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let s = space();
        let l = laplacian(&knn_graph(&data_matrix(&s), 4));
        for i in 0..l.rows() {
            let sum: f64 = l.row(i).iter().sum();
            assert!(sum.abs() < 1e-9);
        }
    }

    #[test]
    fn embedding_shape_and_finiteness() {
        let s = space();
        let w = knn_graph(&data_matrix(&s), 5);
        let y = spectral_embedding(&w, 3, 300);
        assert_eq!(y.rows(), s.num_graphs());
        assert_eq!(y.cols(), 3);
        assert!(y.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn top_by_score_selects_largest() {
        let scores = [0.1, 5.0, 3.0, 5.0];
        assert_eq!(top_by_score(&scores, 2), vec![1, 3]);
        assert_eq!(top_by_score(&scores, 10), vec![0, 1, 2, 3]);
    }
}

//! **Original**: every frequent subgraph is a dimension — the
//! no-selection baseline of §6. The paper uses it to show that the raw
//! frequent feature set is "severely unbalanced" (anti-monotonicity
//! makes sub-patterns of every frequent pattern frequent too), hurting
//! both quality and query time (Fig. 4, Fig. 7a).

use gdim_core::FeatureSpace;

/// Selects all `m` features (ids in ascending order).
pub fn original_select(space: &FeatureSpace) -> Vec<u32> {
    (0..space.num_features() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    #[test]
    fn selects_everything_in_order() {
        let db = gdim_datagen::chem_db(10, &gdim_datagen::ChemConfig::default(), 1);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.3)).with_max_edges(2),
        );
        let space = FeatureSpace::build(db.len(), feats);
        let sel = original_select(&space);
        assert_eq!(sel.len(), space.num_features());
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }
}

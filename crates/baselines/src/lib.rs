//! # gdim-baselines — the seven comparison algorithms of §6
//!
//! The paper evaluates DSPM against seven ways of choosing the mapped
//! dimensions from the frequent feature set `F`:
//!
//! | Name | §6 description | Module |
//! |------|----------------|--------|
//! | Original | all frequent subgraphs as dimensions | [`original`] |
//! | Sample | `p` uniformly sampled features | [`sample`] |
//! | SFS | sequential forward selection minimizing the stress objective \[21\] | [`sfs`] |
//! | MICI | feature-similarity clustering via the maximal information compression index \[24\] | [`mici`] |
//! | MCFS | multi-cluster spectral feature selection (spectral embedding + per-eigenvector LASSO) \[27\] | [`mcfs`] |
//! | UDFS | ℓ2,1-regularized discriminative feature selection \[28\] | [`udfs`] |
//! | NDFS | nonnegative spectral analysis + ℓ2,1 feature selection \[29\] | [`ndfs`] |
//!
//! All selectors consume the same [`FeatureSpace`](gdim_core::FeatureSpace)
//! and return feature-id lists compatible with
//! [`MappedDatabase::new`](gdim_core::MappedDatabase::new), so the
//! bench harness treats every algorithm identically.
//!
//! The spectral trio (MCFS/UDFS/NDFS) follows the published update rules
//! on top of `gdim-linalg`; UDFS's local-patch scatter is approximated
//! by the kNN-graph Laplacian scatter (documented in DESIGN.md).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mcfs;
pub mod mici;
pub mod ndfs;
pub mod original;
pub mod sample;
pub mod sfs;
pub mod spectral;
pub mod udfs;

pub use mcfs::{mcfs_select, McfsConfig};
pub use mici::{mici_select, MiciConfig};
pub use ndfs::{ndfs_select, NdfsConfig};
pub use original::original_select;
pub use sample::sample_select;
pub use sfs::{sfs_select, SfsConfig};
pub use udfs::{udfs_select, UdfsConfig};

//! **SFS** — sequential forward selection [Fukunaga 1990]: greedily add
//! the feature that most decreases the stress objective
//! `E(S) = Σ_{i<j} (d_S(i,j) − δ_ij)²` with the paper's binary mapping
//! `d_S(i,j) = √(|{r ∈ S : y_ir ≠ y_jr}| / |S|)`.
//!
//! Each step evaluates every remaining candidate against every graph
//! pair — `O(p·m·n²)` total, the most expensive baseline by far (the
//! paper reports it failing to finish 2k graphs within 5 hours, Exp-6).
//! The Hamming counts are maintained incrementally so a candidate
//! evaluation costs one pass over the pairs.
//!
//! §6 also observes SFS performing *worst* in quality: the objective is
//! non-monotonic in the feature set, so the greedy gets stuck in poor
//! local minima — reproduced by our harness.

use gdim_core::{DeltaMatrix, FeatureSpace};

/// Configuration for [`sfs_select`].
#[derive(Debug, Clone)]
pub struct SfsConfig {
    /// Number of features to select.
    pub p: usize,
}

/// Greedy forward selection minimizing the stress objective.
pub fn sfs_select(space: &FeatureSpace, delta: &DeltaMatrix, cfg: &SfsConfig) -> Vec<u32> {
    let n = space.num_graphs();
    let m = space.num_features();
    let p = cfg.p.min(m);
    assert_eq!(delta.n(), n);
    let pairs = n * n.saturating_sub(1) / 2;

    // Hamming distance over the selected set, per pair (incremental).
    let mut ham = vec![0u32; pairs];
    let mut selected: Vec<u32> = Vec::with_capacity(p);
    let mut in_set = vec![false; m];

    // Flattened pair walk order: (i, j) for i < j, row-major.
    let deltas = delta.condensed();

    for step in 0..p {
        let size = (step + 1) as f64;
        let mut best: Option<(f64, u32)> = None;
        for (r, _) in in_set.iter().enumerate().filter(|(_, &used)| !used) {
            let row = space.if_list(r);
            let mut contains = vec![false; n];
            for &g in row {
                contains[g as usize] = true;
            }
            let mut err = 0.0;
            let mut idx = 0usize;
            for i in 0..n {
                let ci = contains[i];
                for &cj in &contains[i + 1..n] {
                    let h = ham[idx] + u32::from(ci != cj);
                    let d = (h as f64 / size).sqrt();
                    let diff = d - deltas[idx];
                    err += diff * diff;
                    idx += 1;
                }
            }
            if best.is_none_or(|(b, _)| err < b) {
                best = Some((err, r as u32));
            }
        }
        let Some((_, chosen)) = best else { break };
        in_set[chosen as usize] = true;
        selected.push(chosen);
        // Fold the chosen feature into the Hamming counts.
        let mut contains = vec![false; n];
        for &g in space.if_list(chosen as usize) {
            contains[g as usize] = true;
        }
        let mut idx = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                ham[idx] += u32::from(contains[i] != contains[j]);
                idx += 1;
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_core::DeltaConfig;
    use gdim_mining::{mine, MinerConfig, Support};

    fn setup() -> (FeatureSpace, DeltaMatrix) {
        let db = gdim_datagen::chem_db(15, &gdim_datagen::ChemConfig::default(), 4);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
        );
        let space = FeatureSpace::build(db.len(), feats);
        let delta = DeltaMatrix::compute(&db, &DeltaConfig::default());
        (space, delta)
    }

    #[test]
    fn selects_p_distinct_features_in_greedy_order() {
        let (space, delta) = setup();
        let p = space.num_features().min(6);
        let sel = sfs_select(&space, &delta, &SfsConfig { p });
        assert_eq!(sel.len(), p);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p, "no duplicates");
    }

    #[test]
    fn first_pick_minimizes_single_feature_objective() {
        let (space, delta) = setup();
        let sel = sfs_select(&space, &delta, &SfsConfig { p: 1 });
        // Recompute the single-feature objective for every feature.
        let n = space.num_graphs();
        let objective = |r: usize| {
            let mut contains = vec![false; n];
            for &g in space.if_list(r) {
                contains[g as usize] = true;
            }
            let mut err = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    let d = if contains[i] != contains[j] { 1.0 } else { 0.0 };
                    let diff = d - delta.get(i, j);
                    err += diff * diff;
                }
            }
            err
        };
        let chosen = objective(sel[0] as usize);
        for r in 0..space.num_features() {
            assert!(chosen <= objective(r) + 1e-12, "feature {r} beats pick");
        }
    }

    #[test]
    fn deterministic() {
        let (space, delta) = setup();
        let cfg = SfsConfig { p: 5 };
        assert_eq!(
            sfs_select(&space, &delta, &cfg),
            sfs_select(&space, &delta, &cfg)
        );
    }
}

//! **MCFS** — unsupervised feature selection for multi-cluster data
//! [Cai, Zhang, He; KDD 2010]. Two steps:
//!
//! 1. Spectral embedding: the `K` smallest non-trivial generalized
//!    eigenvectors of the kNN-graph Laplacian capture the data's
//!    multi-cluster structure.
//! 2. For each eigenvector `y_k`, solve the ℓ1-regularized regression
//!    `min_a ‖y_k − X a‖² + λ‖a‖₁` and score feature `j` by
//!    `MCFS(j) = max_k |a_{k,j}|`; keep the top `p`.
//!
//! The paper's §6 uses the authors' defaults (neighborhood size 5) and
//! reports MCFS as the fastest baseline, with quality below DSPM since
//! it "only selects the most informative features and does not consider
//! the graph dissimilarity".

use gdim_core::FeatureSpace;
use gdim_linalg::lasso_coordinate_descent;

use crate::spectral::{data_matrix, knn_graph, spectral_embedding, top_by_score};

/// Configuration for [`mcfs_select`].
#[derive(Debug, Clone)]
pub struct McfsConfig {
    /// Number of features to select.
    pub p: usize,
    /// Number of spectral-embedding dimensions `K` (cluster count).
    pub clusters: usize,
    /// kNN-graph neighborhood size (the paper's common default: 5).
    pub knn: usize,
    /// ℓ1 penalty; `0.0` picks `0.01 · max_j |x_jᵀ y_k|` automatically.
    pub lambda: f64,
}

impl McfsConfig {
    /// Paper-style defaults: 5 clusters, 5-NN graph, automatic λ.
    pub fn new(p: usize) -> Self {
        McfsConfig {
            p,
            clusters: 5,
            knn: 5,
            lambda: 0.0,
        }
    }
}

/// Runs MCFS, returning `min(p, m)` feature ids (ascending).
pub fn mcfs_select(space: &FeatureSpace, cfg: &McfsConfig) -> Vec<u32> {
    let m = space.num_features();
    let x = data_matrix(space);
    let w = knn_graph(&x, cfg.knn);
    let kdim = cfg
        .clusters
        .clamp(1, space.num_graphs().saturating_sub(2).max(1));
    let y = spectral_embedding(&w, kdim, 300);

    let mut scores = vec![0.0f64; m];
    for k in 0..y.cols() {
        let yk = y.col(k);
        let lambda = if cfg.lambda > 0.0 {
            cfg.lambda
        } else {
            auto_lambda(&x, &yk)
        };
        let beta = lasso_coordinate_descent(&x, &yk, lambda, 500, 1e-8);
        for (s, b) in scores.iter_mut().zip(&beta) {
            *s = s.max(b.abs());
        }
    }
    top_by_score(&scores, cfg.p)
}

fn auto_lambda(x: &gdim_linalg::Mat, y: &[f64]) -> f64 {
    let mut max_corr = 0.0f64;
    for j in 0..x.cols() {
        let corr: f64 = (0..x.rows()).map(|i| x[(i, j)] * y[i]).sum();
        max_corr = max_corr.max(corr.abs());
    }
    0.01 * max_corr.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn space() -> FeatureSpace {
        let db = gdim_datagen::chem_db(30, &gdim_datagen::ChemConfig::default(), 9);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.15)).with_max_edges(3),
        );
        FeatureSpace::build(db.len(), feats)
    }

    #[test]
    fn selects_p_sorted_distinct() {
        let s = space();
        let p = s.num_features().min(8);
        let sel = mcfs_select(&s, &McfsConfig::new(p));
        assert_eq!(sel.len(), p);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic() {
        let s = space();
        let cfg = McfsConfig::new(6);
        assert_eq!(mcfs_select(&s, &cfg), mcfs_select(&s, &cfg));
    }

    #[test]
    fn oversized_p_returns_all() {
        let s = space();
        assert_eq!(
            mcfs_select(&s, &McfsConfig::new(10_000)).len(),
            s.num_features()
        );
    }
}

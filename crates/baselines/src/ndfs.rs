//! **NDFS** — nonnegative discriminative feature selection
//! [Li et al., AAAI 2012]: jointly learn nonnegative (near-orthogonal)
//! cluster indicators `F` and a row-sparse projection `W` by minimizing
//!
//! `Tr(Fᵀ L F) + α(‖X W − F‖² + β‖W‖₂,₁) + (γ/2)‖FᵀF − I‖²,  F ≥ 0`.
//!
//! Alternating updates:
//! * `W = (XᵀX + β D_W)⁻¹ Xᵀ F` (closed form; `D_W` is the ℓ2,1
//!   reweighting diagonal);
//! * multiplicative nonnegative update of `F` from the split gradient
//!   (`L = D − A` separated into positive/negative parts, NMF-style),
//!   which keeps `F ≥ 0`;
//! * features ranked by row norms of `W`.
//!
//! `F` is initialized from spectral clustering (embedding + k-means),
//! as in the published algorithm. §6 notes NDFS's edge over MCFS on
//! the real dataset comes from cluster structure — reproduced by our
//! fragment-family generator.

use gdim_core::FeatureSpace;
use gdim_linalg::{cholesky, kmeans, Mat};

use crate::spectral::{data_matrix, knn_graph, row_norms, spectral_embedding, top_by_score};

/// Configuration for [`ndfs_select`].
#[derive(Debug, Clone)]
pub struct NdfsConfig {
    /// Number of features to select.
    pub p: usize,
    /// Number of clusters `K`.
    pub clusters: usize,
    /// kNN-graph neighborhood size.
    pub knn: usize,
    /// Regression weight α.
    pub alpha: f64,
    /// ℓ2,1 weight β.
    pub beta: f64,
    /// Orthogonality weight γ (large, per the published algorithm).
    pub gamma: f64,
    /// Alternating iterations.
    pub iters: usize,
    /// k-means seed for the `F` initialization.
    pub seed: u64,
}

impl NdfsConfig {
    /// Defaults following the published setup (5 clusters, 5-NN).
    pub fn new(p: usize) -> Self {
        NdfsConfig {
            p,
            clusters: 5,
            knn: 5,
            alpha: 1.0,
            beta: 0.1,
            gamma: 1e6,
            iters: 20,
            seed: 0,
        }
    }
}

/// Runs NDFS, returning `min(p, m)` feature ids (ascending).
pub fn ndfs_select(space: &FeatureSpace, cfg: &NdfsConfig) -> Vec<u32> {
    let n = space.num_graphs();
    let m = space.num_features();
    if m == 0 || n == 0 {
        return Vec::new();
    }
    let x = data_matrix(space);
    let a = knn_graph(&x, cfg.knn); // affinity (the L⁻ part)
    let deg: Vec<f64> = (0..n).map(|i| a.row(i).iter().sum()).collect();
    let kdim = cfg.clusters.clamp(1, n.saturating_sub(1).max(1));

    // F init: spectral clustering indicators, lifted to strictly
    // positive entries (the published initialization).
    let y = spectral_embedding(&a, kdim, 300);
    let points: Vec<Vec<f64>> = (0..n).map(|i| y.row(i).to_vec()).collect();
    let km = kmeans(&points, kdim, 50, cfg.seed);
    let mut f = Mat::zeros(n, kdim);
    for i in 0..n {
        for c in 0..kdim {
            f[(i, c)] = if km.assignment[i] == c { 1.0 } else { 0.0 } + 0.2;
        }
    }

    let xtx = x.transpose().matmul(&x);
    let mut w = Mat::zeros(m, kdim);
    let mut d_w = vec![1.0f64; m];

    for _ in 0..cfg.iters.max(1) {
        // W-step: (XᵀX + β D_W) W = Xᵀ F.
        let mut lhs = xtx.clone();
        for j in 0..m {
            lhs[(j, j)] += cfg.beta * d_w[j] + 1e-9;
        }
        let rhs = x.transpose().matmul(&f);
        let ch = cholesky(&lhs).expect("lhs is positive definite");
        w = ch.solve_mat(&rhs);
        for (dj, norm) in d_w.iter_mut().zip(row_norms(&w)) {
            *dj = 1.0 / (2.0 * norm).max(1e-9);
        }

        // F-step: multiplicative update from the split gradient.
        // ∇F = (D − A)F + α(F − XW) + γ F(FᵀF − I)
        //    = [DF + αF + γF FᵀF + α(XW)⁻] − [AF + α(XW)⁺ + γF].
        let xw = x.matmul(&w);
        let af = a.matmul(&f);
        let ftf = f.transpose().matmul(&f);
        let f_ftf = f.matmul(&ftf);
        let mut f_new = f.clone();
        for i in 0..n {
            for c in 0..kdim {
                let g_pos = xw[(i, c)].max(0.0);
                let g_neg = (-xw[(i, c)]).max(0.0);
                let pos = deg[i] * f[(i, c)]
                    + cfg.alpha * f[(i, c)]
                    + cfg.gamma * f_ftf[(i, c)]
                    + cfg.alpha * g_neg
                    + 1e-12;
                let neg = af[(i, c)] + cfg.alpha * g_pos + cfg.gamma * f[(i, c)];
                f_new[(i, c)] = f[(i, c)] * (neg / pos).sqrt().min(1e6);
            }
        }
        f = f_new;
    }

    top_by_score(&row_norms(&w), cfg.p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn space() -> FeatureSpace {
        let db = gdim_datagen::chem_db(25, &gdim_datagen::ChemConfig::default(), 19);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
        );
        FeatureSpace::build(db.len(), feats)
    }

    #[test]
    fn selects_p_sorted_distinct() {
        let s = space();
        let p = s.num_features().min(7);
        let sel = ndfs_select(&s, &NdfsConfig::new(p));
        assert_eq!(sel.len(), p);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_for_seed() {
        let s = space();
        let cfg = NdfsConfig::new(5);
        assert_eq!(ndfs_select(&s, &cfg), ndfs_select(&s, &cfg));
    }

    #[test]
    fn handles_single_cluster() {
        let s = space();
        let sel = ndfs_select(
            &s,
            &NdfsConfig {
                clusters: 1,
                ..NdfsConfig::new(4)
            },
        );
        assert_eq!(sel.len(), 4.min(s.num_features()));
    }
}

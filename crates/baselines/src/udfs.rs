//! **UDFS** — ℓ2,1-norm regularized discriminative feature selection
//! [Yang et al., IJCAI 2011]: jointly find an orthogonal projection `W`
//! (m × K) minimizing the discriminative trace `Tr(Wᵀ M W)` plus the
//! row-sparsity penalty `γ‖W‖₂,₁`, then rank features by their row
//! norms in `W`.
//!
//! The iterative algorithm alternates (a) `W` = eigenvectors of
//! `M + γD` with smallest eigenvalues, and (b) `D = diag(1/(2‖w_i‖))` —
//! the standard ℓ2,1 reweighting. Following DESIGN.md, the
//! local-patch scatter `M` is approximated with the kNN-graph Laplacian
//! scatter `M = X̃ᵀ L X̃` (same discriminative-trace structure, same
//! sparsity mechanism).

use gdim_core::FeatureSpace;
use gdim_linalg::{smallest_eigenpairs_spd, Mat};

use crate::spectral::{center_columns, data_matrix, knn_graph, laplacian, row_norms, top_by_score};

/// Configuration for [`udfs_select`].
#[derive(Debug, Clone)]
pub struct UdfsConfig {
    /// Number of features to select.
    pub p: usize,
    /// Projection dimensionality `K` (cluster count).
    pub clusters: usize,
    /// kNN-graph neighborhood size.
    pub knn: usize,
    /// ℓ2,1 regularization strength γ.
    pub gamma: f64,
    /// Reweighting iterations.
    pub iters: usize,
}

impl UdfsConfig {
    /// Defaults matching the paper's setup (5-NN, 5 clusters).
    pub fn new(p: usize) -> Self {
        UdfsConfig {
            p,
            clusters: 5,
            knn: 5,
            gamma: 0.1,
            iters: 8,
        }
    }
}

/// Runs UDFS, returning `min(p, m)` feature ids (ascending).
pub fn udfs_select(space: &FeatureSpace, cfg: &UdfsConfig) -> Vec<u32> {
    let m = space.num_features();
    if m == 0 {
        return Vec::new();
    }
    let x = center_columns(&data_matrix(space));
    let l = laplacian(&knn_graph(&x, cfg.knn));
    // M = X̃ᵀ L X̃ (m × m), symmetrized against roundoff.
    let lm = l.matmul(&x);
    let m_mat = x.transpose().matmul(&lm);
    let m_sym = m_mat.add(&m_mat.transpose()).scale(0.5);

    let kdim = cfg.clusters.clamp(1, m);
    let mut d = vec![1.0f64; m];
    let mut w = Mat::zeros(m, kdim);
    for _ in 0..cfg.iters.max(1) {
        // A = M + γD (+ small ridge so the Cholesky in the inverse
        // iteration always succeeds).
        let mut a = m_sym.clone();
        for j in 0..m {
            a[(j, j)] += cfg.gamma * d[j] + 1e-9;
        }
        let pairs =
            smallest_eigenpairs_spd(&a, kdim, 150).expect("A is positive definite by construction");
        w = pairs.vectors;
        for (dj, norm) in d.iter_mut().zip(row_norms(&w)) {
            *dj = 1.0 / (2.0 * norm).max(1e-9);
        }
    }
    top_by_score(&row_norms(&w), cfg.p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn space() -> FeatureSpace {
        let db = gdim_datagen::chem_db(25, &gdim_datagen::ChemConfig::default(), 14);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.2)).with_max_edges(3),
        );
        FeatureSpace::build(db.len(), feats)
    }

    #[test]
    fn selects_p_sorted_distinct() {
        let s = space();
        let p = s.num_features().min(6);
        let sel = udfs_select(&s, &UdfsConfig::new(p));
        assert_eq!(sel.len(), p);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic() {
        let s = space();
        let cfg = UdfsConfig::new(5);
        assert_eq!(udfs_select(&s, &cfg), udfs_select(&s, &cfg));
    }

    #[test]
    fn gamma_influences_selection_strength() {
        // With a huge γ the ℓ2,1 term dominates and rows collapse toward
        // uniform norms; the run must still produce a valid selection.
        let s = space();
        let sel = udfs_select(
            &s,
            &UdfsConfig {
                gamma: 100.0,
                ..UdfsConfig::new(5)
            },
        );
        assert_eq!(sel.len(), 5.min(s.num_features()));
    }
}

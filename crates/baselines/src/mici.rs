//! **MICI** — unsupervised feature selection by feature similarity
//! [Mitra, Murthy, Pal; TPAMI 2002\]. Feature dissimilarity is the
//! *maximal information compression index* λ₂(x, y): the smaller
//! eigenvalue of the 2×2 covariance matrix of the feature pair,
//!
//! `2λ₂ = var(x) + var(y) − √((var(x)+var(y))² − 4·var(x)·var(y)(1−ρ(x,y)²))`
//!
//! — zero iff the features are linearly dependent. The algorithm
//! repeatedly keeps the feature whose k-th nearest neighbor is closest
//! (the center of the most compact feature cluster) and discards those
//! k neighbors, shrinking k as features run out.
//!
//! The cluster granularity `k` only indirectly controls the output
//! size, so [`mici_select`] searches over `k` to land on exactly `p`
//! features, trimming/padding by retention order as a last resort (the
//! paper tunes MICI "as suggested in \[24\]" — the same knob).

use gdim_core::FeatureSpace;

/// Configuration for [`mici_select`].
#[derive(Debug, Clone)]
pub struct MiciConfig {
    /// Number of features to select.
    pub p: usize,
}

/// Runs MICI feature clustering, returning exactly `min(p, m)` features.
pub fn mici_select(space: &FeatureSpace, cfg: &MiciConfig) -> Vec<u32> {
    let m = space.num_features();
    let p = cfg.p.min(m);
    if p == m {
        return (0..m as u32).collect();
    }
    if p == 0 {
        return Vec::new();
    }

    let sim = pairwise_lambda2(space);

    // k ≈ m/p − 1 keeps roughly p clusters; search nearby k for an exact fit.
    let k0 = (m / p.max(1)).saturating_sub(1).max(1);
    let mut best: Option<Vec<u32>> = None;
    for k in candidate_ks(k0, m) {
        let kept = cluster_once(m, &sim, k);
        match &best {
            _ if kept.len() == p => {
                best = Some(kept);
                break;
            }
            Some(b)
                if (kept.len() as i64 - p as i64).abs() >= (b.len() as i64 - p as i64).abs() => {}
            _ => best = Some(kept),
        }
    }
    let mut kept = best.expect("at least one clustering ran");
    if kept.len() > p {
        kept.truncate(p); // keep earliest-retained (most compact) clusters
    } else {
        // Pad with the unretained features most dissimilar to the kept set.
        let mut rest: Vec<(u32, f64)> = (0..m as u32)
            .filter(|r| !kept.contains(r))
            .map(|r| {
                let dmin = kept
                    .iter()
                    .map(|&kx| sim[r as usize * m + kx as usize])
                    .fold(f64::INFINITY, f64::min);
                (r, dmin)
            })
            .collect();
        rest.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        kept.extend(rest.into_iter().take(p - kept.len()).map(|(r, _)| r));
    }
    kept.sort_unstable();
    kept
}

fn candidate_ks(k0: usize, m: usize) -> Vec<usize> {
    let mut ks: Vec<usize> = Vec::new();
    for delta in 0..6 {
        for k in [k0 + delta, k0.saturating_sub(delta)] {
            let k = k.clamp(1, m.saturating_sub(1).max(1));
            if !ks.contains(&k) {
                ks.push(k);
            }
        }
    }
    ks
}

/// One pass of the Mitra et al. clustering with fixed initial `k`.
fn cluster_once(m: usize, sim: &[f64], k_init: usize) -> Vec<u32> {
    let mut alive: Vec<bool> = vec![true; m];
    let mut alive_count = m;
    let mut k = k_init;
    let mut kept: Vec<u32> = Vec::new();
    while alive_count > 0 {
        k = k.min(alive_count.saturating_sub(1));
        if k == 0 {
            // Singletons remain: keep them all.
            kept.extend((0..m as u32).filter(|&r| alive[r as usize]));
            break;
        }
        // Feature whose k-th nearest alive neighbor is closest.
        let mut best: Option<(f64, u32, Vec<u32>)> = None;
        for r in 0..m {
            if !alive[r] {
                continue;
            }
            let mut dists: Vec<(f64, u32)> = (0..m)
                .filter(|&s| s != r && alive[s])
                .map(|s| (sim[r * m + s], s as u32))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
            let radius = dists[k - 1].0;
            if best.as_ref().is_none_or(|(b, _, _)| radius < *b) {
                let neighbors = dists[..k].iter().map(|&(_, s)| s).collect();
                best = Some((radius, r as u32, neighbors));
            }
        }
        let (_, center, neighbors) = best.expect("alive features exist");
        kept.push(center);
        alive[center as usize] = false;
        alive_count -= 1;
        for s in neighbors {
            if alive[s as usize] {
                alive[s as usize] = false;
                alive_count -= 1;
            }
        }
    }
    kept
}

/// Dense λ₂ matrix between all feature pairs (row-major `m × m`).
fn pairwise_lambda2(space: &FeatureSpace) -> Vec<f64> {
    let m = space.num_features();
    let n = space.num_graphs() as f64;
    // Binary columns: mean = s/n, var = mean(1−mean),
    // E[xy] = |sup_a ∩ sup_b| / n.
    let means: Vec<f64> = (0..m).map(|r| space.support_count(r) as f64 / n).collect();
    let vars: Vec<f64> = means.iter().map(|&mu| mu * (1.0 - mu)).collect();
    let mut sim = vec![0.0f64; m * m];
    for a in 0..m {
        for b in a + 1..m {
            let inter = intersection_size(space.if_list(a), space.if_list(b)) as f64;
            let cov = inter / n - means[a] * means[b];
            let (va, vb) = (vars[a], vars[b]);
            let rho_sq = if va > 0.0 && vb > 0.0 {
                (cov * cov / (va * vb)).min(1.0)
            } else {
                1.0 // constant features are "identical" to everything
            };
            let sum = va + vb;
            let disc = (sum * sum - 4.0 * va * vb * (1.0 - rho_sq)).max(0.0);
            let lambda2 = 0.5 * (sum - disc.sqrt());
            sim[a * m + b] = lambda2;
            sim[b * m + a] = lambda2;
        }
    }
    sim
}

fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut out) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_mining::{mine, MinerConfig, Support};

    fn space() -> FeatureSpace {
        let db = gdim_datagen::chem_db(25, &gdim_datagen::ChemConfig::default(), 8);
        let feats = mine(
            &db,
            &MinerConfig::new(Support::Relative(0.15)).with_max_edges(3),
        );
        FeatureSpace::build(db.len(), feats)
    }

    #[test]
    fn returns_exactly_p_features() {
        let s = space();
        for p in [1, 3, s.num_features() / 2, s.num_features()] {
            let sel = mici_select(&s, &MiciConfig { p });
            assert_eq!(sel.len(), p.min(s.num_features()), "p = {p}");
            assert!(sel.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn lambda2_zero_for_identical_supports() {
        let s = space();
        let sim = pairwise_lambda2(&s);
        let m = s.num_features();
        for a in 0..m {
            for b in a + 1..m {
                if s.if_list(a) == s.if_list(b) {
                    assert!(sim[a * m + b] < 1e-12, "identical features λ2 = 0");
                }
                assert!(sim[a * m + b] >= -1e-12, "λ2 is non-negative");
            }
        }
    }

    #[test]
    fn deterministic() {
        let s = space();
        let cfg = MiciConfig { p: 5 };
        assert_eq!(mici_select(&s, &cfg), mici_select(&s, &cfg));
    }
}

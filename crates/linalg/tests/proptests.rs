//! Property tests for the linear-algebra substrate: factorization and
//! solver correctness on random well-conditioned inputs, k-means
//! invariants, LASSO optimality conditions.

use proptest::prelude::*;

use gdim_linalg::{cholesky, jacobi_eigen, kmeans, lasso_coordinate_descent, Mat};

/// Random SPD matrix `A = MᵀM + I` (well-conditioned by construction).
fn spd(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let m = Mat::from_vec(n, n, data);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cholesky_reconstructs_and_solves(a in spd(5), x in proptest::collection::vec(-3.0f64..3.0, 5)) {
        let ch = cholesky(&a).expect("SPD by construction");
        let l = ch.factor();
        prop_assert!(l.matmul(&l.transpose()).max_abs_diff(&a) < 1e-8);
        let b = a.mul_vec(&x);
        let got = ch.solve(&b);
        for (g, want) in got.iter().zip(&x) {
            prop_assert!((g - want).abs() < 1e-6, "{g} vs {want}");
        }
    }

    #[test]
    fn jacobi_eigen_residual_and_trace(a in spd(6)) {
        let e = jacobi_eigen(&a, 1e-13, 100);
        // Trace preserved.
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7);
        // Eigenpairs satisfy A v = λ v.
        for k in 0..6 {
            let v: Vec<f64> = (0..6).map(|i| e.vectors[(i, k)]).collect();
            let av = a.mul_vec(&v);
            for i in 0..6 {
                prop_assert!((av[i] - e.values[k] * v[i]).abs() < 1e-6);
            }
        }
        // SPD: all eigenvalues ≥ 1 (A = MᵀM + I).
        prop_assert!(e.values.iter().all(|&l| l > 0.99));
    }

    #[test]
    fn kmeans_invariants(
        points in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 3),
            2..40
        ),
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let r = kmeans(&points, k, 30, seed);
        let k_eff = k.min(points.len());
        prop_assert_eq!(r.assignment.len(), points.len());
        prop_assert!(r.assignment.iter().all(|&c| c < k_eff));
        prop_assert!(r.inertia >= 0.0);
        // Each point is assigned to its nearest centroid.
        for (i, p) in points.iter().enumerate() {
            let d = |c: &Vec<f64>| -> f64 {
                p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let mine = d(&r.centroids[r.assignment[i]]);
            for c in &r.centroids {
                prop_assert!(mine <= d(c) + 1e-9);
            }
        }
    }

    #[test]
    fn lasso_kkt_conditions(
        data in proptest::collection::vec(-2.0f64..2.0, 6 * 3),
        y in proptest::collection::vec(-2.0f64..2.0, 6),
        lambda in 0.01f64..1.0,
    ) {
        let x = Mat::from_vec(6, 3, data);
        let beta = lasso_coordinate_descent(&x, &y, lambda, 5_000, 1e-12);
        // KKT: |x_jᵀ r| ≤ λ for zero coefficients, = λ·sign for nonzero.
        let mut r = y.clone();
        for i in 0..6 {
            for j in 0..3 {
                r[i] -= x[(i, j)] * beta[j];
            }
        }
        for j in 0..3 {
            let col_norm: f64 = (0..6).map(|i| x[(i, j)] * x[(i, j)]).sum();
            if col_norm < 1e-12 {
                continue;
            }
            let corr: f64 = (0..6).map(|i| x[(i, j)] * r[i]).sum();
            if beta[j] == 0.0 {
                prop_assert!(corr.abs() <= lambda + 1e-6, "KKT violated at zero coef");
            } else {
                prop_assert!(
                    (corr - lambda * beta[j].signum()).abs() < 1e-6,
                    "KKT violated at active coef: corr={corr}, λ={lambda}"
                );
            }
        }
    }
}

//! # gdim-linalg — dense linear-algebra substrate
//!
//! The numerical building blocks required by the spectral
//! feature-selection baselines (MCFS, UDFS, NDFS) and by DSPMap's
//! partitioning, implemented from scratch (the workspace's allowed
//! dependency set has no linear-algebra crate):
//!
//! * [`Mat`] — dense row-major `f64` matrices with the usual operations;
//! * [`cholesky`] / [`solve_spd`] — SPD factorization and solves;
//! * [`jacobi_eigen`] — full symmetric eigendecomposition (small
//!   matrices, also the ground truth for tests);
//! * [`top_eigenpairs`] — subspace (orthogonal) iteration for the
//!   leading eigenpairs of large symmetric matrices;
//! * [`smallest_eigenpairs_spd`] — inverse subspace iteration via
//!   Cholesky for the trailing eigenpairs of SPD matrices;
//! * [`kmeans`] — seeded k-means with k-means++ initialization;
//! * [`lasso_coordinate_descent`] — ℓ1-regularized least squares.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod decomp;
mod eigen;
mod kmeans;
mod lasso;
mod matrix;

pub use decomp::{cholesky, solve_spd, Cholesky};
pub use eigen::{jacobi_eigen, smallest_eigenpairs_spd, top_eigenpairs, EigenPairs};
pub use kmeans::{kmeans, KmeansResult};
pub use lasso::lasso_coordinate_descent;
pub use matrix::Mat;

//! Seeded k-means with k-means++ initialization. Used by DSPMap's
//! Partition step (clustering sampled binary vectors into the two
//! center sets `Ol`/`Or`) and by the spectral baselines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Cluster centroids, row-major `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Lloyd's algorithm with k-means++ seeding.
///
/// `points` are equal-length rows; `k ≥ 1`; deterministic for a fixed
/// `seed`. Empty clusters are re-seeded with the point farthest from its
/// centroid.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> KmeansResult {
    assert!(k >= 1, "k must be at least 1");
    assert!(!points.is_empty(), "kmeans requires at least one point");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centroids = plus_plus_init(points, k, &mut rng);
    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;

    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest(p, &centroids).0;
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fitting point.
                let (far, _) = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = nearest(a, &centroids).1;
                        let db = nearest(b, &centroids).1;
                        da.partial_cmp(&db).unwrap()
                    })
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
            } else {
                for (cd, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cd = s / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assignment[i]]))
        .sum();
    KmeansResult {
        assignment,
        centroids,
        inertia,
        iterations,
    }
}

fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with a centroid; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_blobs() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            points.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let r = kmeans(&points, 2, 50, 7);
        // All even indices together, all odd together.
        let c0 = r.assignment[0];
        for i in (0..20).step_by(2) {
            assert_eq!(r.assignment[i], c0);
        }
        for i in (1..20).step_by(2) {
            assert_ne!(r.assignment[i], c0);
        }
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let points: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&points, 3, 50, 42);
        let b = kmeans(&points, 3, 50, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_capped_by_point_count() {
        let points = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&points, 5, 10, 0);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn identical_points_fine() {
        let points = vec![vec![3.0, 3.0]; 8];
        let r = kmeans(&points, 2, 10, 1);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&points, 1, 10, 3);
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
    }
}

//! ℓ1-regularized least squares (LASSO) via cyclic coordinate descent.
//!
//! MCFS [Cai et al., KDD 2010] solves, for each spectral embedding
//! vector `y_k`, `min_a ‖y_k − X a‖² + λ‖a‖₁` and scores features by the
//! magnitude of their coefficients. This is the solver backing that
//! step.

use crate::matrix::Mat;

/// Solves `min_a 0.5·‖y − X a‖² + lambda·‖a‖₁` by cyclic coordinate
/// descent. Returns the coefficient vector (length `X.cols()`).
///
/// Converges for any `lambda ≥ 0`; columns of all-zero variance get
/// zero coefficients. Deterministic.
pub fn lasso_coordinate_descent(
    x: &Mat,
    y: &[f64],
    lambda: f64,
    max_iters: usize,
    tol: f64,
) -> Vec<f64> {
    let n = x.rows();
    let p = x.cols();
    assert_eq!(y.len(), n, "shape mismatch");
    let mut beta = vec![0.0; p];
    // Precompute column norms ‖x_j‖².
    let col_sq: Vec<f64> = (0..p)
        .map(|j| (0..n).map(|i| x[(i, j)] * x[(i, j)]).sum())
        .collect();
    // Residual r = y − X·beta (beta = 0 initially).
    let mut r: Vec<f64> = y.to_vec();

    for _ in 0..max_iters {
        let mut max_change: f64 = 0.0;
        for j in 0..p {
            if col_sq[j] <= 1e-300 {
                continue;
            }
            // rho = x_jᵀ(r + x_j·beta_j): correlation with j's partial residual.
            let mut rho = 0.0;
            for i in 0..n {
                rho += x[(i, j)] * r[i];
            }
            rho += col_sq[j] * beta[j];
            let new_beta = soft_threshold(rho, lambda) / col_sq[j];
            let delta = new_beta - beta[j];
            if delta != 0.0 {
                for i in 0..n {
                    r[i] -= x[(i, j)] * delta;
                }
                beta[j] = new_beta;
                max_change = max_change.max(delta.abs());
            }
        }
        if max_change < tol {
            break;
        }
    }
    beta
}

#[inline]
fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lambda_recovers_least_squares() {
        // y = 2·x0 − 3·x1 exactly, well-conditioned design.
        let x = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let beta_true = [2.0, -3.0];
        let y: Vec<f64> = (0..4)
            .map(|i| x[(i, 0)] * beta_true[0] + x[(i, 1)] * beta_true[1])
            .collect();
        let beta = lasso_coordinate_descent(&x, &y, 0.0, 2000, 1e-12);
        assert!((beta[0] - 2.0).abs() < 1e-8);
        assert!((beta[1] + 3.0).abs() < 1e-8);
    }

    #[test]
    fn large_lambda_kills_all_coefficients() {
        let x = Mat::from_rows(&[&[1.0, 0.5], &[0.3, 1.0], &[1.0, 1.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let beta = lasso_coordinate_descent(&x, &y, 1e6, 100, 1e-12);
        assert_eq!(beta, vec![0.0, 0.0]);
    }

    #[test]
    fn lasso_selects_relevant_feature() {
        // y depends only on x0; x1 is noise-free junk. Moderate lambda
        // must zero out x1 but keep x0.
        let x = Mat::from_rows(&[&[1.0, 0.1], &[2.0, -0.1], &[3.0, 0.05], &[4.0, -0.02]]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let beta = lasso_coordinate_descent(&x, &y, 0.5, 2000, 1e-12);
        assert!(beta[0] > 1.5, "relevant coefficient kept: {beta:?}");
        assert!(beta[1].abs() < 0.2, "irrelevant shrunk: {beta:?}");
    }

    #[test]
    fn soft_threshold_properties() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn zero_variance_column_ignored() {
        let x = Mat::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let beta = lasso_coordinate_descent(&x, &y, 0.01, 500, 1e-12);
        assert_eq!(beta[1], 0.0);
        assert!((beta[0] - 1.0).abs() < 0.1);
    }
}

//! Symmetric eigensolvers: cyclic Jacobi (full decomposition, small
//! matrices) and subspace iteration (leading or trailing eigenpairs of
//! large matrices — what the spectral baselines need).

use crate::decomp::cholesky;
use crate::matrix::Mat;

/// A set of eigenpairs: `values[k]` corresponds to column `k` of
/// `vectors` (each column unit-norm).
#[derive(Debug, Clone)]
pub struct EigenPairs {
    /// Eigenvalues.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns (`n × k`).
    pub vectors: Mat,
}

/// Full eigendecomposition of a symmetric matrix via the cyclic Jacobi
/// method. O(n³) per sweep; intended for small matrices and as ground
/// truth for the iterative solvers. Pairs are sorted by **descending**
/// eigenvalue.
pub fn jacobi_eigen(a: &Mat, tol: f64, max_sweeps: usize) -> EigenPairs {
    assert!(a.is_symmetric(1e-9), "jacobi_eigen requires symmetry");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::EPSILON {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (col, &i) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, col)] = v[(r, i)];
        }
    }
    EigenPairs { values, vectors }
}

/// Leading `k` eigenpairs (largest eigenvalues) of a symmetric matrix by
/// subspace (orthogonal) iteration with a deterministic seed basis.
///
/// Converges geometrically at rate `|λ_{k+1}/λ_k|`; `iters` around
/// 100–300 is ample for the graph-Laplacian spectra the baselines build.
pub fn top_eigenpairs(a: &Mat, k: usize, iters: usize) -> EigenPairs {
    let n = a.rows();
    assert!(a.is_symmetric(1e-9), "top_eigenpairs requires symmetry");
    let k = k.min(n);
    let mut basis = seed_basis(n, k);
    orthonormalize(&mut basis);
    for _ in 0..iters {
        basis = a.matmul(&basis);
        orthonormalize(&mut basis);
    }
    rayleigh_ritz(a, &basis)
}

/// Trailing `k` eigenpairs (smallest eigenvalues) of a **positive
/// definite** symmetric matrix via inverse subspace iteration (one
/// Cholesky factorization, repeated solves).
pub fn smallest_eigenpairs_spd(a: &Mat, k: usize, iters: usize) -> Option<EigenPairs> {
    let n = a.rows();
    let k = k.min(n);
    let ch = cholesky(a)?;
    let mut basis = seed_basis(n, k);
    orthonormalize(&mut basis);
    for _ in 0..iters {
        basis = ch.solve_mat(&basis);
        orthonormalize(&mut basis);
    }
    let mut pairs = rayleigh_ritz(a, &basis);
    // rayleigh_ritz sorts descending; flip to ascending for "smallest".
    pairs.values.reverse();
    let mut flipped = Mat::zeros(n, k);
    for c in 0..k {
        for r in 0..n {
            flipped[(r, c)] = pairs.vectors[(r, k - 1 - c)];
        }
    }
    pairs.vectors = flipped;
    Some(pairs)
}

/// Deterministic full-rank seed basis (mixed cosine waves), avoiding an
/// RNG dependency and making iterative solvers reproducible.
fn seed_basis(n: usize, k: usize) -> Mat {
    let mut b = Mat::zeros(n, k);
    for j in 0..k {
        for i in 0..n {
            let x = (i * (j + 1)) as f64 * 0.7368 + (j as f64) * 0.311 + 0.137;
            b[(i, j)] = x.cos() + if i == j { 1.0 } else { 0.0 };
        }
    }
    b
}

/// In-place modified Gram-Schmidt on the columns.
fn orthonormalize(m: &mut Mat) {
    let (n, k) = (m.rows(), m.cols());
    for j in 0..k {
        for prev in 0..j {
            let proj: f64 = (0..n).map(|i| m[(i, j)] * m[(i, prev)]).sum();
            for i in 0..n {
                m[(i, j)] -= proj * m[(i, prev)];
            }
        }
        let norm: f64 = (0..n).map(|i| m[(i, j)] * m[(i, j)]).sum::<f64>().sqrt();
        if norm > 1e-300 {
            for i in 0..n {
                m[(i, j)] /= norm;
            }
        } else {
            // Degenerate column: replace with a unit coordinate vector.
            for i in 0..n {
                m[(i, j)] = if i == j % n { 1.0 } else { 0.0 };
            }
        }
    }
}

/// Rayleigh-Ritz projection: eigenpairs of the small matrix `BᵀAB`
/// lifted back through the basis. Sorted by descending eigenvalue.
fn rayleigh_ritz(a: &Mat, basis: &Mat) -> EigenPairs {
    let ab = a.matmul(basis);
    let small = basis.transpose().matmul(&ab);
    // Symmetrize against roundoff before Jacobi.
    let small_sym = small.add(&small.transpose()).scale(0.5);
    let inner = jacobi_eigen(&small_sym, 1e-14, 64);
    let vectors = basis.matmul(&inner.vectors);
    EigenPairs {
        values: inner.values,
        vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Mat, pairs: &EigenPairs) -> f64 {
        // max_k ‖A v_k − λ_k v_k‖∞
        let n = a.rows();
        let mut worst: f64 = 0.0;
        for (k, &lam) in pairs.values.iter().enumerate() {
            let v: Vec<f64> = (0..n).map(|i| pairs.vectors[(i, k)]).collect();
            let av = a.mul_vec(&v);
            for i in 0..n {
                worst = worst.max((av[i] - lam * v[i]).abs());
            }
        }
        worst
    }

    fn sym4() -> Mat {
        Mat::from_rows(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 3.0, 1.0, 0.0],
            &[0.0, 1.0, 2.0, 1.0],
            &[2.0, 0.0, 1.0, 5.0],
        ])
    }

    #[test]
    fn jacobi_solves_known_2x2() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a, 1e-14, 64);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(residual(&a, &e) < 1e-9);
    }

    #[test]
    fn jacobi_residual_small_on_4x4() {
        let a = sym4();
        let e = jacobi_eigen(&a, 1e-14, 64);
        assert!(residual(&a, &e) < 1e-9);
        // Trace preserved.
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        let e = jacobi_eigen(&sym4(), 1e-14, 64);
        let v = &e.vectors;
        let gram = v.transpose().matmul(v);
        assert!(gram.max_abs_diff(&Mat::identity(4)) < 1e-9);
    }

    #[test]
    fn subspace_iteration_matches_jacobi() {
        let a = sym4();
        let full = jacobi_eigen(&a, 1e-14, 64);
        let top = top_eigenpairs(&a, 2, 500);
        for k in 0..2 {
            assert!(
                (top.values[k] - full.values[k]).abs() < 1e-6,
                "λ{k}: {} vs {}",
                top.values[k],
                full.values[k]
            );
        }
        assert!(residual(&a, &top) < 1e-5);
    }

    #[test]
    fn smallest_eigenpairs_match_jacobi() {
        let a = sym4(); // SPD (diagonally dominant enough)
        let full = jacobi_eigen(&a, 1e-14, 64);
        let small = smallest_eigenpairs_spd(&a, 2, 300).unwrap();
        let mut want = full.values.clone();
        want.reverse();
        for (got, want) in small.values.iter().zip(&want).take(2) {
            assert!((got - want).abs() < 1e-6);
        }
        assert!(residual(&a, &small) < 1e-5);
    }

    #[test]
    fn larger_random_symmetric_consistency() {
        // Deterministic pseudo-random symmetric 12×12.
        let n = 12;
        let mut a = Mat::zeros(n, n);
        let mut state = 0x12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..=i {
                let x = next();
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let full = jacobi_eigen(&a, 1e-14, 100);
        assert!(residual(&a, &full) < 1e-8);
        let top = top_eigenpairs(&a, 3, 800);
        // Subspace iteration converges to the largest |λ|; compare against
        // the top of the |λ|-sorted spectrum.
        let mut by_abs = full.values.clone();
        by_abs.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).unwrap());
        let mut got = top.values.clone();
        got.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).unwrap());
        for k in 0..3 {
            assert!(
                (got[k].abs() - by_abs[k].abs()).abs() < 1e-4,
                "k={k}: {} vs {}",
                got[k],
                by_abs[k]
            );
        }
    }
}

//! Dense row-major `f64` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Mat { rows, cols, data }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "shape mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        // ikj loop order: stream through `other`'s rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat::from_vec(self.rows, self.cols, data)
    }

    /// `self * s` element-wise.
    pub fn scale(&self, s: f64) -> Mat {
        Mat::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|x| x * s).collect(),
        )
    }

    /// Maximum absolute element difference to another matrix.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|i| (0..i).all(|j| (self[(i, j)] - self[(j, i)]).abs() <= tol))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(i)[..self.cols.min(8)])?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Mat::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        assert_eq!(a.mul_vec(&v), vec![-1.0, 8.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]);
        assert!(!ns.is_symmetric(1e-9));
    }

    #[test]
    fn add_and_scale() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, -2.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 0.0]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0]);
    }
}

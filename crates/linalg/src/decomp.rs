//! Cholesky factorization and SPD linear solves.

use crate::matrix::Mat;

/// Cholesky factor `L` (lower triangular) of an SPD matrix `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

/// Factorizes a symmetric positive-definite matrix. Returns `None` when
/// a non-positive pivot is encountered (matrix not SPD within roundoff).
pub fn cholesky(a: &Mat) -> Option<Cholesky> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky requires a square matrix");
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(Cholesky { l })
}

impl Cholesky {
    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Mat {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        let n = self.l.rows();
        assert_eq!(b.rows(), n);
        let mut out = Mat::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }
}

/// One-shot SPD solve `A x = b`. Panics when `A` is not SPD; callers
/// needing graceful failure should use [`cholesky`] directly.
pub fn solve_spd(a: &Mat, b: &[f64]) -> Vec<f64> {
    cholesky(a).expect("matrix not SPD").solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        Mat::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_matches_known_decomposition() {
        // Classic example with L = [[2,0,0],[6,1,0],[-8,5,3]].
        let ch = cholesky(&spd3()).unwrap();
        let l = ch.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let l = cholesky(&a).unwrap().l;
        let rebuilt = l.matmul(&l.transpose());
        assert!(rebuilt.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = solve_spd(&a, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_mat_multi_rhs() {
        let a = spd3();
        let x_true = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[3.0, -1.0]]);
        let b = a.matmul(&x_true);
        let x = cholesky(&a).unwrap().solve_mat(&b);
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn non_spd_is_rejected() {
        let not_spd = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&not_spd).is_none());
    }
}

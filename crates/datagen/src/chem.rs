//! Valence-constrained molecule-like graph generator — the substitute
//! for the paper's PubChem compound datasets.
//!
//! Molecules are grown from a dictionary of recurring functional
//! fragments (rings, carboxyl, amide, …), attached under per-atom
//! valence budgets, with occasional extra ring closures. Because every
//! molecule is seeded from a *scaffold family*, the database exhibits
//! the natural cluster structure the paper observes in the real
//! chemical data ("the real chemical dataset usually has natural
//! clusters", §6 Exp-2), and the planted fragments give gSpan a rich
//! frequent-substructure vocabulary.
//!
//! Vertex labels are atom types (see [`ATOM_SYMBOLS`]), edge labels are
//! bond orders (0 = single, 1 = double, 2 = triple).

use gdim_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Atom symbols, indexed by vertex label.
pub const ATOM_SYMBOLS: [&str; 8] = ["C", "N", "O", "S", "P", "F", "Cl", "Br"];

/// Valence budget per atom type (bond orders incident to the atom;
/// phosphorus uses its pentavalent form, as in phosphates).
pub const ATOM_VALENCE: [u32; 8] = [4, 3, 2, 2, 5, 1, 1, 1];

/// Sampling weight per atom type (carbon-dominated, like real compounds).
const ATOM_WEIGHTS: [u32; 8] = [60, 12, 15, 4, 2, 3, 3, 1];

/// Configuration for [`chem_db`].
#[derive(Debug, Clone)]
pub struct ChemConfig {
    /// Minimum target vertex count (inclusive). The paper's datasets
    /// have 10–20 vertices per graph.
    pub min_vertices: usize,
    /// Maximum target vertex count (inclusive; small overshoot by one
    /// fragment is possible and documented).
    pub max_vertices: usize,
    /// Probability of attaching a whole fragment rather than one atom.
    pub fragment_prob: f64,
    /// Probability of attempting an extra ring closure at the end.
    pub ring_closure_prob: f64,
}

impl Default for ChemConfig {
    fn default() -> Self {
        ChemConfig {
            min_vertices: 10,
            max_vertices: 20,
            fragment_prob: 0.6,
            ring_closure_prob: 0.35,
        }
    }
}

/// Generates a database of `n` molecule-like graphs.
pub fn chem_db(n: usize, cfg: &ChemConfig, seed: u64) -> Vec<Graph> {
    let fragments = fragment_dictionary();
    (0..n)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)));
            molecule(cfg, &fragments, &mut rng)
        })
        .collect()
}

/// The functional-fragment dictionary molecules are grown from. Also
/// the vocabulary of the dictionary fingerprint in `gdim-core`.
pub fn fragment_dictionary() -> Vec<Graph> {
    let ring = |labels: &[u32], bonds: &[u32]| {
        let n = labels.len() as u32;
        let edges: Vec<_> = bonds
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u32, (i as u32 + 1) % n, b))
            .collect();
        Graph::from_parts(labels.to_vec(), edges).unwrap()
    };
    let (c, nn, o, s, p) = (0u32, 1u32, 2u32, 3u32, 4u32);
    vec![
        // 0: Benzene (Kekulé alternation).
        ring(&[c; 6], &[0, 1, 0, 1, 0, 1]),
        // 1: Cyclohexane.
        ring(&[c; 6], &[0; 6]),
        // 2: Cyclopentane.
        ring(&[c; 5], &[0; 5]),
        // 3: Pyridine.
        ring(&[nn, c, c, c, c, c], &[0, 1, 0, 1, 0, 1]),
        // 4: Furan-like 5-ring with oxygen.
        ring(&[o, c, c, c, c], &[0, 1, 0, 1, 0]),
        // 5: Thiophene-like 5-ring with sulfur.
        ring(&[s, c, c, c, c], &[0, 1, 0, 1, 0]),
        // 6: Carboxyl C(=O)O.
        Graph::from_parts(vec![c, o, o], [(0, 1, 1), (0, 2, 0)]).unwrap(),
        // 7: Amide C(=O)N.
        Graph::from_parts(vec![c, o, nn], [(0, 1, 1), (0, 2, 0)]).unwrap(),
        // 8: Nitro-like N(=O)O.
        Graph::from_parts(vec![nn, o, o], [(0, 1, 1), (0, 2, 0)]).unwrap(),
        // 9: Propyl chain.
        Graph::from_parts(vec![c, c, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        // 10: Pyrimidine-like (two nitrogens in a 6-ring).
        ring(&[nn, c, nn, c, c, c], &[0, 1, 0, 1, 0, 1]),
        // 11: Pyrrolidine (5-ring with one nitrogen, saturated).
        ring(&[nn, c, c, c, c], &[0; 5]),
        // 12: Morpholine-like (O and N in a saturated 6-ring).
        ring(&[o, c, c, nn, c, c], &[0; 6]),
        // 13: Ether chain C-O-C.
        Graph::from_parts(vec![c, o, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        // 14: Thioether chain C-S-C.
        Graph::from_parts(vec![c, s, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        // 15: Amine branch C-N-C.
        Graph::from_parts(vec![c, nn, c], [(0, 1, 0), (1, 2, 0)]).unwrap(),
        // 16: Phosphate-like P(=O)(O)O.
        Graph::from_parts(vec![p, o, o, o], [(0, 1, 1), (0, 2, 0), (0, 3, 0)]).unwrap(),
        // 17: Vinyl C=C.
        Graph::from_parts(vec![c, c], [(0, 1, 1)]).unwrap(),
        // 18: Nitrile-like C≡N.
        Graph::from_parts(vec![c, nn], [(0, 1, 2)]).unwrap(),
        // 19: Cyclopropane.
        ring(&[c; 3], &[0; 3]),
    ]
}

/// Scaffold families: the seed fragment index per family. Molecules of
/// the same family share a scaffold, producing database clusters.
const FAMILY_SEEDS: [usize; 10] = [0, 1, 3, 4, 5, 9, 10, 11, 12, 16];

/// Decoration motifs attached **independently** per molecule:
/// `(fragment index, probability)`. Independent Bernoulli decorations
/// are what give real compound collections their many weakly-correlated
/// substructure dimensions — without them every support set collapses
/// onto a handful of scaffold-family boundaries and feature selection
/// has nothing diverse to pick from.
const DECORATIONS: [(usize, f64); 12] = [
    (6, 0.40),  // carboxyl
    (7, 0.35),  // amide
    (8, 0.30),  // nitro
    (13, 0.45), // ether
    (14, 0.30), // thioether
    (15, 0.40), // amine
    (16, 0.25), // phosphate
    (17, 0.40), // vinyl
    (18, 0.30), // nitrile
    (19, 0.25), // cyclopropane
    (2, 0.30),  // cyclopentane
    (4, 0.30),  // furan
];

/// Halogen decorations: `(atom label, probability)`.
const HALOGENS: [(u32, f64); 3] = [(5, 0.30), (6, 0.35), (7, 0.22)];

struct Grow {
    builder: GraphBuilder,
    /// Remaining valence per vertex.
    free: Vec<i32>,
}

impl Grow {
    fn add_atom(&mut self, label: u32) -> VertexId {
        let v = self.builder.vertex(label);
        self.free.push(ATOM_VALENCE[label as usize] as i32);
        v
    }

    fn add_bond(&mut self, u: VertexId, v: VertexId, order_label: u32) -> bool {
        let cost = order_label as i32 + 1;
        if self.free[u as usize] < cost || self.free[v as usize] < cost {
            return false;
        }
        if self.builder.has_edge(u, v) {
            return false;
        }
        self.builder.edge(u, v, order_label).expect("validated");
        self.free[u as usize] -= cost;
        self.free[v as usize] -= cost;
        true
    }

    /// Vertices that can still accept at least one single bond.
    fn open_vertices(&self) -> Vec<VertexId> {
        self.free
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f >= 1)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Splices `frag` in, connecting a random fragment vertex with free
    /// valence to `host` via a single bond. Returns false if the
    /// fragment has no open vertex.
    fn attach_fragment(&mut self, frag: &Graph, host: VertexId, rng: &mut StdRng) -> bool {
        let base = self.builder.vertex_count() as u32;
        for &l in frag.vlabels() {
            self.add_atom(l);
        }
        for e in frag.edges() {
            let ok = self.add_bond(base + e.u, base + e.v, e.label);
            debug_assert!(ok, "dictionary fragments satisfy valences");
        }
        let open: Vec<VertexId> = (0..frag.vertex_count() as u32)
            .map(|v| base + v)
            .filter(|&v| self.free[v as usize] >= 1)
            .collect();
        if open.is_empty() {
            return false;
        }
        let anchor = open[rng.gen_range(0..open.len())];
        self.add_bond(host, anchor, 0)
    }
}

fn weighted_atom(rng: &mut StdRng) -> u32 {
    let total: u32 = ATOM_WEIGHTS.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (label, &w) in ATOM_WEIGHTS.iter().enumerate() {
        if roll < w {
            return label as u32;
        }
        roll -= w;
    }
    0
}

fn molecule(cfg: &ChemConfig, fragments: &[Graph], rng: &mut StdRng) -> Graph {
    let target = rng.gen_range(cfg.min_vertices..=cfg.max_vertices.max(cfg.min_vertices));
    let family = FAMILY_SEEDS[rng.gen_range(0..FAMILY_SEEDS.len())];
    let seed_frag = &fragments[family];

    let mut g = Grow {
        builder: GraphBuilder::new(),
        free: Vec::new(),
    };
    for &l in seed_frag.vlabels() {
        g.add_atom(l);
    }
    for e in seed_frag.edges() {
        g.add_bond(e.u, e.v, e.label);
    }

    // Independent decorations: each motif joins with its own probability,
    // creating many weakly-correlated substructure dimensions.
    for &(frag_idx, prob) in &DECORATIONS {
        if g.builder.vertex_count() + fragments[frag_idx].vertex_count() > target + 4 {
            continue;
        }
        if rng.gen_bool(prob) {
            let open = g.open_vertices();
            if !open.is_empty() {
                let host = open[rng.gen_range(0..open.len())];
                g.attach_fragment(&fragments[frag_idx], host, rng);
            }
        }
    }
    for &(halogen, prob) in &HALOGENS {
        if rng.gen_bool(prob) {
            let open = g.open_vertices();
            if !open.is_empty() {
                let host = open[rng.gen_range(0..open.len())];
                let atom = g.add_atom(halogen);
                g.add_bond(host, atom, 0);
            }
        }
    }

    let mut stall = 0;
    while g.builder.vertex_count() < target && stall < 16 {
        let open = g.open_vertices();
        if open.is_empty() {
            break;
        }
        let host = open[rng.gen_range(0..open.len())];
        let slack = target - g.builder.vertex_count();
        let use_fragment = slack >= 4 && rng.gen_bool(cfg.fragment_prob);
        let grew = if use_fragment {
            let frag = &fragments[rng.gen_range(0..fragments.len())];
            g.attach_fragment(frag, host, rng)
        } else {
            let label = weighted_atom(rng);
            let atom = g.add_atom(label);
            // Mostly single bonds; occasional double when valences allow.
            let order =
                if rng.gen_bool(0.15) && g.free[host as usize] >= 2 && g.free[atom as usize] >= 2 {
                    1
                } else {
                    0
                };
            g.add_bond(host, atom, order)
        };
        if grew {
            stall = 0;
        } else {
            stall += 1;
        }
    }

    // Optional extra ring closure between open vertices at distance 2..=5.
    if rng.gen_bool(cfg.ring_closure_prob) {
        let snapshot = g.builder.clone().build();
        let open = g.open_vertices();
        'outer: for _ in 0..8 {
            if open.len() < 2 {
                break;
            }
            let u = open[rng.gen_range(0..open.len())];
            let v = open[rng.gen_range(0..open.len())];
            if u == v || snapshot.has_edge(u, v) {
                continue;
            }
            let d = bfs_distance(&snapshot, u, v);
            if (2..=5).contains(&d) && g.add_bond(u, v, 0) {
                break 'outer;
            }
        }
    }

    let out = g.builder.build();
    debug_assert!(out.is_connected());
    out
}

fn bfs_distance(g: &Graph, from: VertexId, to: VertexId) -> usize {
    let mut dist = vec![usize::MAX; g.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[from as usize] = 0;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            return dist[v as usize];
        }
        for nb in g.neighbors(v) {
            if dist[nb.to as usize] == usize::MAX {
                dist[nb.to as usize] = dist[v as usize] + 1;
                queue.push_back(nb.to);
            }
        }
    }
    usize::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn molecules_are_connected_and_sized() {
        let cfg = ChemConfig::default();
        let db = chem_db(50, &cfg, 42);
        assert_eq!(db.len(), 50);
        for g in &db {
            assert!(g.is_connected());
            assert!(g.vertex_count() >= 3);
            // Fragment attachment may overshoot by one fragment.
            assert!(g.vertex_count() <= cfg.max_vertices + 6);
            assert!(g.edge_count() >= g.vertex_count() - 1);
        }
        // Most molecules are within the configured window.
        let within = db
            .iter()
            .filter(|g| (cfg.min_vertices..=cfg.max_vertices + 2).contains(&g.vertex_count()))
            .count();
        assert!(within * 10 >= db.len() * 7, "{within}/50 within window");
    }

    #[test]
    fn valences_respected() {
        let db = chem_db(40, &ChemConfig::default(), 7);
        for g in &db {
            for v in 0..g.vertex_count() as u32 {
                let used: u32 = g.neighbors(v).iter().map(|nb| nb.elabel + 1).sum();
                let budget = ATOM_VALENCE[g.vlabel(v) as usize];
                assert!(
                    used <= budget,
                    "vertex {v} ({}) uses {used} > valence {budget}",
                    ATOM_SYMBOLS[g.vlabel(v) as usize]
                );
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = ChemConfig::default();
        assert_eq!(chem_db(10, &cfg, 5), chem_db(10, &cfg, 5));
        assert_ne!(chem_db(10, &cfg, 5), chem_db(10, &cfg, 6));
    }

    #[test]
    fn fragments_satisfy_their_own_valences() {
        for (i, f) in fragment_dictionary().iter().enumerate() {
            for v in 0..f.vertex_count() as u32 {
                let used: u32 = f.neighbors(v).iter().map(|nb| nb.elabel + 1).sum();
                assert!(
                    used <= ATOM_VALENCE[f.vlabel(v) as usize],
                    "fragment {i} vertex {v}"
                );
            }
            assert!(f.is_connected());
        }
    }

    #[test]
    fn fragments_recur_across_database() {
        // The planted fragments must actually be frequent: check the
        // carboxyl/propyl patterns appear in a decent share of molecules.
        let db = chem_db(60, &ChemConfig::default(), 11);
        let frags = fragment_dictionary();
        let propyl = &frags[9];
        let hits = db
            .iter()
            .filter(|g| gdim_graph::vf2::is_subgraph_iso(propyl, g))
            .count();
        assert!(hits > db.len() / 3, "propyl in only {hits}/60 molecules");
    }

    #[test]
    fn size_window_is_configurable() {
        let cfg = ChemConfig {
            min_vertices: 12,
            max_vertices: 12,
            ..Default::default()
        };
        let db = chem_db(20, &cfg, 3);
        for g in &db {
            assert!(g.vertex_count() >= 6, "seeded fragment plus growth");
        }
    }
}

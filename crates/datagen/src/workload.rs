//! Query-workload generators: *which* graphs get queried, not what the
//! graphs look like.
//!
//! Real serving traffic is skewed — a few hot graphs draw most of the
//! queries — and a **sharded** index feels that skew as load imbalance:
//! whichever shard owns the hot graphs answers a disproportionate
//! share of the self-similarity traffic. [`zipf_workload`] generates
//! exactly that shape: a Zipf(s) distribution over the database ids,
//! with the hot set either concentrated at the low ids (the worst case
//! for a contiguous range partition, [`ZipfConfig::shuffle`]` = false`)
//! or scattered uniformly over the id space (`shuffle = true`).
//!
//! Every generator takes an explicit seed and is deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Shape of a [`zipf_workload`]: how skewed the query traffic is and
/// where the hot graphs sit in the id space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfConfig {
    /// Zipf exponent `s`: rank `r` (0-based) is queried with
    /// probability ∝ `1/(r+1)^s`. `0.0` is uniform traffic; ~1.0 is
    /// classic web-like skew; larger is hotter.
    pub exponent: f64,
    /// Whether ranks are scattered over the id space by a seeded
    /// permutation. `false` (the default) leaves rank = id, so the hot
    /// set is the low-id prefix — the adversarial case for a
    /// contiguous range partition, where one shard owns every hot
    /// graph. `true` spreads the hot set uniformly across shards.
    pub shuffle: bool,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            exponent: 1.0,
            shuffle: false,
        }
    }
}

impl ZipfConfig {
    /// Sets the exponent.
    pub fn with_exponent(mut self, s: f64) -> Self {
        self.exponent = s;
        self
    }

    /// Sets whether hot ranks are scattered over the id space.
    pub fn with_shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }
}

/// Draws `len` query targets over a database of `n_graphs` ids with
/// Zipf-skewed popularity (see [`ZipfConfig`]). Returns graph ids in
/// `0..n_graphs`; an empty database yields an empty workload.
/// Deterministic in `(n_graphs, len, cfg, seed)`.
pub fn zipf_workload(n_graphs: usize, len: usize, cfg: &ZipfConfig, seed: u64) -> Vec<u32> {
    if n_graphs == 0 || len == 0 {
        return Vec::new();
    }
    assert!(
        cfg.exponent >= 0.0 && cfg.exponent.is_finite(),
        "zipf exponent must be finite and non-negative, got {}",
        cfg.exponent
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative popularity over ranks: cdf[r] = Σ_{j ≤ r} 1/(j+1)^s.
    let mut cdf = Vec::with_capacity(n_graphs);
    let mut total = 0.0f64;
    for r in 0..n_graphs {
        total += 1.0 / ((r + 1) as f64).powf(cfg.exponent);
        cdf.push(total);
    }
    // rank -> id: identity, or a seeded permutation when shuffling.
    let mut ids: Vec<u32> = (0..n_graphs as u32).collect();
    if cfg.shuffle {
        ids.shuffle(&mut rng);
    }
    (0..len)
        .map(|_| {
            let x = rng.gen::<f64>() * total;
            // First rank whose cumulative weight covers the draw.
            let rank = cdf.partition_point(|&c| c < x).min(n_graphs - 1);
            ids[rank]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(workload: &[u32], n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for &id in workload {
            counts[id as usize] += 1;
        }
        counts
    }

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let cfg = ZipfConfig::default();
        let a = zipf_workload(50, 500, &cfg, 7);
        let b = zipf_workload(50, 500, &cfg, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|&id| (id as usize) < 50));
        let c = zipf_workload(50, 500, &cfg, 8);
        assert_ne!(a, c, "different seeds draw different traffic");
    }

    #[test]
    fn skew_concentrates_on_the_hot_prefix() {
        let cfg = ZipfConfig::default().with_exponent(1.2);
        let w = zipf_workload(100, 2000, &cfg, 3);
        let counts = frequencies(&w, 100);
        // Rank 0 is the hottest graph and the low-id decile dwarfs a
        // uniform share (uniform would give ~200 to any 10 ids).
        assert!(counts[0] >= counts[50], "rank 0 must beat a mid rank");
        let hot: usize = counts[..10].iter().sum();
        assert!(
            hot > 2000 / 2,
            "top decile should draw most traffic, got {hot}"
        );
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let cfg = ZipfConfig::default().with_exponent(0.0);
        let w = zipf_workload(10, 5000, &cfg, 11);
        let counts = frequencies(&w, 10);
        for (id, &c) in counts.iter().enumerate() {
            assert!(
                (250..=750).contains(&c),
                "id {id} drew {c} of 5000 under uniform traffic"
            );
        }
    }

    #[test]
    fn shuffle_moves_the_hot_graph_but_keeps_the_skew() {
        let plain = zipf_workload(64, 3000, &ZipfConfig::default(), 5);
        let shuffled = zipf_workload(64, 3000, &ZipfConfig::default().with_shuffle(true), 5);
        let pc = frequencies(&plain, 64);
        let sc = frequencies(&shuffled, 64);
        // Unshuffled: id 0 is the hottest. Shuffled: the same skew
        // lands on some permuted id (almost surely not 0).
        let hottest_plain = pc.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap().0;
        assert_eq!(hottest_plain, 0);
        let max_s = *sc.iter().max().unwrap();
        assert!(max_s > 3000 / 64 * 3, "shuffling must not flatten the skew");
    }

    #[test]
    fn empty_inputs_yield_empty_workloads() {
        assert!(zipf_workload(0, 100, &ZipfConfig::default(), 1).is_empty());
        assert!(zipf_workload(10, 0, &ZipfConfig::default(), 1).is_empty());
        // A single graph absorbs all traffic.
        assert_eq!(
            zipf_workload(1, 3, &ZipfConfig::default(), 1),
            vec![0, 0, 0]
        );
    }
}

//! # gdim-datagen — dataset generators
//!
//! The paper evaluates on (a) PubChem chemical-compound datasets and
//! (b) synthetic databases from GraphGen [Cheng, Ke, Ng 2006]. Neither
//! is available offline, so this crate provides faithful substitutes
//! (documented in DESIGN.md):
//!
//! * [`chem`] — valence-constrained molecule-like labeled graphs, grown
//!   from a dictionary of recurring functional fragments. Reproduces the
//!   two properties the experiments rely on: shared frequent
//!   substructures (for gSpan) and natural cluster structure (for the
//!   spectral baselines).
//! * [`synth`] — GraphGen-style random connected graphs parameterized by
//!   the same three knobs §6 uses: average edge count, density
//!   `2|E|/(|V|(|V|−1))`, and number of distinct labels.
//! * [`workload`] — query-traffic generators: Zipf-skewed "hot graph"
//!   workloads for exercising serving-layer load imbalance (sharding).
//!
//! Every generator takes an explicit seed and is deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chem;
pub mod synth;
pub mod workload;

pub use chem::{chem_db, fragment_dictionary, ChemConfig};
pub use synth::{synth_db, SynthConfig};
pub use workload::{zipf_workload, ZipfConfig};

use gdim_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a random connected edge-subgraph of `g` containing roughly
/// `keep_fraction` of its edges (at least one edge). Used to build the
/// `q′ ⊆ q` workloads of the theorem-bound experiments and tests.
pub fn connected_edge_subgraph(g: &Graph, keep_fraction: f64, seed: u64) -> Graph {
    assert!(g.edge_count() > 0, "need at least one edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let target =
        ((g.edge_count() as f64 * keep_fraction).round() as usize).clamp(1, g.edge_count());
    // Grow a connected edge set from a random start edge.
    let start = rng.gen_range(0..g.edge_count());
    let mut chosen: Vec<u32> = vec![start as u32];
    let mut in_set = vec![false; g.edge_count()];
    in_set[start] = true;
    let mut touched: Vec<u32> = vec![g.edges()[start].u, g.edges()[start].v];
    while chosen.len() < target {
        // Frontier: edges incident to touched vertices, not yet chosen.
        let mut frontier: Vec<u32> = Vec::new();
        for &v in &touched {
            for nb in g.neighbors(v) {
                if !in_set[nb.eid as usize] {
                    frontier.push(nb.eid);
                }
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        if frontier.is_empty() {
            break;
        }
        let pick = frontier[rng.gen_range(0..frontier.len())];
        in_set[pick as usize] = true;
        chosen.push(pick);
        let e = g.edges()[pick as usize];
        for w in [e.u, e.v] {
            if !touched.contains(&w) {
                touched.push(w);
            }
        }
    }
    chosen.sort_unstable();
    g.edge_subgraph(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_subgraph_is_connected_and_contained() {
        let cfg = ChemConfig::default();
        let db = chem_db(5, &cfg, 99);
        for (i, g) in db.iter().enumerate() {
            let sub = connected_edge_subgraph(g, 0.5, i as u64);
            assert!(sub.is_connected());
            assert!(sub.edge_count() >= 1);
            assert!(sub.edge_count() <= g.edge_count());
            assert!(gdim_graph::vf2::is_subgraph_iso(&sub, g));
        }
    }

    #[test]
    fn full_fraction_returns_whole_graph_edges() {
        let db = chem_db(2, &ChemConfig::default(), 7);
        let g = &db[0];
        let sub = connected_edge_subgraph(g, 1.0, 3);
        // Connected input: growing to 100% recovers all edges.
        assert_eq!(sub.edge_count(), g.edge_count());
    }
}

//! GraphGen-style synthetic generator — the substitute for GraphGen
//! \[39\], parameterized exactly like §6: average edge count, graph
//! density `D = 2|E| / (|V|(|V|−1))`, and number of distinct labels
//! ("the average number of edges in each graph is 20, the number of
//! distinct labels is 20, and the average graph density is 0.2").
//!
//! Each graph draws an edge count around the configured average,
//! derives its vertex count from the density, builds a random spanning
//! tree (connectivity), and fills in the remaining edges uniformly.

use gdim_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`synth_db`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Average number of edges per graph (paper default: 20).
    pub avg_edges: f64,
    /// Average density `2|E|/(|V|(|V|−1))` (paper default: 0.2).
    pub density: f64,
    /// Number of distinct vertex labels (paper default: 20).
    pub num_vlabels: u32,
    /// Number of distinct edge labels (GraphGen workloads label
    /// vertices; keep 1 for unlabeled edges).
    pub num_elabels: u32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            avg_edges: 20.0,
            density: 0.2,
            num_vlabels: 20,
            num_elabels: 1,
        }
    }
}

/// Generates a database of `n` random connected labeled graphs.
pub fn synth_db(n: usize, cfg: &SynthConfig, seed: u64) -> Vec<Graph> {
    assert!(cfg.avg_edges >= 1.0, "avg_edges must be at least 1");
    assert!(
        cfg.density > 0.0 && cfg.density <= 1.0,
        "density must be in (0, 1]"
    );
    (0..n)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0xd1b54a32d192ed03u64.wrapping_mul(i as u64 + 1)));
            one_graph(cfg, &mut rng)
        })
        .collect()
}

fn one_graph(cfg: &SynthConfig, rng: &mut StdRng) -> Graph {
    // Edge count: uniform within ±20% of the average, at least 1.
    let lo = (cfg.avg_edges * 0.8).round().max(1.0) as usize;
    let hi = (cfg.avg_edges * 1.2).round().max(1.0) as usize;
    let e_target = rng.gen_range(lo..=hi);

    // |V| from D = 2|E| / (|V|(|V|−1)): v(v−1) = 2E/D.
    let v_float = 0.5 * (1.0 + (1.0 + 8.0 * e_target as f64 / cfg.density).sqrt());
    let v = (v_float.round() as usize).max(2);
    // A simple graph holds at most v(v−1)/2 edges; a connected one needs v−1.
    let e_max = v * (v - 1) / 2;
    let e_count = e_target.clamp(v - 1, e_max);

    let mut b = GraphBuilder::new();
    for _ in 0..v {
        b.vertex(rng.gen_range(0..cfg.num_vlabels));
    }
    // Random spanning tree: attach vertex i to a uniform earlier vertex.
    for i in 1..v as u32 {
        let parent = rng.gen_range(0..i);
        let el = rng.gen_range(0..cfg.num_elabels);
        b.edge(parent, i, el).expect("tree edges are fresh");
    }
    // Extra edges, uniformly over free vertex pairs.
    let mut guard = 0;
    while b.edge_count() < e_count && guard < 20 * e_count {
        guard += 1;
        let u = rng.gen_range(0..v as u32);
        let w = rng.gen_range(0..v as u32);
        if u == w || b.has_edge(u, w) {
            continue;
        }
        let el = rng.gen_range(0..cfg.num_elabels);
        b.edge(u, w, el).expect("checked for duplicates");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_connected_and_near_parameters() {
        let cfg = SynthConfig::default();
        let db = synth_db(200, &cfg, 13);
        assert_eq!(db.len(), 200);
        let mut sum_e = 0.0;
        let mut sum_d = 0.0;
        for g in &db {
            assert!(g.is_connected());
            assert!(g.vlabels().iter().all(|&l| l < cfg.num_vlabels));
            sum_e += g.edge_count() as f64;
            sum_d += g.density();
        }
        let avg_e = sum_e / 200.0;
        let avg_d = sum_d / 200.0;
        assert!(
            (avg_e - cfg.avg_edges).abs() < 2.0,
            "avg edges {avg_e} vs {}",
            cfg.avg_edges
        );
        assert!(
            (avg_d - cfg.density).abs() < 0.05,
            "avg density {avg_d} vs {}",
            cfg.density
        );
    }

    #[test]
    fn density_controls_vertex_count() {
        let sparse = SynthConfig {
            density: 0.1,
            ..Default::default()
        };
        let dense = SynthConfig {
            density: 0.3,
            ..Default::default()
        };
        let vs = |cfg: &SynthConfig| {
            synth_db(100, cfg, 5)
                .iter()
                .map(|g| g.vertex_count() as f64)
                .sum::<f64>()
                / 100.0
        };
        // Same edge budget spread over more vertices when sparser.
        assert!(vs(&sparse) > vs(&dense) + 3.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SynthConfig::default();
        assert_eq!(synth_db(5, &cfg, 1), synth_db(5, &cfg, 1));
        assert_ne!(synth_db(5, &cfg, 1), synth_db(5, &cfg, 2));
    }

    #[test]
    fn tiny_graphs_work() {
        let cfg = SynthConfig {
            avg_edges: 2.0,
            density: 0.5,
            num_vlabels: 2,
            num_elabels: 2,
        };
        let db = synth_db(20, &cfg, 9);
        for g in &db {
            assert!(g.is_connected());
            assert!(g.edge_count() >= 1);
        }
    }

    #[test]
    fn edge_label_range_respected() {
        let cfg = SynthConfig {
            num_elabels: 3,
            ..Default::default()
        };
        let db = synth_db(30, &cfg, 21);
        for g in &db {
            assert!(g.edges().iter().all(|e| e.label < 3));
        }
    }
}

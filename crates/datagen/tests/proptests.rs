//! Property tests for the dataset generators across their parameter
//! spaces: structural validity, valence budgets, density control,
//! determinism.

use proptest::prelude::*;

use gdim_datagen::chem::{ATOM_SYMBOLS, ATOM_VALENCE};
use gdim_datagen::{chem_db, synth_db, ChemConfig, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chem_molecules_valid_across_configs(
        min_v in 6usize..12,
        span in 0usize..10,
        frag_prob in 0.0f64..1.0,
        ring_prob in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let cfg = ChemConfig {
            min_vertices: min_v,
            max_vertices: min_v + span,
            fragment_prob: frag_prob,
            ring_closure_prob: ring_prob,
        };
        for g in chem_db(6, &cfg, seed) {
            prop_assert!(g.is_connected());
            prop_assert!(g.vertex_count() >= 2);
            prop_assert!(g.edge_count() <= 128, "miner contract");
            for v in 0..g.vertex_count() as u32 {
                let label = g.vlabel(v) as usize;
                prop_assert!(label < ATOM_SYMBOLS.len());
                let used: u32 = g.neighbors(v).iter().map(|nb| nb.elabel + 1).sum();
                prop_assert!(
                    used <= ATOM_VALENCE[label],
                    "valence violated at {} ({} > {})",
                    ATOM_SYMBOLS[label], used, ATOM_VALENCE[label]
                );
            }
        }
    }

    #[test]
    fn synth_graphs_valid_across_configs(
        avg_edges in 4.0f64..30.0,
        density in 0.05f64..0.5,
        vlabels in 2u32..30,
        elabels in 1u32..4,
        seed in any::<u64>(),
    ) {
        let cfg = SynthConfig {
            avg_edges,
            density,
            num_vlabels: vlabels,
            num_elabels: elabels,
        };
        for g in synth_db(6, &cfg, seed) {
            prop_assert!(g.is_connected());
            prop_assert!(g.edge_count() >= 1);
            prop_assert!(g.vlabels().iter().all(|&l| l < vlabels));
            prop_assert!(g.edges().iter().all(|e| e.label < elabels));
            // Edge count within the generator's sampling window, clamped
            // to connectivity/simple-graph feasibility.
            let v = g.vertex_count();
            prop_assert!(g.edge_count() >= v - 1);
            prop_assert!(g.edge_count() <= v * (v - 1) / 2);
        }
    }

    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let c = ChemConfig::default();
        prop_assert_eq!(chem_db(3, &c, seed), chem_db(3, &c, seed));
        let s = SynthConfig::default();
        prop_assert_eq!(synth_db(3, &s, seed), synth_db(3, &s, seed));
    }
}

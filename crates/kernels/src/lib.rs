//! # gdim-kernels — width-optimized scan kernels
//!
//! The online phase of the paper's pipeline is a linear scan over the
//! flat SoA vector store: per row, XOR the query words against the row
//! words and popcount. That scan is memory-bound, so the kernels here
//! widen per-row compute two ways while staying **bit-identical** to
//! the scalar reference loop:
//!
//! - [`KernelKind::Unrolled`] — a portable chunked-`u64` kernel that
//!   processes **4 rows per iteration** ([`hamming_block4_portable`]),
//!   interleaving the XOR+popcount of four rows inside one word loop so
//!   each query word is loaded once per block instead of once per row.
//! - [`KernelKind::Avx2`] — the same 4-row block shape, with each
//!   row's words processed 256 bits at a time through a
//!   `target_feature(enable = "avx2")` intrinsic popcount (the
//!   nibble-LUT `_mm256_shuffle_epi8` + `_mm256_sad_epu8` reduction).
//!   Selected at runtime via `is_x86_feature_detected!`; never chosen
//!   on other architectures or under `--cfg gdim_portable`.
//! - [`KernelKind::Avx512`] — the AVX2 shape with the shuffle popcount
//!   replaced by the single-instruction `vpopcntq`
//!   (`AVX512VPOPCNTDQ`+`VL`, staying at 256-bit width so no 512-bit
//!   frequency licensing applies) and the fused prune compare done in
//!   mask registers. Same runtime gating as AVX2.
//! - [`KernelKind::Scalar`] — the original row-at-a-time loop, always
//!   available as the reference and fallback.
//!
//! Hamming distances are exact integer counts, so every kernel returns
//! the same `u32` for the same row — callers may freely mix kernels
//! without changing results. [`selected_kernel`] picks the best
//! available kernel once per process; the `GDIM_KERNEL` environment
//! variable (`scalar` / `unrolled` / `avx2` / `avx512`) overrides the
//! choice for experiments, falling back to auto-detection when the
//! requested kernel is unavailable.
//!
//! This crate deliberately holds the only `unsafe` in the workspace
//! (`gdim-core` keeps `#![forbid(unsafe_code)]`): the intrinsic paths
//! live in one small module behind runtime feature detection.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::sync::OnceLock;

/// Which scan-kernel implementation services a query.
///
/// All kinds produce bit-identical Hamming distances; they differ only
/// in throughput. Stamped into `SearchStats::kernel` so served stats
/// say which path ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Row-at-a-time `u64` XOR + `count_ones` — the reference loop.
    Scalar,
    /// Portable 4-rows-per-iteration interleaved block kernel.
    Unrolled,
    /// 4-row block kernel with AVX2 256-bit intrinsic popcount.
    Avx2,
    /// AVX2 block shape with the `vpopcntq` single-instruction
    /// popcount and mask-register prune compares (256-bit VL width).
    Avx512,
}

impl KernelKind {
    /// Stable lowercase name (`scalar` / `unrolled` / `avx2` /
    /// `avx512`), the same spelling `GDIM_KERNEL` accepts.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Unrolled => "unrolled",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
        }
    }

    /// Parse a [`name`](Self::name) back into a kind (ASCII
    /// case-insensitive). Returns `None` for unknown spellings.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        [
            KernelKind::Scalar,
            KernelKind::Unrolled,
            KernelKind::Avx2,
            KernelKind::Avx512,
        ]
        .into_iter()
        .find(|k| s.eq_ignore_ascii_case(k.name()))
    }

    /// Whether this kernel can run on the current CPU/build.
    pub fn is_available(self) -> bool {
        match self {
            KernelKind::Scalar | KernelKind::Unrolled => true,
            KernelKind::Avx2 => avx2_available(),
            KernelKind::Avx512 => avx512_available(),
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime check: can the AVX2 kernel run here? Always `false` off
/// x86_64 and under `--cfg gdim_portable` (the pinned portable build).
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(gdim_portable))))]
    {
        false
    }
}

/// Runtime check: can the AVX-512 kernel run here? Requires
/// `AVX512F`+`VL` (256-bit forms) and `AVX512VPOPCNTDQ`; always
/// `false` off x86_64 and under `--cfg gdim_portable`.
pub fn avx512_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    }
    #[cfg(not(all(target_arch = "x86_64", not(gdim_portable))))]
    {
        false
    }
}

/// Every kernel runnable on the current CPU/build, reference first.
pub fn available_kernels() -> Vec<KernelKind> {
    let mut v = vec![KernelKind::Scalar, KernelKind::Unrolled];
    if avx2_available() {
        v.push(KernelKind::Avx2);
    }
    if avx512_available() {
        v.push(KernelKind::Avx512);
    }
    v
}

/// The kernel the scan leg uses by default: the best available one,
/// decided once per process. `GDIM_KERNEL=scalar|unrolled|avx2|avx512`
/// overrides the choice (ignored when the requested kernel is not
/// available on this CPU/build).
pub fn selected_kernel() -> KernelKind {
    static SELECTED: OnceLock<KernelKind> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        if let Ok(v) = std::env::var("GDIM_KERNEL") {
            if let Some(k) = KernelKind::parse(&v) {
                if k.is_available() {
                    return k;
                }
            }
        }
        if avx512_available() {
            KernelKind::Avx512
        } else if avx2_available() {
            KernelKind::Avx2
        } else {
            KernelKind::Unrolled
        }
    })
}

/// Scalar reference: Hamming distance between two equal-length word
/// rows. Every other kernel must agree with this loop bit-for-bit.
#[inline]
pub fn hamming_row(query: &[u64], row: &[u64]) -> u32 {
    debug_assert_eq!(query.len(), row.len());
    query
        .iter()
        .zip(row.iter())
        .map(|(&q, &r)| (q ^ r).count_ones())
        .sum()
}

/// Portable 4-row block kernel: Hamming distance of `query` against
/// four consecutive rows stored contiguously in `block`
/// (`block.len() == 4 * stride`). The four accumulations are
/// interleaved inside a single word loop so each query word is loaded
/// once per block.
#[inline]
pub fn hamming_block4_portable(query: &[u64], block: &[u64], stride: usize) -> [u32; 4] {
    debug_assert_eq!(query.len(), stride);
    debug_assert_eq!(block.len(), 4 * stride);
    let (r0, rest) = block.split_at(stride);
    let (r1, rest) = rest.split_at(stride);
    let (r2, r3) = rest.split_at(stride);
    let mut h = [0u32; 4];
    for w in 0..stride {
        let q = query[w];
        h[0] += (q ^ r0[w]).count_ones();
        h[1] += (q ^ r1[w]).count_ones();
        h[2] += (q ^ r2[w]).count_ones();
        h[3] += (q ^ r3[w]).count_ones();
    }
    h
}

/// Dispatch the 4-row block kernel. `Avx2` silently degrades to the
/// portable block when the CPU/build lacks AVX2, so the kind is safe
/// to pass through from configuration.
#[inline]
pub fn hamming_block4(kernel: KernelKind, query: &[u64], block: &[u64], stride: usize) -> [u32; 4] {
    match kernel {
        KernelKind::Scalar => {
            let (r0, rest) = block.split_at(stride);
            let (r1, rest) = rest.split_at(stride);
            let (r2, r3) = rest.split_at(stride);
            [
                hamming_row(query, r0),
                hamming_row(query, r1),
                hamming_row(query, r2),
                hamming_row(query, r3),
            ]
        }
        KernelKind::Unrolled => hamming_block4_portable(query, block, stride),
        KernelKind::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if let Some(h) = avx2::hamming_block4_checked(query, block, stride) {
                return h;
            }
            hamming_block4_portable(query, block, stride)
        }
        KernelKind::Avx512 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if let Some(h) = avx512::hamming_block4_checked(query, block, stride) {
                return h;
            }
            hamming_block4_portable(query, block, stride)
        }
    }
}

/// Fused multi-query form of [`hamming_block4`]: one dispatch per
/// 4-row block computes every query's four distances (`out[q]` holds
/// query `q`'s row distances; `out.len() == queries.len()`). The fused
/// batch scan calls this once per block, so kernel dispatch is paid
/// per block — not per `(block, query)` pair — and the AVX2 path keeps
/// the block's rows resident in registers across all queries.
#[inline]
pub fn hamming_block4_multi(
    kernel: KernelKind,
    queries: &[&[u64]],
    block: &[u64],
    stride: usize,
    out: &mut [[u32; 4]],
) {
    debug_assert_eq!(queries.len(), out.len());
    debug_assert_eq!(block.len(), 4 * stride);
    match kernel {
        KernelKind::Scalar => {
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                *o = core::array::from_fn(|j| hamming_row(q, &block[j * stride..(j + 1) * stride]));
            }
        }
        KernelKind::Unrolled => {
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                *o = hamming_block4_portable(q, block, stride);
            }
        }
        KernelKind::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if avx2::hamming_block4_multi_checked(queries, block, stride, out) {
                return;
            }
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                *o = hamming_block4_portable(q, block, stride);
            }
        }
        KernelKind::Avx512 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if avx512::hamming_block4_multi_checked(queries, block, stride, out) {
                return;
            }
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                *o = hamming_block4_portable(q, block, stride);
            }
        }
    }
}

/// Bitmask (bits 0..8) of block rows whose distance is strictly below
/// `bound` — the portable form of the AVX2 in-register compare.
#[inline]
fn prune_mask8(h: &[u32; 8], bound: u32) -> u8 {
    h.iter()
        .enumerate()
        .fold(0u8, |m, (r, &v)| m | (((v < bound) as u8) << r))
}

/// Portable 8-row pruned step shared by the non-AVX2 arms: two 4-row
/// portable blocks plus the scalar bound compare.
#[inline]
fn block8_pruned_portable(q: &[u64], block: &[u64], stride: usize, bound: u32) -> ([u32; 8], u8) {
    let lo = hamming_block4_portable(q, &block[..4 * stride], stride);
    let hi = hamming_block4_portable(q, &block[4 * stride..], stride);
    let h = [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]];
    let m = prune_mask8(&h, bound);
    (h, m)
}

/// The fused scan's hot step: every query's distances against an
/// **8-row block** with per-query **bound pruning**, in one dispatch.
/// For each query `j`, `cand[j]` is set to the bitmask of rows whose
/// distance is strictly below `bounds[j]`, and `out[j]` is only
/// guaranteed to be written when that mask is non-zero. Returns
/// whether any query has any candidate row, so callers can skip their
/// offer loop for the (overwhelmingly common, once selectors fill)
/// all-pruned block. Callers maintaining a bounded top-k selector
/// pass the current k-th key (or `u32::MAX` while the selector is
/// filling); a row at exactly the bound can never displace an earlier
/// row with the same key, so the strict compare is
/// selection-identical to offering every row. On AVX2 the block's
/// rows stay resident in registers across all queries and the compare
/// happens in registers too — the no-candidate case touches no memory
/// beyond the mask byte.
#[inline]
pub fn hamming_block8_multi_pruned(
    kernel: KernelKind,
    queries: &[&[u64]],
    block: &[u64],
    stride: usize,
    bounds: &[u32],
    out: &mut [[u32; 8]],
    cand: &mut [u8],
) -> bool {
    debug_assert_eq!(queries.len(), out.len());
    debug_assert_eq!(queries.len(), bounds.len());
    debug_assert_eq!(queries.len(), cand.len());
    debug_assert_eq!(block.len(), 8 * stride);
    match kernel {
        KernelKind::Scalar => {
            let mut any = false;
            for (((q, &b), o), c) in queries
                .iter()
                .zip(bounds.iter())
                .zip(out.iter_mut())
                .zip(cand.iter_mut())
            {
                *o = core::array::from_fn(|j| hamming_row(q, &block[j * stride..(j + 1) * stride]));
                *c = prune_mask8(o, b);
                any |= *c != 0;
            }
            any
        }
        KernelKind::Unrolled => {
            let mut any = false;
            for (((q, &b), o), c) in queries
                .iter()
                .zip(bounds.iter())
                .zip(out.iter_mut())
                .zip(cand.iter_mut())
            {
                (*o, *c) = block8_pruned_portable(q, block, stride, b);
                any |= *c != 0;
            }
            any
        }
        KernelKind::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if let Some(any) =
                avx2::hamming_block8_multi_pruned_checked(queries, block, stride, bounds, out, cand)
            {
                return any;
            }
            let mut any = false;
            for (((q, &b), o), c) in queries
                .iter()
                .zip(bounds.iter())
                .zip(out.iter_mut())
                .zip(cand.iter_mut())
            {
                (*o, *c) = block8_pruned_portable(q, block, stride, b);
                any |= *c != 0;
            }
            any
        }
        KernelKind::Avx512 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if let Some(any) = avx512::hamming_block8_multi_pruned_checked(
                queries, block, stride, bounds, out, cand,
            ) {
                return any;
            }
            let mut any = false;
            for (((q, &b), o), c) in queries
                .iter()
                .zip(bounds.iter())
                .zip(out.iter_mut())
                .zip(cand.iter_mut())
            {
                (*o, *c) = block8_pruned_portable(q, block, stride, b);
                any |= *c != 0;
            }
            any
        }
    }
}

/// Dispatch the single-row kernel (used for block tails of fewer than
/// 4 rows). Same degradation rules as [`hamming_block4`].
#[inline]
pub fn hamming_row_kernel(kernel: KernelKind, query: &[u64], row: &[u64]) -> u32 {
    match kernel {
        KernelKind::Scalar | KernelKind::Unrolled => hamming_row(query, row),
        KernelKind::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if let Some(h) = avx2::hamming_row_checked(query, row) {
                return h;
            }
            hamming_row(query, row)
        }
        KernelKind::Avx512 => {
            #[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
            if let Some(h) = avx512::hamming_row_checked(query, row) {
                return h;
            }
            hamming_row(query, row)
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
mod avx2 {
    //! AVX2 intrinsic kernels. The popcount is the nibble-LUT form
    //! (Muła): split each byte into nibbles, table-lookup per-nibble
    //! bit counts with `_mm256_shuffle_epi8`, then horizontally sum
    //! bytes into the four u64 lanes with `_mm256_sad_epu8`. Exact
    //! integer counts — bit-identical to `count_ones`.
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// Per-nibble popcount LUT, replicated across both 128-bit lanes
    /// (`_mm256_shuffle_epi8` shuffles within lanes).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 0
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // lane 1
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// # Safety
    /// Caller must guarantee the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hamming_row_avx2(query: &[u64], row: &[u64]) -> u32 {
        debug_assert_eq!(query.len(), row.len());
        let n = query.len();
        let mut acc = _mm256_setzero_si256();
        let mut w = 0usize;
        while w + 4 <= n {
            // SAFETY: w + 4 <= n bounds both unaligned 4-word loads.
            let q = _mm256_loadu_si256(query.as_ptr().add(w) as *const __m256i);
            let r = _mm256_loadu_si256(row.as_ptr().add(w) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(q, r)));
            w += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut h = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as u32;
        while w < n {
            h += (query[w] ^ row[w]).count_ones();
            w += 1;
        }
        h
    }

    /// Horizontal reduction of four per-lane u64 count vectors into
    /// the four row totals, entirely in registers: pairwise lane sums
    /// via unpack, then cross-lane combine via `permute2x128`. Avoids
    /// four separate store-to-stack reductions per block.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum4_epi64_vec(
        x0: __m256i,
        x1: __m256i,
        x2: __m256i,
        x3: __m256i,
    ) -> __m256i {
        // s01 = [x0.q0+q1, x1.q0+q1 | x0.q2+q3, x1.q2+q3], s23 alike.
        let s01 = _mm256_add_epi64(_mm256_unpacklo_epi64(x0, x1), _mm256_unpackhi_epi64(x0, x1));
        let s23 = _mm256_add_epi64(_mm256_unpacklo_epi64(x2, x3), _mm256_unpackhi_epi64(x2, x3));
        let lo = _mm256_permute2x128_si256(s01, s23, 0x20);
        let hi = _mm256_permute2x128_si256(s01, s23, 0x31);
        _mm256_add_epi64(lo, hi)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lanes_to_u32x4(t: __m256i) -> [u32; 4] {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, t);
        [
            lanes[0] as u32,
            lanes[1] as u32,
            lanes[2] as u32,
            lanes[3] as u32,
        ]
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum4_epi64(
        x0: __m256i,
        x1: __m256i,
        x2: __m256i,
        x3: __m256i,
    ) -> [u32; 4] {
        lanes_to_u32x4(sum4_epi64_vec(x0, x1, x2, x3))
    }

    /// # Safety
    /// Caller must guarantee the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hamming_block4_avx2(query: &[u64], block: &[u64], stride: usize) -> [u32; 4] {
        debug_assert_eq!(query.len(), stride);
        debug_assert_eq!(block.len(), 4 * stride);
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        let mut w = 0usize;
        while w + 4 <= stride {
            // SAFETY: w + 4 <= stride bounds every unaligned 4-word
            // load (block holds 4 * stride words).
            let qv = _mm256_loadu_si256(query.as_ptr().add(w) as *const __m256i);
            let x0 = _mm256_loadu_si256(block.as_ptr().add(w) as *const __m256i);
            let x1 = _mm256_loadu_si256(block.as_ptr().add(stride + w) as *const __m256i);
            let x2 = _mm256_loadu_si256(block.as_ptr().add(2 * stride + w) as *const __m256i);
            let x3 = _mm256_loadu_si256(block.as_ptr().add(3 * stride + w) as *const __m256i);
            acc0 = _mm256_add_epi64(acc0, popcount256(_mm256_xor_si256(x0, qv)));
            acc1 = _mm256_add_epi64(acc1, popcount256(_mm256_xor_si256(x1, qv)));
            acc2 = _mm256_add_epi64(acc2, popcount256(_mm256_xor_si256(x2, qv)));
            acc3 = _mm256_add_epi64(acc3, popcount256(_mm256_xor_si256(x3, qv)));
            w += 4;
        }
        let mut h = sum4_epi64(acc0, acc1, acc2, acc3);
        while w < stride {
            let q = query[w];
            h[0] += (q ^ block[w]).count_ones();
            h[1] += (q ^ block[stride + w]).count_ones();
            h[2] += (q ^ block[2 * stride + w]).count_ones();
            h[3] += (q ^ block[3 * stride + w]).count_ones();
            w += 1;
        }
        h
    }

    /// # Safety
    /// Caller must guarantee the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hamming_block4_multi_avx2(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        out: &mut [[u32; 4]],
    ) {
        if stride == 4 {
            // The dominant shape (256-bit signatures): one vector per
            // row. Load the block's four rows into registers once and
            // keep them resident across every query.
            // SAFETY: stride == 4 means block holds 16 words, bounding
            // all four unaligned row loads.
            let r0 = _mm256_loadu_si256(block.as_ptr() as *const __m256i);
            let r1 = _mm256_loadu_si256(block.as_ptr().add(4) as *const __m256i);
            let r2 = _mm256_loadu_si256(block.as_ptr().add(8) as *const __m256i);
            let r3 = _mm256_loadu_si256(block.as_ptr().add(12) as *const __m256i);
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                debug_assert_eq!(q.len(), 4);
                // SAFETY: each query row has exactly stride (4) words.
                let qv = _mm256_loadu_si256(q.as_ptr() as *const __m256i);
                *o = sum4_epi64(
                    popcount256(_mm256_xor_si256(r0, qv)),
                    popcount256(_mm256_xor_si256(r1, qv)),
                    popcount256(_mm256_xor_si256(r2, qv)),
                    popcount256(_mm256_xor_si256(r3, qv)),
                );
            }
        } else {
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                *o = hamming_block4_avx2(q, block, stride);
            }
        }
    }

    /// Safe entry: runs the AVX2 block kernel when the CPU supports
    /// it, `None` otherwise (caller falls back to portable).
    #[inline]
    pub fn hamming_block4_checked(query: &[u64], block: &[u64], stride: usize) -> Option<[u32; 4]> {
        if super::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            Some(unsafe { hamming_block4_avx2(query, block, stride) })
        } else {
            None
        }
    }

    /// # Safety
    /// Caller must guarantee the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hamming_block8_multi_pruned_avx2(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        bounds: &[u32],
        out: &mut [[u32; 8]],
        cand: &mut [u8],
    ) -> bool {
        let mut any = false;
        if stride == 4 {
            // SAFETY: stride == 4 means block holds 32 words, bounding
            // all eight unaligned row loads.
            let p = block.as_ptr();
            let r0 = _mm256_loadu_si256(p as *const __m256i);
            let r1 = _mm256_loadu_si256(p.add(4) as *const __m256i);
            let r2 = _mm256_loadu_si256(p.add(8) as *const __m256i);
            let r3 = _mm256_loadu_si256(p.add(12) as *const __m256i);
            let r4 = _mm256_loadu_si256(p.add(16) as *const __m256i);
            let r5 = _mm256_loadu_si256(p.add(20) as *const __m256i);
            let r6 = _mm256_loadu_si256(p.add(24) as *const __m256i);
            let r7 = _mm256_loadu_si256(p.add(28) as *const __m256i);
            // Index-based walk with unchecked accesses: the zip of
            // four slices costs four pointer updates per query, which
            // is measurable at 64 queries per 8 rows.
            for j in 0..queries.len() {
                // SAFETY: j < queries.len() == bounds/out/cand len
                // (asserted by the dispatching wrapper).
                let q = *queries.get_unchecked(j);
                let b = *bounds.get_unchecked(j);
                debug_assert_eq!(q.len(), 4);
                // SAFETY: each query row has exactly stride (4) words.
                let qv = _mm256_loadu_si256(q.as_ptr() as *const __m256i);
                let t_lo = sum4_epi64_vec(
                    popcount256(_mm256_xor_si256(r0, qv)),
                    popcount256(_mm256_xor_si256(r1, qv)),
                    popcount256(_mm256_xor_si256(r2, qv)),
                    popcount256(_mm256_xor_si256(r3, qv)),
                );
                let t_hi = sum4_epi64_vec(
                    popcount256(_mm256_xor_si256(r4, qv)),
                    popcount256(_mm256_xor_si256(r5, qv)),
                    popcount256(_mm256_xor_si256(r6, qv)),
                    popcount256(_mm256_xor_si256(r7, qv)),
                );
                // Per-lane `h < bound` compare in registers; counts and
                // bounds both fit i64, so the signed compare is exact.
                let bv = _mm256_set1_epi64x(b as i64);
                let m_lo = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(bv, t_lo)));
                let m_hi = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(bv, t_hi)));
                let m = (m_lo | (m_hi << 4)) as u8;
                // SAFETY: j < cand.len() == out.len() (see above).
                *cand.get_unchecked_mut(j) = m;
                if m != 0 {
                    any = true;
                    let lo = lanes_to_u32x4(t_lo);
                    let hi = lanes_to_u32x4(t_hi);
                    *out.get_unchecked_mut(j) =
                        [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]];
                }
            }
        } else {
            for (((q, &b), o), c) in queries
                .iter()
                .zip(bounds.iter())
                .zip(out.iter_mut())
                .zip(cand.iter_mut())
            {
                let lo = hamming_block4_avx2(q, &block[..4 * stride], stride);
                let hi = hamming_block4_avx2(q, &block[4 * stride..], stride);
                *o = [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]];
                *c = super::prune_mask8(o, b);
                any |= *c != 0;
            }
        }
        any
    }

    /// Safe entry for the pruned fused block kernel: `None` when the
    /// CPU lacks AVX2 (caller falls back to portable), otherwise the
    /// kernel's any-candidate flag.
    #[inline]
    pub fn hamming_block8_multi_pruned_checked(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        bounds: &[u32],
        out: &mut [[u32; 8]],
        cand: &mut [u8],
    ) -> Option<bool> {
        if super::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            Some(unsafe {
                hamming_block8_multi_pruned_avx2(queries, block, stride, bounds, out, cand)
            })
        } else {
            None
        }
    }

    /// Safe entry for the fused multi-query block kernel: `false`
    /// when the CPU lacks AVX2 (caller falls back to portable).
    #[inline]
    pub fn hamming_block4_multi_checked(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        out: &mut [[u32; 4]],
    ) -> bool {
        if super::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { hamming_block4_multi_avx2(queries, block, stride, out) };
            true
        } else {
            false
        }
    }

    /// Safe entry for the single-row AVX2 kernel; see
    /// [`hamming_block4_checked`].
    #[inline]
    pub fn hamming_row_checked(query: &[u64], row: &[u64]) -> Option<u32> {
        if super::avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            Some(unsafe { hamming_row_avx2(query, row) })
        } else {
            None
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(gdim_portable)))]
mod avx512 {
    //! AVX-512 intrinsic kernels at 256-bit `VL` width: the AVX2 block
    //! shapes with the nibble-LUT popcount replaced by the
    //! single-instruction `vpopcntq` (`AVX512VPOPCNTDQ`), and the
    //! fused prune compare done with `vpcmpuq` into mask registers.
    //! Staying at 256 bits keeps the row/register layout identical to
    //! the AVX2 module and avoids 512-bit frequency licensing. Exact
    //! integer counts — bit-identical to `count_ones`.
    #![allow(unsafe_code)]

    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must guarantee the CPU supports the `FEATURES` set.
    #[target_feature(enable = "avx2,avx512f,avx512vl,avx512vpopcntdq")]
    unsafe fn hamming_row_avx512(query: &[u64], row: &[u64]) -> u32 {
        debug_assert_eq!(query.len(), row.len());
        let n = query.len();
        let mut acc = _mm256_setzero_si256();
        let mut w = 0usize;
        while w + 4 <= n {
            // SAFETY: w + 4 <= n bounds both unaligned 4-word loads.
            let q = _mm256_loadu_si256(query.as_ptr().add(w) as *const __m256i);
            let r = _mm256_loadu_si256(row.as_ptr().add(w) as *const __m256i);
            acc = _mm256_add_epi64(acc, _mm256_popcnt_epi64(_mm256_xor_si256(q, r)));
            w += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut h = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as u32;
        while w < n {
            h += (query[w] ^ row[w]).count_ones();
            w += 1;
        }
        h
    }

    /// # Safety
    /// Caller must guarantee the CPU supports the `FEATURES` set.
    #[target_feature(enable = "avx2,avx512f,avx512vl,avx512vpopcntdq")]
    unsafe fn hamming_block4_avx512(query: &[u64], block: &[u64], stride: usize) -> [u32; 4] {
        debug_assert_eq!(query.len(), stride);
        debug_assert_eq!(block.len(), 4 * stride);
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        let mut w = 0usize;
        while w + 4 <= stride {
            // SAFETY: w + 4 <= stride bounds every unaligned 4-word
            // load (block holds 4 * stride words).
            let qv = _mm256_loadu_si256(query.as_ptr().add(w) as *const __m256i);
            let x0 = _mm256_loadu_si256(block.as_ptr().add(w) as *const __m256i);
            let x1 = _mm256_loadu_si256(block.as_ptr().add(stride + w) as *const __m256i);
            let x2 = _mm256_loadu_si256(block.as_ptr().add(2 * stride + w) as *const __m256i);
            let x3 = _mm256_loadu_si256(block.as_ptr().add(3 * stride + w) as *const __m256i);
            acc0 = _mm256_add_epi64(acc0, _mm256_popcnt_epi64(_mm256_xor_si256(x0, qv)));
            acc1 = _mm256_add_epi64(acc1, _mm256_popcnt_epi64(_mm256_xor_si256(x1, qv)));
            acc2 = _mm256_add_epi64(acc2, _mm256_popcnt_epi64(_mm256_xor_si256(x2, qv)));
            acc3 = _mm256_add_epi64(acc3, _mm256_popcnt_epi64(_mm256_xor_si256(x3, qv)));
            w += 4;
        }
        // SAFETY: the avx2 reductions only require AVX2, implied here.
        let mut h = super::avx2::sum4_epi64(acc0, acc1, acc2, acc3);
        while w < stride {
            let q = query[w];
            h[0] += (q ^ block[w]).count_ones();
            h[1] += (q ^ block[stride + w]).count_ones();
            h[2] += (q ^ block[2 * stride + w]).count_ones();
            h[3] += (q ^ block[3 * stride + w]).count_ones();
            w += 1;
        }
        h
    }

    /// # Safety
    /// Caller must guarantee the CPU supports the `FEATURES` set.
    #[target_feature(enable = "avx2,avx512f,avx512vl,avx512vpopcntdq")]
    unsafe fn hamming_block4_multi_avx512(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        out: &mut [[u32; 4]],
    ) {
        if stride == 4 {
            // SAFETY: stride == 4 means block holds 16 words, bounding
            // all four unaligned row loads.
            let r0 = _mm256_loadu_si256(block.as_ptr() as *const __m256i);
            let r1 = _mm256_loadu_si256(block.as_ptr().add(4) as *const __m256i);
            let r2 = _mm256_loadu_si256(block.as_ptr().add(8) as *const __m256i);
            let r3 = _mm256_loadu_si256(block.as_ptr().add(12) as *const __m256i);
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                debug_assert_eq!(q.len(), 4);
                // SAFETY: each query row has exactly stride (4) words.
                let qv = _mm256_loadu_si256(q.as_ptr() as *const __m256i);
                *o = super::avx2::sum4_epi64(
                    _mm256_popcnt_epi64(_mm256_xor_si256(r0, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r1, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r2, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r3, qv)),
                );
            }
        } else {
            for (q, o) in queries.iter().zip(out.iter_mut()) {
                *o = hamming_block4_avx512(q, block, stride);
            }
        }
    }

    /// # Safety
    /// Caller must guarantee the CPU supports the `FEATURES` set.
    #[target_feature(enable = "avx2,avx512f,avx512vl,avx512vpopcntdq")]
    unsafe fn hamming_block8_multi_pruned_avx512(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        bounds: &[u32],
        out: &mut [[u32; 8]],
        cand: &mut [u8],
    ) -> bool {
        let mut any = false;
        if stride == 4 {
            // SAFETY: stride == 4 means block holds 32 words, bounding
            // all eight unaligned row loads.
            let p = block.as_ptr();
            let r0 = _mm256_loadu_si256(p as *const __m256i);
            let r1 = _mm256_loadu_si256(p.add(4) as *const __m256i);
            let r2 = _mm256_loadu_si256(p.add(8) as *const __m256i);
            let r3 = _mm256_loadu_si256(p.add(12) as *const __m256i);
            let r4 = _mm256_loadu_si256(p.add(16) as *const __m256i);
            let r5 = _mm256_loadu_si256(p.add(20) as *const __m256i);
            let r6 = _mm256_loadu_si256(p.add(24) as *const __m256i);
            let r7 = _mm256_loadu_si256(p.add(28) as *const __m256i);
            for j in 0..queries.len() {
                // SAFETY: j < queries.len() == bounds/out/cand len
                // (asserted by the dispatching wrapper).
                let q = *queries.get_unchecked(j);
                let b = *bounds.get_unchecked(j);
                debug_assert_eq!(q.len(), 4);
                // SAFETY: each query row has exactly stride (4) words.
                let qv = _mm256_loadu_si256(q.as_ptr() as *const __m256i);
                let t_lo = super::avx2::sum4_epi64_vec(
                    _mm256_popcnt_epi64(_mm256_xor_si256(r0, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r1, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r2, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r3, qv)),
                );
                let t_hi = super::avx2::sum4_epi64_vec(
                    _mm256_popcnt_epi64(_mm256_xor_si256(r4, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r5, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r6, qv)),
                    _mm256_popcnt_epi64(_mm256_xor_si256(r7, qv)),
                );
                // `h < bound` per lane, straight into mask registers.
                let bv = _mm256_set1_epi64x(b as i64);
                let m_lo = _mm256_cmplt_epu64_mask(t_lo, bv);
                let m_hi = _mm256_cmplt_epu64_mask(t_hi, bv);
                let m = m_lo | (m_hi << 4);
                // SAFETY: j < cand.len() == out.len() (see above).
                *cand.get_unchecked_mut(j) = m;
                if m != 0 {
                    any = true;
                    let lo = super::avx2::lanes_to_u32x4(t_lo);
                    let hi = super::avx2::lanes_to_u32x4(t_hi);
                    *out.get_unchecked_mut(j) =
                        [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]];
                }
            }
        } else {
            for (((q, &b), o), c) in queries
                .iter()
                .zip(bounds.iter())
                .zip(out.iter_mut())
                .zip(cand.iter_mut())
            {
                let lo = hamming_block4_avx512(q, &block[..4 * stride], stride);
                let hi = hamming_block4_avx512(q, &block[4 * stride..], stride);
                *o = [lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]];
                *c = super::prune_mask8(o, b);
                any |= *c != 0;
            }
        }
        any
    }

    /// Safe entry: runs the AVX-512 block kernel when the CPU supports
    /// it, `None` otherwise (caller falls back to portable).
    #[inline]
    pub fn hamming_block4_checked(query: &[u64], block: &[u64], stride: usize) -> Option<[u32; 4]> {
        if super::avx512_available() {
            // SAFETY: the FEATURES set was just verified at runtime.
            Some(unsafe { hamming_block4_avx512(query, block, stride) })
        } else {
            None
        }
    }

    /// Safe entry for the fused multi-query block kernel: `false`
    /// when the CPU lacks the features (caller falls back to portable).
    #[inline]
    pub fn hamming_block4_multi_checked(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        out: &mut [[u32; 4]],
    ) -> bool {
        if super::avx512_available() {
            // SAFETY: the FEATURES set was just verified at runtime.
            unsafe { hamming_block4_multi_avx512(queries, block, stride, out) };
            true
        } else {
            false
        }
    }

    /// Safe entry for the pruned fused block kernel: `None` when the
    /// CPU lacks the features (caller falls back to portable),
    /// otherwise the kernel's any-candidate flag.
    #[inline]
    pub fn hamming_block8_multi_pruned_checked(
        queries: &[&[u64]],
        block: &[u64],
        stride: usize,
        bounds: &[u32],
        out: &mut [[u32; 8]],
        cand: &mut [u8],
    ) -> Option<bool> {
        if super::avx512_available() {
            // SAFETY: the FEATURES set was just verified at runtime.
            Some(unsafe {
                hamming_block8_multi_pruned_avx512(queries, block, stride, bounds, out, cand)
            })
        } else {
            None
        }
    }

    /// Safe entry for the single-row AVX-512 kernel; see
    /// [`hamming_block4_checked`].
    #[inline]
    pub fn hamming_row_checked(query: &[u64], row: &[u64]) -> Option<u32> {
        if super::avx512_available() {
            // SAFETY: the FEATURES set was just verified at runtime.
            Some(unsafe { hamming_row_avx512(query, row) })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word soup (splitmix64).
    fn words(n: usize, mut seed: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn every_kernel_matches_the_scalar_reference() {
        for stride in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31] {
            let query = words(stride, 0xabcd ^ stride as u64);
            let block = words(4 * stride, 0x1234 + stride as u64);
            let reference: [u32; 4] =
                core::array::from_fn(|j| hamming_row(&query, &block[j * stride..(j + 1) * stride]));
            for kernel in available_kernels() {
                assert_eq!(
                    hamming_block4(kernel, &query, &block, stride),
                    reference,
                    "kernel {kernel}, stride {stride}"
                );
                for j in 0..4 {
                    assert_eq!(
                        hamming_row_kernel(kernel, &query, &block[j * stride..(j + 1) * stride]),
                        reference[j],
                        "kernel {kernel}, stride {stride}, row {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_multi_kernel_matches_per_query_blocks() {
        for stride in [0usize, 1, 3, 4, 5, 8, 13] {
            let block = words(4 * stride, 0x77 + stride as u64);
            for qn in [0usize, 1, 2, 7, 16] {
                let queries: Vec<Vec<u64>> = (0..qn)
                    .map(|i| words(stride, 0x5150 + (i * 31 + stride) as u64))
                    .collect();
                let qrefs: Vec<&[u64]> = queries.iter().map(Vec::as_slice).collect();
                let reference: Vec<[u32; 4]> = qrefs
                    .iter()
                    .map(|q| {
                        core::array::from_fn(|j| {
                            hamming_row(q, &block[j * stride..(j + 1) * stride])
                        })
                    })
                    .collect();
                for kernel in available_kernels() {
                    let mut out = vec![[u32::MAX; 4]; qn];
                    hamming_block4_multi(kernel, &qrefs, &block, stride, &mut out);
                    assert_eq!(out, reference, "kernel {kernel}, stride {stride}, qn {qn}");
                }
            }
        }
    }

    #[test]
    fn pruned_fused_kernel_matches_reference_and_bound_semantics() {
        for stride in [0usize, 1, 3, 4, 5, 8, 13] {
            let block = words(8 * stride, 0x99 + stride as u64);
            for qn in [0usize, 1, 2, 7, 16] {
                let queries: Vec<Vec<u64>> = (0..qn)
                    .map(|i| words(stride, 0xbead + (i * 17 + stride) as u64))
                    .collect();
                let qrefs: Vec<&[u64]> = queries.iter().map(Vec::as_slice).collect();
                let reference: Vec<[u32; 8]> = qrefs
                    .iter()
                    .map(|q| {
                        core::array::from_fn(|j| {
                            hamming_row(q, &block[j * stride..(j + 1) * stride])
                        })
                    })
                    .collect();
                // Per-query bounds spanning "prune everything" (0),
                // "prune nothing" (MAX), and values straddling the
                // real distances so some rows survive.
                let bounds: Vec<u32> = (0..qn)
                    .map(|j| match j % 4 {
                        0 => 0,
                        1 => u32::MAX,
                        2 => reference[j].iter().copied().min().unwrap_or(0),
                        _ => reference[j].iter().copied().max().unwrap_or(0).max(1),
                    })
                    .collect();
                let want_cand: Vec<u8> = (0..qn)
                    .map(|j| prune_mask8(&reference[j], bounds[j]))
                    .collect();
                let want_any = want_cand.iter().any(|&m| m != 0);
                for kernel in available_kernels() {
                    let mut out = vec![[u32::MAX; 8]; qn];
                    let mut cand = vec![0xffu8; qn];
                    let any = hamming_block8_multi_pruned(
                        kernel, &qrefs, &block, stride, &bounds, &mut out, &mut cand,
                    );
                    assert_eq!(any, want_any, "kernel {kernel}, stride {stride}, qn {qn}");
                    assert_eq!(cand, want_cand, "kernel {kernel}, stride {stride}, qn {qn}");
                    for j in 0..qn {
                        // Distances are only contracted for rows the
                        // candidate mask kept.
                        for r in 0..8 {
                            if (cand[j] >> r) & 1 == 1 {
                                assert_eq!(
                                    out[j][r], reference[j][r],
                                    "kernel {kernel}, stride {stride}, qn {qn}, q {j}, row {r}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn names_round_trip_and_selection_is_available() {
        for k in [
            KernelKind::Scalar,
            KernelKind::Unrolled,
            KernelKind::Avx2,
            KernelKind::Avx512,
        ] {
            assert_eq!(KernelKind::parse(k.name()), Some(k));
            assert_eq!(KernelKind::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(KernelKind::parse("neon"), None);
        assert!(selected_kernel().is_available());
        assert!(available_kernels().contains(&selected_kernel()));
    }
}

//! The WAL's process-wide metrics, recorded into
//! [`gdim_obs::global`]'s registry so any server in the process can
//! scrape them without threading a handle down to the writer.
//!
//! Registration happens once (behind a `OnceLock`); the append/sync
//! hot paths afterwards touch only relaxed atomics, preserving the
//! writer's latency profile.

use std::sync::{Arc, OnceLock};

use gdim_obs::{global, Counter, Gauge, Histogram};

/// The cached instrument handles.
pub(crate) struct WalMetrics {
    /// Latency of one [`WalWriter::append`](crate::WalWriter::append)
    /// or `append_all` call (framing + write + policy sync), in ns.
    pub append_ns: Arc<Histogram>,
    /// Latency of the `fsync` (`sync_data`) calls alone, in ns.
    pub fsync_ns: Arc<Histogram>,
    /// Current log length in bytes (tracks truncation on reopen).
    pub bytes: Arc<Gauge>,
    /// Records appended over the process lifetime, across all logs.
    pub records: Arc<Counter>,
}

/// The singleton handles (registered in the global registry on first
/// use).
pub(crate) fn wal_metrics() -> &'static WalMetrics {
    static M: OnceLock<WalMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let g = global();
        WalMetrics {
            append_ns: g.histogram(
                "gdim_wal_append_ns",
                "Latency of WAL append calls, framing + write + policy sync (ns)",
                &[],
            ),
            fsync_ns: g.histogram(
                "gdim_wal_fsync_ns",
                "Latency of WAL fsync (sync_data) calls (ns)",
                &[],
            ),
            bytes: g.gauge(
                "gdim_wal_bytes",
                "Current write-ahead log length in bytes",
                &[],
            ),
            records: g.counter(
                "gdim_wal_records_total",
                "Records appended to write-ahead logs this process",
                &[],
            ),
        }
    })
}

//! The mutation schema the durable serving layer logs: one
//! [`WalRecord`] per acked mutation, encoded as a WAL frame payload.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! tag       u8     1 = Insert, 2 = Remove
//! -- Insert --
//! nv        u32    vertex count
//! vlabels   nv × u32
//! ne        u32    edge count
//! edges     ne × (u u32, v u32, label u32)
//! -- Remove --
//! id        u32    composed GraphId being tombstoned
//! ```
//!
//! Decoding is paranoid: counts are checked against the bytes actually
//! present *before* any allocation, trailing bytes are an error, and a
//! rebuilt graph re-validates the simple-graph invariants (no
//! self-loops, no parallel edges). A CRC-valid frame whose payload
//! fails here means the log was written by something else — the
//! durable layer surfaces that as a corrupt log, never a panic.

use gdim_graph::{Graph, GraphError};

/// One durable mutation, as logged before it is applied and acked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert this graph into the index (replayed through the same
    /// deterministic placement as the original call).
    Insert(Graph),
    /// Tombstone the graph with this composed id. Replay is
    /// idempotent: removing an already-absent id is a no-op.
    Remove(u32),
}

/// Why a WAL payload failed to decode as a [`WalRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The payload ended before the field being read.
    UnexpectedEof {
        /// Byte offset within the payload where more bytes were needed.
        at: usize,
    },
    /// The first byte named no known record type.
    UnknownTag(u8),
    /// Bytes remained after the record's last field.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The edge list violated the simple-graph invariants.
    BadGraph(GraphError),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::UnexpectedEof { at } => {
                write!(f, "record payload ended unexpectedly at byte {at}")
            }
            RecordError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            RecordError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after record")
            }
            RecordError::BadGraph(e) => write!(f, "record holds an invalid graph: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// Cursor over a record payload with EOF-checked little-endian reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        if self.bytes.len() - self.pos < n {
            return Err(RecordError::UnexpectedEof { at: self.pos });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl WalRecord {
    /// Encodes the record as a WAL frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Insert(g) => {
                let mut buf =
                    Vec::with_capacity(1 + 8 + 4 * g.vertex_count() + 12 * g.edge_count());
                buf.push(TAG_INSERT);
                buf.extend_from_slice(&(g.vertex_count() as u32).to_le_bytes());
                for &l in g.vlabels() {
                    buf.extend_from_slice(&l.to_le_bytes());
                }
                buf.extend_from_slice(&(g.edge_count() as u32).to_le_bytes());
                for e in g.edges() {
                    buf.extend_from_slice(&e.u.to_le_bytes());
                    buf.extend_from_slice(&e.v.to_le_bytes());
                    buf.extend_from_slice(&e.label.to_le_bytes());
                }
                buf
            }
            WalRecord::Remove(id) => {
                let mut buf = Vec::with_capacity(5);
                buf.push(TAG_REMOVE);
                buf.extend_from_slice(&id.to_le_bytes());
                buf
            }
        }
    }

    /// Decodes a WAL frame payload. Counts are validated against the
    /// bytes present before any allocation, so garbage cannot request
    /// absurd buffers even when its CRC happens to check out.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, RecordError> {
        let mut c = Cursor::new(payload);
        let record = match c.u8()? {
            TAG_INSERT => {
                let nv = c.u32()? as usize;
                // Compare in u64: `nv * 4` can overflow usize on
                // 32-bit targets, which would let CRC-valid garbage
                // slip past this guard into a multi-GiB allocation.
                if (c.remaining() as u64) < nv as u64 * 4 {
                    return Err(RecordError::UnexpectedEof { at: c.pos });
                }
                let mut vlabels = Vec::with_capacity(nv);
                for _ in 0..nv {
                    vlabels.push(c.u32()?);
                }
                let ne = c.u32()? as usize;
                if (c.remaining() as u64) < ne as u64 * 12 {
                    return Err(RecordError::UnexpectedEof { at: c.pos });
                }
                let mut edges = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let u = c.u32()?;
                    let v = c.u32()?;
                    let l = c.u32()?;
                    edges.push((u, v, l));
                }
                let graph = Graph::from_parts(vlabels, edges).map_err(RecordError::BadGraph)?;
                WalRecord::Insert(graph)
            }
            TAG_REMOVE => WalRecord::Remove(c.u32()?),
            t => return Err(RecordError::UnknownTag(t)),
        };
        if c.remaining() > 0 {
            return Err(RecordError::TrailingBytes {
                extra: c.remaining(),
            });
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdim_graph::GraphBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.vertex(3);
        let c = b.vertex(1);
        let d = b.vertex(4);
        b.edge(a, c, 7).unwrap();
        b.edge(c, d, 2).unwrap();
        b.build()
    }

    #[test]
    fn insert_roundtrips() {
        let g = sample_graph();
        let rec = WalRecord::Insert(g.clone());
        let decoded = WalRecord::decode(&rec.encode()).unwrap();
        match decoded {
            WalRecord::Insert(h) => assert_eq!(h, g),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn remove_roundtrips() {
        let rec = WalRecord::Remove(0x8000_0005);
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let rec = WalRecord::Insert(g);
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn unknown_tag_is_typed() {
        assert_eq!(
            WalRecord::decode(&[9, 0, 0, 0, 0]),
            Err(RecordError::UnknownTag(9))
        );
    }

    #[test]
    fn empty_payload_is_eof_not_panic() {
        assert_eq!(
            WalRecord::decode(&[]),
            Err(RecordError::UnexpectedEof { at: 0 })
        );
    }

    #[test]
    fn truncated_fields_are_eof_not_panic() {
        let full = WalRecord::Insert(sample_graph()).encode();
        for cut in 0..full.len() {
            let err = WalRecord::decode(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, RecordError::UnexpectedEof { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        // Claims u32::MAX vertices with a 1-byte body: the count check
        // must reject it before reserving anything.
        let mut payload = vec![TAG_INSERT];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.push(0);
        assert!(matches!(
            WalRecord::decode(&payload),
            Err(RecordError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = WalRecord::Remove(3).encode();
        bytes.push(0);
        assert_eq!(
            WalRecord::decode(&bytes),
            Err(RecordError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn invalid_graphs_are_typed() {
        // A self-loop edge (0,0).
        let mut payload = vec![TAG_INSERT];
        payload.extend_from_slice(&1u32.to_le_bytes()); // nv = 1
        payload.extend_from_slice(&5u32.to_le_bytes()); // vlabel
        payload.extend_from_slice(&1u32.to_le_bytes()); // ne = 1
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            WalRecord::decode(&payload),
            Err(RecordError::BadGraph(_))
        ));
    }
}

//! Crash-safe filesystem plumbing: atomic file publication and
//! directory fsyncs.
//!
//! The pattern every durable write in the workspace uses is
//! *write-temp → fsync file → rename → fsync parent directory*: the
//! rename is atomic on POSIX filesystems, so at any crash point the
//! target path holds either the complete old contents or the complete
//! new contents — never a torn mix — and the parent-directory fsync
//! makes the rename itself durable.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Fsyncs a directory so a rename/create inside it is durable. A
/// no-op on platforms where directories cannot be opened for sync
/// (the write itself is still atomic there).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// The temp-file sibling `write_atomic` stages `path`'s new contents
/// in (same directory, so the rename cannot cross filesystems).
fn tmp_sibling(path: &Path) -> io::Result<std::path::PathBuf> {
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = name.to_os_string();
    tmp.push(".tmp");
    Ok(path.with_file_name(tmp))
}

/// Writes `bytes` to `path` **atomically and durably**: stage in a
/// sibling temp file, fsync it, rename over `path`, fsync the parent
/// directory. A crash at any point leaves `path` holding either its
/// previous complete contents or the new complete contents.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path)?;
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gdim-wal-fsutil-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_previous_contents_exactly() {
        let dir = tmp_dir("replace");
        let path = dir.join("CURRENT");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two-longer");
        // No temp file is left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("CURRENT")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_rejects_bare_roots() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}

//! The append-only log: CRC-framed records, a policy-driven writer,
//! and a reader that maps any crash-cut byte prefix back to the exact
//! record prefix it contains.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! len     u32   payload length in bytes (1 ..= MAX_RECORD_BYTES)
//! crc     u32   CRC-32 (IEEE) of the payload
//! payload len B
//! ```
//!
//! A crash while appending leaves the file ending in zero or more
//! complete frames followed by at most one partial one. The reader
//! walks frames from the start and stops at the **first** framing
//! failure, classifying it as a typed [`WalDefect`]:
//!
//! * fewer than 8 bytes left → [`WalDefect::ShortHeader`];
//! * a `len` of 0 or beyond [`MAX_RECORD_BYTES`] (the header bytes are
//!   garbage, not a truncated frame) → [`WalDefect::BadLength`];
//! * the payload runs past end of file → [`WalDefect::TruncatedPayload`];
//! * the payload is present but its checksum disagrees →
//!   [`WalDefect::BadCrc`].
//!
//! Everything before the failure is trusted; the report says exactly
//! how many bytes and records that is, so recovery can truncate the
//! tail and keep appending after a valid prefix.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::fsutil::fsync_dir;

/// Bytes of frame header preceding every payload (`len` + `crc`).
pub const WAL_FRAME_HEADER: u64 = 8;

/// Upper bound on one record's payload. Far above any real mutation
/// record (the server caps request bodies at 1 MiB); its real job is
/// letting the reader tell *garbage header bytes* apart from a
/// genuinely truncated frame.
pub const MAX_RECORD_BYTES: u64 = 1 << 26; // 64 MiB

// ------------------------------------------------------------- crc32

/// The CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum every frame carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ----------------------------------------------------------- defects

/// The first framing failure a [`WalReader`] hit — each shape of torn
/// or corrupt tail gets its own variant, so tests (and operators) can
/// tell a crash mid-header from a crash mid-payload from bit rot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalDefect {
    /// The file ends with 1–7 bytes — not enough for a frame header
    /// (a crash landed mid-header).
    ShortHeader {
        /// Byte offset where the partial frame starts.
        at: u64,
        /// Header bytes present (1..=7).
        have: u64,
    },
    /// The header's length field is impossible (0, or beyond
    /// [`MAX_RECORD_BYTES`]) — these 8 bytes are garbage, not a frame.
    BadLength {
        /// Byte offset of the bad header.
        at: u64,
        /// The length the header claimed.
        len: u64,
        /// The largest length a frame may claim.
        max: u64,
    },
    /// The header is plausible but the payload runs past end of file
    /// (a crash landed mid-payload).
    TruncatedPayload {
        /// Byte offset of the frame.
        at: u64,
        /// Payload bytes the header promised.
        wanted: u64,
        /// Payload bytes actually present.
        have: u64,
    },
    /// The payload is fully present but fails its checksum (torn
    /// in-place write or bit rot).
    BadCrc {
        /// Byte offset of the frame.
        at: u64,
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload found.
        computed: u32,
    },
}

impl std::fmt::Display for WalDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalDefect::ShortHeader { at, have } => {
                write!(f, "short frame header at byte {at} ({have} of 8 bytes)")
            }
            WalDefect::BadLength { at, len, max } => {
                write!(f, "impossible frame length {len} at byte {at} (max {max})")
            }
            WalDefect::TruncatedPayload { at, wanted, have } => {
                write!(
                    f,
                    "truncated payload at byte {at} ({have} of {wanted} bytes)"
                )
            }
            WalDefect::BadCrc {
                at,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "checksum mismatch at byte {at} (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
        }
    }
}

/// What a scan or replay of a log found: how much of the file is a
/// valid record stream, and — when the tail is torn — the first
/// framing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Complete, checksum-valid records found.
    pub records: u64,
    /// Bytes of valid record stream from the start of the file — the
    /// length recovery truncates the log to.
    pub trusted_bytes: u64,
    /// Total bytes in the file.
    pub total_bytes: u64,
    /// The first framing failure past the trusted prefix, or `None`
    /// when the whole file is a clean record stream.
    pub defect: Option<WalDefect>,
}

impl ReplayReport {
    /// Whether the log ends cleanly on a frame boundary.
    pub fn is_clean(&self) -> bool {
        self.defect.is_none()
    }
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} record(s), {}/{} bytes trusted",
            self.records, self.trusted_bytes, self.total_bytes
        )?;
        match &self.defect {
            None => write!(f, ", clean tail"),
            Some(d) => write!(f, ", torn tail: {d}"),
        }
    }
}

// ------------------------------------------------------------ reader

/// Reads a log written by [`WalWriter`], stopping cleanly at the
/// first framing failure (see the [module docs](self)).
pub struct WalReader;

impl WalReader {
    /// Scans `bytes` without materializing payloads: frame boundaries
    /// and checksums only.
    pub fn scan(bytes: &[u8]) -> ReplayReport {
        let mut report = Self::split(bytes).1;
        report.total_bytes = bytes.len() as u64;
        report
    }

    /// Splits `bytes` into its trusted payloads plus the scan report.
    pub fn split(bytes: &[u8]) -> (Vec<&[u8]>, ReplayReport) {
        let mut payloads = Vec::new();
        let total = bytes.len() as u64;
        let mut pos: u64 = 0;
        let defect = loop {
            let rest = total - pos;
            if rest == 0 {
                break None;
            }
            if rest < WAL_FRAME_HEADER {
                break Some(WalDefect::ShortHeader {
                    at: pos,
                    have: rest,
                });
            }
            let p = pos as usize;
            let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as u64;
            let stored = u32::from_le_bytes(bytes[p + 4..p + 8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD_BYTES {
                break Some(WalDefect::BadLength {
                    at: pos,
                    len,
                    max: MAX_RECORD_BYTES,
                });
            }
            let have = rest - WAL_FRAME_HEADER;
            if len > have {
                break Some(WalDefect::TruncatedPayload {
                    at: pos,
                    wanted: len,
                    have,
                });
            }
            let payload = &bytes[p + 8..p + 8 + len as usize];
            let computed = crc32(payload);
            if computed != stored {
                break Some(WalDefect::BadCrc {
                    at: pos,
                    stored,
                    computed,
                });
            }
            payloads.push(payload);
            pos += WAL_FRAME_HEADER + len;
        };
        let report = ReplayReport {
            records: payloads.len() as u64,
            trusted_bytes: pos,
            total_bytes: total,
            defect,
        };
        (payloads, report)
    }

    /// Reads the log at `path` and returns every trusted payload plus
    /// the scan report. A missing file is an error (the durable layer
    /// creates the log before publishing the generation that owns it).
    pub fn read(path: impl AsRef<Path>) -> io::Result<(Vec<Vec<u8>>, ReplayReport)> {
        let bytes = std::fs::read(path)?;
        let (borrowed, report) = Self::split(&bytes);
        Ok((borrowed.into_iter().map(<[u8]>::to_vec).collect(), report))
    }

    /// Replays the log at `path` through `apply`, one trusted payload
    /// at a time, then returns the scan report. `apply` gets the
    /// record's index and payload; its first error aborts the replay.
    pub fn replay<E: From<io::Error>>(
        path: impl AsRef<Path>,
        mut apply: impl FnMut(u64, &[u8]) -> Result<(), E>,
    ) -> Result<ReplayReport, E> {
        let bytes = std::fs::read(path).map_err(E::from)?;
        let (payloads, report) = Self::split(&bytes);
        for (i, payload) in payloads.iter().enumerate() {
            apply(i as u64, payload)?;
        }
        Ok(report)
    }
}

// ------------------------------------------------------------ writer

/// When an append becomes durable (reaches the disk, not just the OS
/// page cache) relative to when it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every record — an append that returned is on
    /// disk, so an ack given after it can never be lost. The durable
    /// server's default.
    Always,
    /// **Group commit**: `fsync` once every `n` records (and on
    /// [`WalWriter::sync`]). Amortizes the sync cost over `n` acks; a
    /// crash can lose up to `n - 1` records that were appended but
    /// not yet synced.
    EveryN(u64),
    /// Never `fsync` from the writer; the OS flushes when it pleases.
    /// Only for benchmarks and tests.
    Never,
}

/// Appends CRC-framed records to a log file under a [`SyncPolicy`]
/// (see the [module docs](self) for the frame layout).
///
/// # Failure handling
///
/// A failed or short write (`ENOSPC`, `EIO`) can leave torn bytes
/// after the last complete frame. Were the writer to keep appending
/// past them, the reader — which trusts only the prefix before the
/// first defect — would silently discard every later record on
/// recovery, including fsynced, acked ones. So an append that fails
/// first **rolls the file back** to the last complete frame
/// (truncate + re-seek); if that rollback itself fails, or an `fsync`
/// fails (after which the kernel may have dropped dirty pages while
/// clearing the error), the writer is **poisoned**: every subsequent
/// append and sync fails until the log is reopened, so no record can
/// ever land after bytes recovery will not trust.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    records: u64,
    policy: SyncPolicy,
    /// Records appended since the last fsync.
    unsynced: u64,
    /// Why the writer refuses all further work (a failed write whose
    /// rollback also failed, or a failed fsync). `None` = usable.
    poisoned: Option<String>,
    /// Test hook: write only this many bytes of the next frame, then
    /// fail — simulates `ENOSPC` / a short write mid-frame.
    #[cfg(test)]
    test_write_limit: Option<usize>,
    /// Test hook: make the post-failure rollback fail too, forcing
    /// the poisoned path.
    #[cfg(test)]
    test_fail_rollback: bool,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path`, fsyncing the file
    /// and its parent directory so the empty log itself is durable.
    pub fn create(path: impl AsRef<Path>, policy: SyncPolicy) -> io::Result<WalWriter> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.sync_all()?;
        if let Some(parent) = path.parent() {
            fsync_dir(parent)?;
        }
        Ok(WalWriter {
            file,
            path,
            len: 0,
            records: 0,
            policy,
            unsynced: 0,
            poisoned: None,
            #[cfg(test)]
            test_write_limit: None,
            #[cfg(test)]
            test_fail_rollback: false,
        })
    }

    /// Opens an existing log for appending after its trusted prefix:
    /// the file is truncated to `trusted_bytes` (discarding any torn
    /// tail a crash left) and the cut is fsynced before the first new
    /// append can land. `records` seeds the record counter.
    pub fn open_trusted(
        path: impl AsRef<Path>,
        trusted_bytes: u64,
        records: u64,
        policy: SyncPolicy,
    ) -> io::Result<WalWriter> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(trusted_bytes)?;
        file.sync_all()?;
        let mut writer = WalWriter {
            file,
            path,
            len: trusted_bytes,
            records,
            policy,
            unsynced: 0,
            poisoned: None,
            #[cfg(test)]
            test_write_limit: None,
            #[cfg(test)]
            test_fail_rollback: false,
        };
        writer.file.seek(SeekFrom::Start(trusted_bytes))?;
        Ok(writer)
    }

    /// Appends one record and applies the sync policy. Returns the
    /// file length after the frame — the offset an acked-prefix proof
    /// needs to associate with this record.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        self.check_usable()?;
        let mut buf = Vec::with_capacity(payload.len() + WAL_FRAME_HEADER as usize);
        Self::frame_into(&mut buf, payload)?;
        self.write_frames(&buf, 1)?;
        self.policy_sync()?;
        let m = crate::obs::wal_metrics();
        m.append_ns.record_duration(t0.elapsed());
        m.records.inc();
        m.bytes.set(self.len.min(i64::MAX as u64) as i64);
        Ok(self.len)
    }

    /// Appends a batch of records with **one** write and one policy
    /// sync at the end — the group-commit fast path. Returns the file
    /// length after the batch.
    pub fn append_all<'a>(
        &mut self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> io::Result<u64> {
        let t0 = std::time::Instant::now();
        self.check_usable()?;
        let mut buf = Vec::new();
        let mut count = 0u64;
        for payload in payloads {
            Self::frame_into(&mut buf, payload)?;
            count += 1;
        }
        self.write_frames(&buf, count)?;
        self.policy_sync()?;
        let m = crate::obs::wal_metrics();
        m.append_ns.record_duration(t0.elapsed());
        m.records.add(count);
        m.bytes.set(self.len.min(i64::MAX as u64) as i64);
        Ok(self.len)
    }

    /// Whether a prior failure poisoned the writer (see the type
    /// docs); a poisoned writer fails every append and sync until the
    /// log is reopened.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn check_usable(&self) -> io::Result<()> {
        match &self.poisoned {
            Some(why) => Err(io::Error::other(format!(
                "write-ahead log writer is poisoned by an earlier failure: {why}"
            ))),
            None => Ok(()),
        }
    }

    /// Writes framed bytes, advancing the counters only once every
    /// byte landed. On failure the file may hold a torn partial frame
    /// after `self.len`; see [`WalWriter::rollback_or_poison`].
    fn write_frames(&mut self, buf: &[u8], count: u64) -> io::Result<()> {
        if let Err(e) = self.raw_write(buf) {
            return Err(self.rollback_or_poison(e));
        }
        self.len += buf.len() as u64;
        self.records += count;
        self.unsynced += count;
        Ok(())
    }

    fn raw_write(&mut self, buf: &[u8]) -> io::Result<()> {
        #[cfg(test)]
        if let Some(limit) = self.test_write_limit {
            let n = limit.min(buf.len());
            self.file.write_all(&buf[..n])?;
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "simulated short write (disk full)",
            ));
        }
        self.file.write_all(buf)
    }

    /// Restores the end-on-a-frame-boundary invariant after a failed
    /// write: truncate back to the last complete frame and re-seek so
    /// the next append lands where recovery's trust ends. If the
    /// rollback itself fails the torn bytes stay on disk, so the
    /// writer is poisoned — appending after them would put records
    /// past the defect, where recovery silently discards them.
    fn rollback_or_poison(&mut self, cause: io::Error) -> io::Error {
        match self.try_rollback() {
            Ok(()) => cause,
            Err(r) => {
                self.poisoned = Some(format!("{cause}; rollback failed: {r}"));
                io::Error::new(
                    cause.kind(),
                    format!("{cause}; log writer poisoned (rollback failed: {r})"),
                )
            }
        }
    }

    fn try_rollback(&mut self) -> io::Result<()> {
        #[cfg(test)]
        if self.test_fail_rollback {
            return Err(io::Error::other("simulated rollback failure"));
        }
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        Ok(())
    }

    fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() || payload.len() as u64 > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record payload of {} bytes outside 1..={MAX_RECORD_BYTES}",
                    payload.len()
                ),
            ));
        }
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        Ok(())
    }

    fn policy_sync(&mut self) -> io::Result<()> {
        match self.policy {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }

    /// Forces everything appended so far onto the disk. A failed
    /// fsync **poisons** the writer: the kernel may have dropped the
    /// dirty pages while clearing the error, so nothing appended since
    /// the last successful sync can be trusted, and no rollback can
    /// repair that — the log must be reopened (which truncates to the
    /// trusted prefix) before any further append.
    pub fn sync(&mut self) -> io::Result<()> {
        self.check_usable()?;
        if self.unsynced > 0 {
            let t0 = std::time::Instant::now();
            if let Err(e) = self.file.sync_data() {
                self.poisoned = Some(format!("fsync failed: {e}"));
                return Err(e);
            }
            crate::obs::wal_metrics()
                .fsync_ns
                .record_duration(t0.elapsed());
            self.unsynced = 0;
        }
        Ok(())
    }

    /// File length in bytes (every byte up to here is a complete
    /// frame).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no record has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records appended over the log's lifetime (including any the
    /// writer was seeded with by [`WalWriter::open_trusted`]).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The writer's sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gdim-wal-frame-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn records() -> Vec<Vec<u8>> {
        vec![b"alpha".to_vec(), vec![0u8; 300], b"z".to_vec()]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_read_roundtrip_and_offsets() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let mut ends = Vec::new();
        for r in records() {
            ends.push(w.append(&r).unwrap());
        }
        assert_eq!(w.records(), 3);
        assert_eq!(*ends.last().unwrap(), w.len());
        let (payloads, report) = WalReader::read(&path).unwrap();
        assert_eq!(payloads, records());
        assert!(report.is_clean());
        assert_eq!(report.records, 3);
        assert_eq!(report.trusted_bytes, w.len());
        assert_eq!(report.total_bytes, w.len());
    }

    #[test]
    fn empty_and_oversized_payloads_are_rejected() {
        let path = tmp("reject");
        let mut w = WalWriter::create(&path, SyncPolicy::Never).unwrap();
        assert!(w.append(b"").is_err());
        assert_eq!(w.len(), 0, "a rejected append writes nothing");
    }

    #[test]
    fn short_header_is_a_distinct_defect() {
        let path = tmp("short-header");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let end = w.append(b"whole").unwrap();
        // A crash that wrote 3 bytes of the next header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0]);
        let report = WalReader::scan(&bytes);
        assert_eq!(report.records, 1);
        assert_eq!(report.trusted_bytes, end);
        assert_eq!(
            report.defect,
            Some(WalDefect::ShortHeader { at: end, have: 3 })
        );
    }

    #[test]
    fn truncated_payload_is_a_distinct_defect() {
        let path = tmp("truncated");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let end = w.append(b"first").unwrap();
        w.append(&[7u8; 64]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut 10 bytes into the second frame's payload.
        let cut = (end + WAL_FRAME_HEADER + 10) as usize;
        let report = WalReader::scan(&bytes[..cut]);
        assert_eq!(report.records, 1);
        assert_eq!(report.trusted_bytes, end);
        assert_eq!(
            report.defect,
            Some(WalDefect::TruncatedPayload {
                at: end,
                wanted: 64,
                have: 10,
            })
        );
    }

    #[test]
    fn bad_crc_is_a_distinct_defect() {
        let path = tmp("badcrc");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let end = w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record.
        let at = (end + WAL_FRAME_HEADER) as usize;
        bytes[at] ^= 0xFF;
        let report = WalReader::scan(&bytes);
        assert_eq!(report.records, 1);
        assert_eq!(report.trusted_bytes, end);
        assert!(
            matches!(report.defect, Some(WalDefect::BadCrc { at, .. }) if at == end),
            "{:?}",
            report.defect
        );
    }

    #[test]
    fn trailing_garbage_is_a_distinct_defect() {
        let path = tmp("garbage");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let end = w.append(b"first").unwrap();
        // 0xFF garbage decodes as an impossible length, not as a
        // truncated frame.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF; 16]);
        let report = WalReader::scan(&bytes);
        assert_eq!(report.records, 1);
        assert_eq!(report.trusted_bytes, end);
        assert_eq!(
            report.defect,
            Some(WalDefect::BadLength {
                at: end,
                len: u32::MAX as u64,
                max: MAX_RECORD_BYTES,
            })
        );
        // A zero length field is garbage too (frames are never empty).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            WalReader::scan(&bytes).defect,
            Some(WalDefect::BadLength { len: 0, .. })
        ));
    }

    #[test]
    fn open_trusted_truncates_the_torn_tail_and_appends_cleanly() {
        let path = tmp("open-trusted");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        w.append(b"keep-me").unwrap();
        let end = w.append(b"keep-me-too").unwrap();
        drop(w);
        // Simulate a crash mid-append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[3, 0, 0, 0, 1]);
        std::fs::write(&path, &bytes).unwrap();
        let report = WalReader::scan(&std::fs::read(&path).unwrap());
        assert_eq!(report.trusted_bytes, end);
        let mut w = WalWriter::open_trusted(
            &path,
            report.trusted_bytes,
            report.records,
            SyncPolicy::Always,
        )
        .unwrap();
        assert_eq!(w.len(), end);
        w.append(b"after-recovery").unwrap();
        let (payloads, report) = WalReader::read(&path).unwrap();
        assert!(report.is_clean());
        assert_eq!(
            payloads,
            vec![
                b"keep-me".to_vec(),
                b"keep-me-too".to_vec(),
                b"after-recovery".to_vec()
            ]
        );
    }

    #[test]
    fn group_commit_counts_appends_between_syncs() {
        let path = tmp("group");
        let mut w = WalWriter::create(&path, SyncPolicy::EveryN(3)).unwrap();
        for _ in 0..7 {
            w.append(b"r").unwrap();
        }
        // 7 appends → syncs after 3 and 6; one record pending.
        assert_eq!(w.unsynced, 1);
        w.sync().unwrap();
        assert_eq!(w.unsynced, 0);
        let batch: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        w.append_all(batch).unwrap();
        assert_eq!(w.records(), 11);
        let (payloads, report) = WalReader::read(&path).unwrap();
        assert!(report.is_clean());
        assert_eq!(payloads.len(), 11);
    }

    #[test]
    fn failed_append_rolls_back_torn_bytes_and_writer_stays_usable() {
        let path = tmp("enospc-rollback");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let end = w.append(b"durable").unwrap();
        // The next frame dies 3 bytes in (simulated ENOSPC): the torn
        // bytes must be truncated away and the counters untouched.
        w.test_write_limit = Some(3);
        let err = w.append(b"lost-to-full-disk").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!((w.len(), w.records()), (end, 1));
        assert!(!w.is_poisoned());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), end);
        // Once the disk recovers, the writer appends cleanly after the
        // last complete frame — no gap, no torn bytes, no lost suffix.
        w.test_write_limit = None;
        w.append(b"after-the-outage").unwrap();
        let (payloads, report) = WalReader::read(&path).unwrap();
        assert!(report.is_clean());
        assert_eq!(
            payloads,
            vec![b"durable".to_vec(), b"after-the-outage".to_vec()]
        );
    }

    #[test]
    fn failed_rollback_poisons_the_writer_until_reopen() {
        let path = tmp("poison");
        let mut w = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        let end = w.append(b"acked").unwrap();
        // A short write whose rollback also fails leaves torn bytes on
        // disk; every later append must fail, or it would land past
        // the defect and be silently discarded by recovery.
        w.test_write_limit = Some(3);
        w.test_fail_rollback = true;
        assert!(w.append(b"torn").is_err());
        assert!(w.is_poisoned());
        w.test_write_limit = None;
        w.test_fail_rollback = false;
        assert!(w.append(b"must-not-land").is_err(), "poisoned append");
        assert!(w.sync().is_err(), "poisoned sync");
        // The trusted prefix is exactly the acked records; nothing was
        // written after the torn bytes.
        let report = WalReader::scan(&std::fs::read(&path).unwrap());
        assert_eq!(report.records, 1);
        assert_eq!(report.trusted_bytes, end);
        assert_eq!(
            report.defect,
            Some(WalDefect::ShortHeader { at: end, have: 3 })
        );
        // Reopening on the trusted prefix yields a healthy writer.
        let mut w = WalWriter::open_trusted(
            &path,
            report.trusted_bytes,
            report.records,
            SyncPolicy::Always,
        )
        .unwrap();
        w.append(b"recovered").unwrap();
        let (payloads, report) = WalReader::read(&path).unwrap();
        assert!(report.is_clean());
        assert_eq!(payloads, vec![b"acked".to_vec(), b"recovered".to_vec()]);
    }

    #[test]
    fn every_byte_cut_recovers_a_frame_prefix() {
        // The heart of the crash-cut contract, exhaustively at the
        // frame layer: for EVERY byte offset, the scan of the prefix
        // trusts exactly the complete frames before the cut, and
        // flags a defect iff the cut is not on a frame boundary.
        let path = tmp("cuts");
        let mut w = WalWriter::create(&path, SyncPolicy::Never).unwrap();
        let mut ends = vec![0u64];
        for r in records() {
            ends.push(w.append(&r).unwrap());
        }
        w.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..=bytes.len() as u64 {
            let report = WalReader::scan(&bytes[..cut as usize]);
            let expect_trusted = *ends.iter().rfind(|&&e| e <= cut).unwrap();
            let expect_records = ends.iter().filter(|&&e| e > 0 && e <= cut).count() as u64;
            assert_eq!(report.trusted_bytes, expect_trusted, "cut at {cut}");
            assert_eq!(report.records, expect_records, "cut at {cut}");
            assert_eq!(
                report.defect.is_some(),
                !ends.contains(&cut),
                "cut at {cut}: {:?}",
                report.defect
            );
        }
    }
}

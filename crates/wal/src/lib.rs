//! # gdim-wal — durability primitives for the serving stack
//!
//! Everything the workspace needs to make acked mutations survive a
//! crash, with no dependencies beyond `std` and the workspace's own
//! zero-dependency `gdim-obs` (which meters every append and fsync
//! into the process-wide metrics registry):
//!
//! * [`fsutil`] — crash-safe file plumbing: [`fsutil::write_atomic`]
//!   (write temp → fsync file → rename → fsync parent directory, so a
//!   crash mid-save never clobbers the previous good file) and
//!   [`fsutil::fsync_dir`].
//! * [`frame`] — the append-only log itself: every record travels in a
//!   CRC-framed envelope (`len · crc32 · payload`), appended by
//!   [`WalWriter`] under a configurable [`SyncPolicy`]
//!   (fsync-per-record, group commit, or none) and read back by
//!   [`WalReader`], which stops **cleanly** at a torn or truncated
//!   tail — the expected disk state after a crash mid-append — and
//!   reports exactly how many bytes it trusted plus a typed
//!   [`WalDefect`] naming the first framing failure.
//! * [`record`] — the mutation schema logged by the durable serving
//!   layer: [`WalRecord::Insert`] / [`WalRecord::Remove`], encoded
//!   compactly and decoded with typed errors.
//!
//! The framing contract is what makes crash recovery provable: a
//! writer that fsyncs a record before acking it guarantees the acked
//! prefix of the log survives any crash as a *byte* prefix of the
//! file, and [`WalReader::scan`] maps any byte prefix back to the
//! exact record prefix it contains (partial trailing frames are
//! detected by length or CRC and discarded). The crash-cut proptests
//! in the workspace root pin this end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frame;
pub mod fsutil;
pub(crate) mod obs;
pub mod record;

pub use frame::{
    ReplayReport, SyncPolicy, WalDefect, WalReader, WalWriter, MAX_RECORD_BYTES, WAL_FRAME_HEADER,
};
pub use record::{RecordError, WalRecord};

//! The server runtime: a `TcpListener` acceptor feeding a
//! [`WorkerPool`] of connection handlers, routing the wire protocol
//! onto a [`ServingHandle`].
//!
//! # Threading model
//!
//! One **acceptor** thread blocks in `accept()` and hands each
//! connection to a fixed pool of workers (`gdim-exec`'s
//! [`WorkerPool`]); a worker owns the connection for its whole
//! keep-alive lifetime. Each worker creates its own [`Reader`] per
//! connection — `Reader` is deliberately not `Sync`, and the one-time
//! cost (an atomic load and an `Arc` clone) is amortized over every
//! request the connection carries. Searches answer from the reader's
//! lock-free snapshot; admin endpoints go through the handle's writer
//! path and publish a fresh snapshot.
//!
//! # Graceful shutdown
//!
//! `POST /shutdown` (or [`GdimServer::request_shutdown`]) only flips a
//! flag and wakes [`GdimServer::wait`] — a handler cannot join the
//! pool it runs on. The owner then calls [`GdimServer::shutdown`],
//! which stops the acceptor (waking its blocking `accept` with a
//! self-connection), lets in-flight requests finish, and joins every
//! worker. Idle keep-alive connections notice within one read-timeout
//! tick and close.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gdim_core::{GdimError, Graph, GraphId, SearchRequest};
use gdim_exec::{BackgroundTask, CancelToken, WorkerPool};
use gdim_obs::{Stage, Trace};
use gdim_shard::{DurableHandle, Reader, ServingHandle, ShardedIndex};

use crate::http::{
    response_bytes, response_bytes_with, HeadParser, HttpError, Method, RequestHead,
    DEFAULT_MAX_BODY_BYTES,
};
use crate::json::{parse, Json};
use crate::metrics::{endpoint_index, error_log_line, slow_log_line, ServerMetrics, ENDPOINTS};
use crate::wire::{
    error_body, gdim_error_status, graph_from_json, query_from_json, request_from_json,
    response_to_json, QuerySpec, WireError,
};

/// Server knobs. `Default` binds an ephemeral loopback port with a
/// small worker pool — the configuration the tests and the load
/// harness use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks a free port).
    pub addr: String,
    /// Connection-handler threads (each serves one connection at a
    /// time, so this bounds concurrent connections).
    pub workers: usize,
    /// Request body cap in bytes; larger declared bodies answer `413`.
    pub max_body_bytes: usize,
    /// Socket read timeout — how often idle connections poll the
    /// shutdown flag, i.e. the worst-case drain latency.
    pub poll_interval: Duration,
    /// Slow-query threshold in milliseconds: requests at or over it
    /// are counted, kept in the slow-query ring, and logged to stderr
    /// with their per-stage breakdown. `0` disables slow logging.
    pub slow_ms: u64,
    /// Capacity of the recent-request ring behind `/stats`'
    /// `slow_queries`.
    pub ring_capacity: usize,
    /// Stage-trace sampling: record per-stage histograms and ring
    /// entries for every Nth request (`1` = all; slow requests are
    /// always recorded regardless).
    pub trace_sample: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 16);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            poll_interval: Duration::from_millis(100),
            slow_ms: 250,
            ring_capacity: 128,
            trace_sample: 1,
        }
    }
}

impl ServerConfig {
    /// The default configuration.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker count (min 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the body cap.
    pub fn with_max_body_bytes(mut self, cap: usize) -> Self {
        self.max_body_bytes = cap;
        self
    }

    /// Sets the shutdown poll interval.
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Sets the slow-query threshold (`0` disables slow logging).
    pub fn with_slow_ms(mut self, slow_ms: u64) -> Self {
        self.slow_ms = slow_ms;
        self
    }

    /// Sets the recent-request ring capacity (min 1).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }

    /// Sets the stage-trace sampling cadence (min 1 = every request).
    pub fn with_trace_sample(mut self, every_n: u64) -> Self {
        self.trace_sample = every_n.max(1);
        self
    }
}

/// The shutdown latch: a flag plus a condvar so [`GdimServer::wait`]
/// can sleep instead of spin.
#[derive(Default)]
struct Latch {
    requested: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn request(&self) {
        self.requested.store(true, Ordering::Release);
        let mut flagged = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        *flagged = true;
        self.cv.notify_all();
    }

    fn is_requested(&self) -> bool {
        self.requested.load(Ordering::Acquire)
    }

    fn wait(&self) {
        let mut flagged = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*flagged {
            flagged = self.cv.wait(flagged).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Monotonic serving counters, reported by `GET /stats`.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    /// Requests answered with a 4xx/5xx (application-level).
    error_responses: AtomicU64,
    /// Connections torn down by an HTTP parse error.
    protocol_errors: AtomicU64,
}

/// Everything a connection handler needs, shared across the pool.
struct Ctx {
    handle: ServingHandle,
    /// Durable mode ([`GdimServer::start_durable`]): mutations route
    /// through the write-ahead log and only ack once on disk.
    durable: Option<DurableHandle>,
    cfg: ServerConfig,
    latch: Latch,
    counters: Counters,
    /// Per-server observability: labeled counters/histograms, the
    /// slow-query ring, request-id generation. See [`crate::metrics`].
    metrics: ServerMetrics,
    /// The in-flight background rebuild, if any (one at a time; a
    /// second `mode: background` request answers `409`).
    rebuild: Mutex<Option<BackgroundTask<Result<bool, GdimError>>>>,
}

impl Ctx {
    fn stopping(&self) -> bool {
        self.latch.is_requested()
    }
}

/// A running server: the acceptor thread, the worker pool, and the
/// address it bound. See the [module docs](self) for the lifecycle.
pub struct GdimServer {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool<TcpStream>>>,
}

impl GdimServer {
    /// Binds `cfg.addr` and starts serving `handle`. Returns once the
    /// listener is live — `addr()` is immediately connectable.
    pub fn start(handle: ServingHandle, cfg: ServerConfig) -> io::Result<GdimServer> {
        Self::start_inner(handle, None, cfg)
    }

    /// Binds `cfg.addr` and starts serving a [`DurableHandle`] in
    /// **durable mode**: `/insert` and `/remove` append to the
    /// write-ahead log (fsynced per the handle's
    /// [`SyncPolicy`](gdim_shard::SyncPolicy)) before they apply, and
    /// only answer `200` once both happened. How much a `200`
    /// guarantees follows the policy: under `SyncPolicy::Always` an
    /// acked mutation survives any crash; under `EveryN(n)` (group
    /// commit) or `Never` the ack precedes the fsync, so a crash can
    /// lose up to the last `n - 1` (resp. all unsynced) acked
    /// mutations in exchange for throughput. `/checkpoint` folds the
    /// log into a new generation; `/rebuild` checkpoints before
    /// acking (background rebuilds are refused: a rebuild reassigns
    /// ids, so its only durable form is the synchronous
    /// rebuild-then-checkpoint).
    pub fn start_durable(durable: DurableHandle, cfg: ServerConfig) -> io::Result<GdimServer> {
        Self::start_inner(durable.serving().clone(), Some(durable), cfg)
    }

    fn start_inner(
        handle: ServingHandle,
        durable: Option<DurableHandle>,
        cfg: ServerConfig,
    ) -> io::Result<GdimServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new(cfg.slow_ms, cfg.ring_capacity, cfg.trace_sample);
        let ctx = Arc::new(Ctx {
            handle,
            durable,
            cfg,
            latch: Latch::default(),
            counters: Counters::default(),
            metrics,
            rebuild: Mutex::new(None),
        });
        let pool = {
            let ctx = Arc::clone(&ctx);
            Arc::new(WorkerPool::new(
                ctx.cfg.workers,
                "gdim-serve",
                move |stream, token: &CancelToken| handle_connection(&ctx, stream, token),
            ))
        };
        let acceptor = {
            let ctx = Arc::clone(&ctx);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("gdim-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if ctx.stopping() {
                            break; // the wake-up self-connection lands here
                        }
                        match stream {
                            Ok(s) => {
                                ctx.counters.connections.fetch_add(1, Ordering::Relaxed);
                                if pool.submit(s).is_err() {
                                    break; // pool is draining
                                }
                            }
                            Err(_) => continue, // transient accept failure
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };
        Ok(GdimServer {
            addr,
            ctx,
            acceptor: Some(acceptor),
            pool: Some(pool),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving handle — the in-process view of the same index the
    /// server answers from (used by tests to pin bit-identity).
    pub fn handle(&self) -> &ServingHandle {
        &self.ctx.handle
    }

    /// The durable handle when running in durable mode
    /// ([`GdimServer::start_durable`]), else `None`.
    pub fn durable(&self) -> Option<&DurableHandle> {
        self.ctx.durable.as_ref()
    }

    /// Blocks until shutdown is requested — by `POST /shutdown` from
    /// the network or [`GdimServer::request_shutdown`] from another
    /// thread. Follow with [`GdimServer::shutdown`] to actually drain.
    pub fn wait(&self) {
        self.ctx.latch.wait();
    }

    /// Requests shutdown without blocking (wakes [`GdimServer::wait`]).
    pub fn request_shutdown(&self) {
        self.ctx.latch.request();
    }

    /// Stops accepting, drains in-flight requests, joins the acceptor
    /// and every worker, and reaps any background rebuild. Idempotent
    /// with [`GdimServer::request_shutdown`]; also run by `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.ctx.latch.request();
        if let Some(acceptor) = self.acceptor.take() {
            // A blocking accept() only notices the flag on its next
            // connection — hand it one.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
        if let Some(pool) = self.pool.take() {
            // The acceptor held the only other Arc and is joined, so
            // the pool is uniquely ours again.
            if let Some(pool) = Arc::into_inner(pool) {
                pool.drain_join();
            }
        }
        let task = self
            .ctx
            .rebuild
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(task) = task {
            let _ = task.join();
        }
    }
}

impl Drop for GdimServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Serves one connection for its whole keep-alive lifetime.
fn handle_connection(ctx: &Ctx, mut stream: TcpStream, token: &CancelToken) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.poll_interval));
    let reader = ctx.handle.reader();
    // Bytes read past the current request (the start of a pipelined
    // next one) carry over between iterations.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        match read_request(&mut stream, &mut carry, ctx, token) {
            Ok(Some((head, body))) => {
                ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
                let m = &ctx.metrics;
                // Echo the client's request id or mint one; either way
                // every response (and every log line about it) carries
                // it in `X-Gdim-Request-Id`.
                let rid = match head.header("x-gdim-request-id") {
                    Some(id) if !id.is_empty() && id.len() <= 64 => {
                        let _ = m.next_request_id(); // keep seq advancing for sampling
                        sanitize_request_id(id)
                    }
                    _ => m.next_request_id(),
                };
                let ep = endpoint_index(head.path.split('?').next().unwrap_or(""));
                let mut obs = ReqTrace {
                    trace: Trace::start(),
                    approximate: false,
                };
                m.in_flight.add(1);
                let (status, payload) = route(ctx, &reader, &head, &body, &mut obs);
                if status >= 400 {
                    ctx.counters.error_responses.fetch_add(1, Ordering::Relaxed);
                }
                if status >= 500 {
                    if let Payload::Json(j) = &payload {
                        eprintln!("{}", error_log_line(&rid, ENDPOINTS[ep], status, j));
                    }
                }
                let keep = head.keep_alive && !ctx.stopping() && !token.is_cancelled();
                let ser = std::time::Instant::now();
                let (content_type, text) = match payload {
                    Payload::Json(j) => ("application/json", j.to_string_compact()),
                    Payload::Text(t) => ("text/plain; version=0.0.4", t),
                };
                let bytes = response_bytes_with(
                    status,
                    content_type,
                    &text,
                    keep,
                    &[("x-gdim-request-id", &rid)],
                );
                obs.trace.record(Stage::Serialize, ser.elapsed());
                let write_ok = stream.write_all(&bytes).is_ok();
                if let Some(slow) = m.observe(
                    ep,
                    status,
                    rid,
                    obs.trace.elapsed(),
                    *obs.trace.stages(),
                    obs.approximate,
                ) {
                    eprintln!("{}", slow_log_line(&slow));
                }
                m.in_flight.sub(1);
                if !write_ok || !keep {
                    return;
                }
            }
            Ok(None) => return, // clean close (EOF between requests, or drain)
            Err(e) => {
                ctx.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let body = error_body(e.code(), &e.to_string()).to_string_compact();
                let _ = stream.write_all(&response_bytes(e.status(), &body, false));
                return;
            }
        }
    }
}

/// Reads one full request (head + body). `Ok(None)` means the
/// connection ended cleanly before a request started — EOF between
/// keep-alive requests, or shutdown while idle.
fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    ctx: &Ctx,
    token: &CancelToken,
) -> Result<Option<(RequestHead, Vec<u8>)>, HttpError> {
    let mut parser = HeadParser::new();
    let mut started = false;
    let mut chunk = [0u8; 8 * 1024];
    let head = loop {
        if !carry.is_empty() {
            started = true;
            let (used, done) = parser.feed(carry)?;
            carry.drain(..used);
            if let Some(head) = done {
                break head;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if started {
                    Err(HttpError::Torn)
                } else {
                    Ok(None)
                };
            }
            Ok(n) => {
                started = true;
                let (used, done) = parser.feed(&chunk[..n])?;
                if let Some(head) = done {
                    carry.extend_from_slice(&chunk[used..n]);
                    break head;
                }
                debug_assert_eq!(used, n, "incomplete heads consume everything");
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.stopping() || token.is_cancelled() {
                    // Mid-head: the request is torn by the drain; idle:
                    // just close.
                    return if started {
                        Err(HttpError::Torn)
                    } else {
                        Ok(None)
                    };
                }
            }
            Err(_) => {
                return if started {
                    Err(HttpError::Torn)
                } else {
                    Ok(None)
                };
            }
        }
    };
    if head.content_length > ctx.cfg.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: head.content_length,
            limit: ctx.cfg.max_body_bytes,
        });
    }
    let need = head.content_length;
    let from_carry = need.min(carry.len());
    let mut body: Vec<u8> = carry.drain(..from_carry).collect();
    while body.len() < need {
        let want = (need - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Torn),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.stopping() || token.is_cancelled() {
                    return Err(HttpError::Torn);
                }
            }
            Err(_) => return Err(HttpError::Torn),
        }
    }
    Ok(Some((head, body)))
}

/// An application-level error reply: status + stable code + message.
struct ApiError {
    status: u16,
    code: String,
    message: String,
}

impl ApiError {
    fn new(status: u16, code: &str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code: code.to_string(),
            message: message.into(),
        }
    }
}

impl From<GdimError> for ApiError {
    fn from(e: GdimError) -> Self {
        ApiError::new(gdim_error_status(&e), e.code(), e.to_string())
    }
}

impl From<WireError> for ApiError {
    fn from(e: WireError) -> Self {
        ApiError::new(400, "bad_request", e.to_string())
    }
}

/// A response body: JSON for the API endpoints, preformatted text for
/// the Prometheus exposition at `GET /metrics`.
enum Payload {
    Json(Json),
    Text(String),
}

/// Per-request observation state threaded through the dispatcher: the
/// stage trace, plus whether the answer used the approximate ranker
/// (surfaced in the slow-query ring).
struct ReqTrace {
    trace: Trace,
    approximate: bool,
}

/// Client-supplied request ids go verbatim into response headers and
/// log lines; strip anything that could break either.
fn sanitize_request_id(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '"' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Dispatches one request; always produces a `(status, body)` pair.
fn route(
    ctx: &Ctx,
    reader: &Reader,
    head: &RequestHead,
    body: &[u8],
    obs: &mut ReqTrace,
) -> (u16, Payload) {
    let path = head.path.split('?').next().unwrap_or("");
    if path == "/metrics" {
        // Text, not JSON — handled before the JSON dispatcher.
        if head.method != Method::Get {
            let body = error_body("method_not_allowed", "/metrics requires GET");
            return (405, Payload::Json(body));
        }
        let snap = reader.current();
        let text = ctx.metrics.render(snap.epoch(), &snap.shard_live_lens());
        return (200, Payload::Text(text));
    }
    match dispatch(ctx, reader, head, body, obs) {
        Ok(json) => (200, Payload::Json(json)),
        Err(e) => (e.status, Payload::Json(error_body(&e.code, &e.message))),
    }
}

/// Parses the body as a JSON object (empty bodies read as `{}` so
/// bodiless POSTs like `/rebuild` work).
fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    if body.is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "bad_json", "request body is not UTF-8"))?;
    parse(text).map_err(|e| ApiError::new(400, "bad_json", e.to_string()))
}

/// Resolves a query spec against one snapshot: id queries borrow the
/// stored graph, inline queries use the shipped one.
fn resolve<'a>(snap: &'a ShardedIndex, spec: &'a QuerySpec) -> Result<&'a Graph, GdimError> {
    match spec {
        QuerySpec::Id(id) => snap.graph(*id),
        QuerySpec::Graph(g) => Ok(g),
    }
}

fn dispatch(
    ctx: &Ctx,
    reader: &Reader,
    head: &RequestHead,
    body: &[u8],
    obs: &mut ReqTrace,
) -> Result<Json, ApiError> {
    // Route on the path first so a known path with the wrong method
    // answers 405, not 404.
    let path = head.path.split('?').next().unwrap_or("");
    let expected = match path {
        "/health" | "/stats" => Method::Get,
        "/search" | "/search_batch" | "/insert" | "/remove" | "/rebuild" | "/checkpoint"
        | "/shutdown" => Method::Post,
        _ => {
            return Err(ApiError::new(
                404,
                "unknown_route",
                format!("no route for {}", head.path),
            ))
        }
    };
    if head.method != expected {
        return Err(ApiError::new(
            405,
            "method_not_allowed",
            format!("{} requires {}", path, expected.as_str()),
        ));
    }
    match path {
        "/health" => Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("version", Json::U64(ctx.handle.version())),
        ])),
        "/stats" => {
            let snap = reader.current();
            let rebuild_in_flight = ctx
                .rebuild
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .is_some_and(|t| !t.is_finished());
            let c = &ctx.counters;
            let mut fields = vec![
                ("version", Json::U64(ctx.handle.version())),
                ("epoch", Json::U64(snap.epoch())),
                ("graphs", Json::U64(snap.len() as u64)),
                ("live_graphs", Json::U64(snap.live_len() as u64)),
                ("shards", Json::U64(snap.shard_count() as u64)),
                ("dimensions", Json::U64(snap.dimensions().len() as u64)),
                ("workers", Json::U64(ctx.cfg.workers as u64)),
                (
                    "connections",
                    Json::U64(c.connections.load(Ordering::Relaxed)),
                ),
                ("requests", Json::U64(c.requests.load(Ordering::Relaxed))),
                (
                    "error_responses",
                    Json::U64(c.error_responses.load(Ordering::Relaxed)),
                ),
                (
                    "protocol_errors",
                    Json::U64(c.protocol_errors.load(Ordering::Relaxed)),
                ),
                ("rebuild_in_flight", Json::Bool(rebuild_in_flight)),
                ("durable", Json::Bool(ctx.durable.is_some())),
            ];
            fields.extend(ctx.metrics.stats_json());
            if let Some(d) = &ctx.durable {
                // Lock-free mirrors: stats stay responsive even while
                // a checkpoint holds the durable lock for a full save.
                fields.push(("generation", Json::U64(d.generation())));
                fields.push(("wal_records", Json::U64(d.wal_records())));
                fields.push(("wal_bytes", Json::U64(d.wal_bytes())));
            }
            Ok(Json::obj(fields))
        }
        "/search" => {
            let j = obs.trace.time(Stage::Parse, || parse_body(body))?;
            let req: SearchRequest = request_from_json(&j)?;
            let spec = query_from_json(
                j.get("query")
                    .ok_or_else(|| ApiError::new(400, "bad_request", "missing \"query\""))?,
            )?;
            let snap = reader.current();
            let resp = snap.search(resolve(&snap, &spec)?, &req)?;
            obs.trace.absorb(&resp.stats.stages);
            obs.approximate = resp.stats.approximate;
            Ok(response_to_json(&resp))
        }
        "/search_batch" => {
            let j = obs.trace.time(Stage::Parse, || parse_body(body))?;
            let req: SearchRequest = request_from_json(&j)?;
            let specs = j
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| ApiError::new(400, "bad_request", "missing \"queries\" array"))?
                .iter()
                .map(query_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let snap = reader.current();
            // The fused path wants one contiguous slice; id queries
            // clone their stored graph into it.
            let graphs = specs
                .iter()
                .map(|s| resolve(&snap, s).cloned())
                .collect::<Result<Vec<_>, _>>()?;
            let responses = snap.search_batch(&graphs, &req)?;
            for r in &responses {
                obs.trace.absorb(&r.stats.stages);
                obs.approximate |= r.stats.approximate;
            }
            Ok(Json::obj([(
                "responses",
                Json::Arr(responses.iter().map(response_to_json).collect()),
            )]))
        }
        "/insert" => {
            let j = obs.trace.time(Stage::Parse, || parse_body(body))?;
            let g = graph_from_json(
                j.get("graph")
                    .ok_or_else(|| ApiError::new(400, "bad_request", "missing \"graph\""))?,
            )?;
            // In durable mode the record hits the log before the
            // index — under SyncPolicy::Always a 200 means it is on
            // disk; group-commit policies ack before the fsync and
            // can lose the last unsynced acks in a crash.
            let id = match &ctx.durable {
                Some(d) => d.insert(g)?,
                None => ctx.handle.insert(g),
            };
            Ok(Json::obj([
                ("id", Json::U64(id.get() as u64)),
                ("version", Json::U64(ctx.handle.version())),
            ]))
        }
        "/remove" => {
            let j = obs.trace.time(Stage::Parse, || parse_body(body))?;
            let id = j
                .get("id")
                .and_then(Json::as_u64)
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| ApiError::new(400, "bad_request", "missing or bad \"id\""))?;
            let removed = match &ctx.durable {
                Some(d) => d.remove(GraphId(id))?,
                None => ctx.handle.remove(GraphId(id))?,
            };
            Ok(Json::obj([
                ("removed", Json::Bool(removed)),
                ("version", Json::U64(ctx.handle.version())),
            ]))
        }
        "/rebuild" => {
            let j = parse_body(body)?;
            let mode = match j.get("mode") {
                None => "sync",
                Some(m) => m.as_str().ok_or_else(|| {
                    ApiError::new(
                        400,
                        "bad_request",
                        "mode must be \"sync\" or \"background\"",
                    )
                })?,
            };
            match mode {
                "sync" => {
                    // Durable rebuild reassigns ids, so it cannot be
                    // logged — it checkpoints before acking instead.
                    if let Some(d) = &ctx.durable {
                        let generation = d.rebuild()?;
                        return Ok(Json::obj([
                            ("swapped", Json::Bool(true)),
                            ("version", Json::U64(ctx.handle.version())),
                            ("generation", Json::U64(generation)),
                        ]));
                    }
                    let task = ctx.handle.spawn_rebuild();
                    let swapped = ctx.handle.install(task)?;
                    Ok(Json::obj([
                        ("swapped", Json::Bool(swapped)),
                        ("version", Json::U64(ctx.handle.version())),
                    ]))
                }
                "background" => {
                    if ctx.durable.is_some() {
                        return Err(ApiError::new(
                            400,
                            "bad_request",
                            "durable mode only supports mode: \"sync\" (a rebuild must \
                             checkpoint before it can be acked)",
                        ));
                    }
                    let mut slot = ctx.rebuild.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(prev) = slot.take() {
                        if !prev.is_finished() {
                            *slot = Some(prev);
                            return Err(ApiError::new(
                                409,
                                "rebuild_in_flight",
                                "a background rebuild is already running",
                            ));
                        }
                        let _ = prev.join(); // reap the finished one
                    }
                    let handle = ctx.handle.clone();
                    *slot = Some(BackgroundTask::spawn(move |_token| {
                        let task = handle.spawn_rebuild();
                        Some(handle.install(task))
                    }));
                    Ok(Json::obj([("started", Json::Bool(true))]))
                }
                other => Err(ApiError::new(
                    400,
                    "bad_request",
                    format!("unknown rebuild mode {other:?}"),
                )),
            }
        }
        "/checkpoint" => {
            let Some(d) = &ctx.durable else {
                return Err(ApiError::new(
                    400,
                    "not_durable",
                    "the server is not running in --durable mode",
                ));
            };
            let generation = d.checkpoint()?;
            Ok(Json::obj([
                ("generation", Json::U64(generation)),
                ("wal_records", Json::U64(d.wal_records())),
            ]))
        }
        "/shutdown" => {
            ctx.latch.request();
            Ok(Json::obj([("stopping", Json::Bool(true))]))
        }
        _ => unreachable!("path was matched above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use gdim_core::IndexOptions;
    use gdim_shard::ShardedOptions;

    fn serving_handle(n: usize, seed: u64) -> ServingHandle {
        let db = gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed);
        let idx = ShardedIndex::build(
            db,
            ShardedOptions::new(2).with_index(IndexOptions::default().with_dimensions(8)),
        );
        ServingHandle::new(idx)
    }

    fn start(n: usize, seed: u64) -> GdimServer {
        let cfg = ServerConfig::new()
            .with_workers(2)
            .with_poll_interval(Duration::from_millis(20));
        GdimServer::start(serving_handle(n, seed), cfg).expect("bind ephemeral port")
    }

    fn search_body(id: u32, k: usize) -> Json {
        Json::obj([
            ("query", Json::obj([("id", Json::U64(id as u64))])),
            ("k", Json::U64(k as u64)),
        ])
    }

    #[test]
    fn served_hits_are_bit_identical_to_in_process() {
        let server = start(24, 5);
        let mut client = Client::connect(server.addr()).unwrap();
        // Global ids are composed (shard ⊕ local row), not dense —
        // resolve real ids through the insertion sequence numbers.
        let snap0 = server.handle().snapshot();
        let ids: Vec<u32> = [0u64, 13, 23]
            .iter()
            .map(|&seq| snap0.id_for_seq(seq).unwrap().get())
            .collect();
        for id in ids {
            let (status, j) = client.post("/search", &search_body(id, 5)).unwrap();
            assert_eq!(status, 200, "{j:?}");
            let served = crate::wire::response_from_json(&j).unwrap();
            let snap = server.handle().snapshot();
            let local = snap
                .search(snap.graph(GraphId(id)).unwrap(), &SearchRequest::topk(5))
                .unwrap();
            assert_eq!(served.hits.len(), local.hits.len());
            for (a, b) in served.hits.iter().zip(&local.hits) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        server.shutdown();
    }

    #[test]
    fn approx_ranker_serves_over_the_wire_and_says_so() {
        let server = start(24, 5);
        let mut client = Client::connect(server.addr()).unwrap();
        let snap = server.handle().snapshot();
        let id = snap.id_for_seq(3).unwrap().get();
        // ef far above n: the beam is exhaustive, so even the inexact
        // ranker must reproduce the in-process answer bit for bit.
        let mut body = search_body(id, 5);
        if let Json::Obj(fields) = &mut body {
            fields.push((
                "ranker".into(),
                Json::obj([("approx", Json::obj([("ef", Json::U64(64))]))]),
            ));
        }
        let (status, j) = client.post("/search", &body).unwrap();
        assert_eq!(status, 200, "{j:?}");
        let served = crate::wire::response_from_json(&j).unwrap();
        assert!(served.stats.approximate, "stats must admit inexactness");
        assert_eq!(served.stats.ef, 64);
        assert!(served.stats.beam_visited > 0);
        let req = SearchRequest::new(5).ranker(gdim_core::Ranker::Approx {
            ef: 64,
            verify: None,
        });
        let local = snap.search(snap.graph(GraphId(id)).unwrap(), &req).unwrap();
        assert_eq!(served.hits.len(), local.hits.len());
        for (a, b) in served.hits.iter().zip(&local.hits) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        server.shutdown();
    }

    #[test]
    fn batch_endpoint_matches_in_process_fused_batch() {
        let server = start(24, 6);
        let mut client = Client::connect(server.addr()).unwrap();
        let snap = server.handle().snapshot();
        let ids: Vec<u32> = (0..4u64)
            .map(|seq| snap.id_for_seq(seq).unwrap().get())
            .collect();
        let queries = Json::Arr(
            ids.iter()
                .map(|&id| Json::obj([("id", Json::U64(id as u64))]))
                .collect(),
        );
        let body = Json::obj([("queries", queries), ("k", Json::U64(3))]);
        let (status, j) = client.post("/search_batch", &body).unwrap();
        assert_eq!(status, 200, "{j:?}");
        let served: Vec<_> = j.get("responses").and_then(Json::as_arr).unwrap().to_vec();
        let graphs: Vec<Graph> = ids
            .iter()
            .map(|&id| snap.graph(GraphId(id)).unwrap().clone())
            .collect();
        let local = snap.search_batch(&graphs, &SearchRequest::topk(3)).unwrap();
        assert_eq!(served.len(), local.len());
        for (sj, l) in served.iter().zip(&local) {
            let s = crate::wire::response_from_json(sj).unwrap();
            assert!(
                s.stats.fused_batch,
                "batch answers go through the fused path"
            );
            for (a, b) in s.hits.iter().zip(&l.hits) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
        server.shutdown();
    }

    #[test]
    fn admin_cycle_insert_remove_rebuild_reflects_in_stats() {
        let server = start(16, 7);
        let mut client = Client::connect(server.addr()).unwrap();
        let (_, stats0) = client.get("/stats").unwrap();
        let live0 = stats0.get("live_graphs").and_then(Json::as_u64).unwrap();

        // Insert a copy of graph 0 (fetched locally for the test).
        let g = server
            .handle()
            .snapshot()
            .graph(GraphId(0))
            .unwrap()
            .clone();
        let (status, j) = client
            .post(
                "/insert",
                &Json::obj([("graph", crate::wire::graph_to_json(&g))]),
            )
            .unwrap();
        assert_eq!(status, 200, "{j:?}");
        let new_id = j.get("id").and_then(Json::as_u64).unwrap() as u32;

        let (_, stats1) = client.get("/stats").unwrap();
        assert_eq!(
            stats1.get("live_graphs").and_then(Json::as_u64).unwrap(),
            live0 + 1
        );

        // Remove it again; removing twice reports false.
        let rm = Json::obj([("id", Json::U64(new_id as u64))]);
        let (status, j) = client.post("/remove", &rm).unwrap();
        assert_eq!(
            (status, j.get("removed").and_then(Json::as_bool)),
            (200, Some(true))
        );
        let (status, j) = client.post("/remove", &rm).unwrap();
        assert_eq!(
            (status, j.get("removed").and_then(Json::as_bool)),
            (200, Some(false))
        );

        // A sync rebuild compacts the tombstone away and bumps epoch.
        let (status, j) = client
            .post("/rebuild", &Json::obj([("mode", Json::Str("sync".into()))]))
            .unwrap();
        assert_eq!(status, 200, "{j:?}");
        assert_eq!(j.get("swapped").and_then(Json::as_bool), Some(true));
        let (_, stats2) = client.get("/stats").unwrap();
        assert_eq!(
            stats2.get("live_graphs").and_then(Json::as_u64).unwrap(),
            live0
        );
        assert_eq!(
            stats2.get("graphs").and_then(Json::as_u64).unwrap(),
            live0,
            "rebuild compacts tombstones"
        );
        server.shutdown();
    }

    #[test]
    fn unknown_routes_and_wrong_methods_answer_typed_errors() {
        let server = start(12, 8);
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, j) = client.get("/nope").unwrap();
        assert_eq!(status, 404);
        assert_eq!(
            j.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("unknown_route")
        );
        let (status, j) = client.get("/search").unwrap();
        assert_eq!(status, 405);
        assert_eq!(
            j.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("method_not_allowed")
        );
        // A graph id past the database answers 404 with the GdimError code.
        let (status, j) = client.post("/search", &search_body(9999, 3)).unwrap();
        assert_eq!(status, 404, "{j:?}");
        assert_eq!(
            j.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("graph_out_of_range")
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_unblocks_wait_and_drains() {
        let server = start(12, 9);
        let addr = server.addr();
        let waiter = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let (status, j) = client.post("/shutdown", &Json::Null).unwrap();
            assert_eq!(status, 200);
            assert_eq!(j.get("stopping").and_then(Json::as_bool), Some(true));
        });
        server.wait(); // returns once the POST landed
        waiter.join().unwrap();
        server.shutdown(); // drains without hanging
    }

    #[test]
    fn durable_mode_acks_survive_reopen_and_checkpoint_rolls_generations() {
        use gdim_shard::{DurableHandle, SyncPolicy};
        let dir = std::env::temp_dir().join(format!("gdim-srv-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = gdim_datagen::chem_db(12, &gdim_datagen::ChemConfig::default(), 11);
        let extra = db[0].clone();
        let idx = ShardedIndex::build(
            db,
            ShardedOptions::new(2).with_index(IndexOptions::default().with_dimensions(8)),
        );
        let durable = DurableHandle::create(&dir, idx, SyncPolicy::Always).unwrap();
        let cfg = ServerConfig::new()
            .with_workers(2)
            .with_poll_interval(Duration::from_millis(20));
        let server = GdimServer::start_durable(durable, cfg).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        // /checkpoint works only in durable mode and rolls the generation.
        let (status, j) = client.post("/checkpoint", &Json::Null).unwrap();
        assert_eq!(status, 200, "{j:?}");
        assert_eq!(j.get("generation").and_then(Json::as_u64), Some(1));

        // An acked insert is in the log; /stats reports durable state.
        let (status, j) = client
            .post(
                "/insert",
                &Json::obj([("graph", crate::wire::graph_to_json(&extra))]),
            )
            .unwrap();
        assert_eq!(status, 200, "{j:?}");
        let id = j.get("id").and_then(Json::as_u64).unwrap() as u32;
        let (_, stats) = client.get("/stats").unwrap();
        assert_eq!(stats.get("durable").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("wal_records").and_then(Json::as_u64), Some(1));

        // Background rebuilds are refused in durable mode.
        let (status, j) = client
            .post(
                "/rebuild",
                &Json::obj([("mode", Json::Str("background".into()))]),
            )
            .unwrap();
        assert_eq!(status, 400, "{j:?}");

        let want = server.handle().snapshot();
        server.shutdown();

        // Reopening recovers the acked insert bit-identically.
        let (reopened, report) = DurableHandle::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(report.wal_records, 1);
        let got = reopened.serving().snapshot();
        assert_eq!(got.live_len(), want.live_len());
        assert_eq!(got.graph(GraphId(id)).unwrap(), &extra);
        let q = got.graph(GraphId(id)).unwrap().clone();
        let a = want.search(&q, &SearchRequest::topk(5)).unwrap();
        let b = got.search(&q, &SearchRequest::topk(5)).unwrap();
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!((x.id, x.distance.to_bits()), (y.id, y.distance.to_bits()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_without_durable_mode_is_a_typed_400() {
        let server = start(8, 12);
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, j) = client.post("/checkpoint", &Json::Null).unwrap();
        assert_eq!(status, 400);
        assert_eq!(
            j.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("not_durable")
        );
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_parseable_exposition() {
        let server = start(24, 13);
        let mut client = Client::connect(server.addr()).unwrap();
        let snap = server.handle().snapshot();
        let id = snap.id_for_seq(0).unwrap().get();
        let (status, _) = client.post("/search", &search_body(id, 5)).unwrap();
        assert_eq!(status, 200);
        let (status, text) = client.get_text("/metrics").unwrap();
        assert_eq!(status, 200);
        let expo = gdim_obs::expo::parse(&text).expect("exposition parses");
        assert_eq!(expo.type_of("gdim_requests_total"), Some("counter"));
        assert_eq!(expo.type_of("gdim_request_latency_ns"), Some("histogram"));
        assert_eq!(expo.type_of("gdim_stage_ns"), Some("histogram"));
        assert_eq!(expo.type_of("gdim_in_flight_requests"), Some("gauge"));
        assert!(
            expo.value("gdim_requests_total", &[("endpoint", "search")])
                .unwrap()
                >= 1.0
        );
        assert!(expo.value("gdim_uptime_ns", &[]).unwrap() > 0.0);
        assert_eq!(expo.value("gdim_live_graphs", &[]), Some(24.0));
        let hist = expo
            .histogram("gdim_request_latency_ns", &[("endpoint", "search")])
            .expect("search latency histogram reconstructs");
        assert!(hist.p50() > 0, "a real request landed in a real bucket");
        // Every serving endpoint is pre-registered — a scraper sees
        // the full catalogue even before traffic arrives.
        for ep in ["search_batch", "insert", "remove", "checkpoint"] {
            assert!(
                expo.value("gdim_requests_total", &[("endpoint", ep)])
                    .is_some(),
                "missing eager series for {ep}"
            );
        }
        // Wrong method answers a typed 405, like every other route.
        let (status, j) = client.post("/metrics", &Json::Null).unwrap();
        assert_eq!(status, 405, "{j:?}");
        server.shutdown();
    }

    #[test]
    fn responses_carry_request_ids_and_echo_client_supplied_ones() {
        use std::io::{Read as _, Write as _};
        let server = start(8, 14);
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(
            b"GET /health HTTP/1.1\r\nhost: t\r\nx-gdim-request-id: my-trace-7\r\n\
              content-length: 0\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
        let mut reply = String::new();
        raw.read_to_string(&mut reply).unwrap();
        assert!(
            reply.contains("x-gdim-request-id: my-trace-7\r\n"),
            "client id must be echoed, got:\n{reply}"
        );
        // Without a client id the server mints one: 8-hex boot, dash, seq.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(
            b"GET /health HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
        let mut reply = String::new();
        raw.read_to_string(&mut reply).unwrap();
        let line = reply
            .lines()
            .find(|l| l.starts_with("x-gdim-request-id: "))
            .expect("generated id header present");
        let id = line.trim_start_matches("x-gdim-request-id: ").trim();
        let (boot, seq) = id.split_once('-').expect("boot-seq shape");
        assert_eq!(boot.len(), 8);
        assert!(u64::from_str_radix(seq, 16).is_ok());
        server.shutdown();
    }

    #[test]
    fn stats_reports_uptime_per_endpoint_latency_and_slowest_requests() {
        let server = start(16, 15);
        let mut client = Client::connect(server.addr()).unwrap();
        let snap = server.handle().snapshot();
        let id = snap.id_for_seq(1).unwrap().get();
        for _ in 0..3 {
            let (status, _) = client.post("/search", &search_body(id, 3)).unwrap();
            assert_eq!(status, 200);
        }
        let (status, stats) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        assert!(stats.get("uptime_ns").and_then(Json::as_u64).unwrap() > 0);
        let search = stats
            .get("endpoints")
            .and_then(|e| e.get("search"))
            .expect("per-endpoint block for search");
        assert_eq!(search.get("requests").and_then(Json::as_u64), Some(3));
        assert_eq!(search.get("errors").and_then(Json::as_u64), Some(0));
        assert!(search.get("p50_ns").and_then(Json::as_u64).unwrap() > 0);
        // The ring saw the searches; the slow-query log lists them
        // slowest-first with their ids and stage breakdowns.
        let slow = stats.get("slow_queries").and_then(Json::as_arr).unwrap();
        assert!(!slow.is_empty());
        let entry = slow
            .iter()
            .find(|e| e.get("endpoint").and_then(Json::as_str) == Some("search"))
            .expect("a search in the ring");
        assert!(entry.get("id").and_then(Json::as_str).is_some());
        assert!(entry.get("wall_ns").and_then(Json::as_u64).unwrap() > 0);
        assert!(entry.get("stages").is_some());
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_are_refused_with_413() {
        let cfg = ServerConfig::new()
            .with_workers(1)
            .with_max_body_bytes(64)
            .with_poll_interval(Duration::from_millis(20));
        let server = GdimServer::start(serving_handle(8, 10), cfg).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let big = Json::obj([("pad", Json::Str("x".repeat(256)))]);
        let (status, j) = client.post("/search", &big).unwrap();
        assert_eq!(status, 413, "{j:?}");
        assert_eq!(
            j.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("body_too_large")
        );
        server.shutdown();
    }
}

//! # gdim-server — serving the index over the network
//!
//! The network layer over `gdim-shard`'s concurrent serving runtime:
//! a hand-rolled HTTP/1.1 + JSON stack built entirely on `std::net`,
//! so the workspace stays dependency-free end to end.
//!
//! * [`json`] — a small JSON value type with **bit-faithful** number
//!   round-trips (shortest-representation floats, exact integers).
//! * [`http`] — an incremental, bounded HTTP/1.1 request parser and
//!   response writer with typed protocol errors.
//! * [`wire`] — the endpoint schema: `SearchRequest` /
//!   `SearchResponse` / graphs ⇄ JSON, plus the pinned
//!   `GdimError` → HTTP-status mapping.
//! * [`server`] — [`GdimServer`]: acceptor + worker pool +
//!   keep-alive connection loop + graceful drain.
//! * [`client`] — [`Client`]: a keep-alive client speaking the same
//!   protocol, shared by the CLI, tests, and the load harness.
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Body | Answer |
//! |---|---|---|---|
//! | `/search` | POST | `{"query": {"id": n} \| {"graph": …}, "k", "ranker", "mapping", "budget"}` | `{"hits", "stats"}` |
//! | `/search_batch` | POST | `{"queries": […], …options}` | `{"responses": […]}` (fused scan) |
//! | `/insert` | POST | `{"graph": {"v": […], "e": [[u,v,label]…]}}` | `{"id", "version"}` |
//! | `/remove` | POST | `{"id": n}` | `{"removed", "version"}` |
//! | `/rebuild` | POST | `{"mode": "sync" \| "background"}` | `{"swapped"\|"started", …}` |
//! | `/checkpoint` | POST | — | `{"generation", "wal_records"}` (durable mode only) |
//! | `/stats` | GET | — | index + serving counters, per-endpoint latency, slow-query log |
//! | `/metrics` | GET | — | Prometheus text exposition (latency/stage histograms, gauges) |
//! | `/health` | GET | — | `{"ok": true, "version"}` |
//! | `/shutdown` | POST | — | `{"stopping": true}`, then the server drains |
//!
//! Every response carries an `X-Gdim-Request-Id` header — echoed from
//! the request when the client sent one, minted otherwise — and slow
//! or 5xx requests are logged to stderr with the same id, so a client
//! report and a server log line are joinable. All serving counters are
//! process-lifetime: they reset to zero on restart and are never reset
//! by rebuilds or checkpoints.
//!
//! Errors answer `{"error": {"code": "...", "message": "..."}}` with
//! the status from [`wire::gdim_error_status`] (application errors)
//! or [`http::HttpError::status`] (protocol errors).
//!
//! ```no_run
//! use gdim_server::{Client, GdimServer, ServerConfig, Json};
//! # fn handle() -> gdim_shard::ServingHandle { unimplemented!() }
//! let server = GdimServer::start(handle(), ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let body = Json::obj([
//!     ("query", Json::obj([("id", Json::U64(0))])),
//!     ("k", Json::U64(5)),
//! ]);
//! let (status, hits) = client.post("/search", &body)?;
//! assert_eq!(status, 200);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub(crate) mod metrics;
pub mod server;
pub mod wire;

pub use client::Client;
pub use json::{parse as parse_json, Json};
pub use server::{GdimServer, ServerConfig};
pub use wire::QuerySpec;

//! The wire schema: conversions between the typed serving API
//! (`SearchRequest` / `SearchResponse` / `SearchStats` / `Graph`) and
//! [`Json`] values — **bit-faithful** in both directions, so a served
//! answer parsed back equals the in-process one, hit for hit, distance
//! bit for distance bit (pinned by round-trip proptests).
//!
//! Schema summary (all keys lowercase):
//!
//! ```text
//! graph     {"v": [vlabel, ...], "e": [[u, v, elabel], ...]}
//! query     {"id": 3} | {"graph": <graph>}
//! request   {"query": <query>, "k": 10, "ranker": "mapped" | "exact"
//!            | {"refined": {"candidates": 20}}
//!            | {"approx": {"ef": 64, "verify": null | n}},
//!            "mapping": "binary" | "weighted", "budget": null | n}
//! response  {"hits": [{"id": 3, "distance": 0.0}, ...],
//!            "stats": <stats>}
//! stats     every `SearchStats` counter by field name; durations in
//!            nanoseconds (`match_time_ns`, `wall_time_ns`); `kernel`
//!            a name string or null
//! error     {"error": {"code": "...", "message": "..."}}
//! ```
//!
//! Absent request fields take the [`SearchRequest`] defaults, so
//! `{"query": {"id": 0}}` is a complete request.

use gdim_core::scan::KernelKind;
use gdim_core::{
    GdimError, Graph, GraphId, Hit, MappingKind, Ranker, SearchRequest, SearchResponse, SearchStats,
};
use gdim_graph::GraphBuilder;
use std::time::Duration;

use crate::json::Json;

/// A malformed (well-formed JSON, wrong shape) wire value; the message
/// names the offending key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire value: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn bad(what: &str) -> WireError {
    WireError(what.to_string())
}

/// What a search request ran against: a database graph addressed by
/// id, or an inline query graph shipped in the request body.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Query with database graph `id` (the common case for skewed
    /// self-similarity traffic; saves shipping the graph).
    Id(GraphId),
    /// Query with an inline graph.
    Graph(Graph),
}

/// Serializes a graph as `{"v": [...], "e": [[u, v, label], ...]}`.
pub fn graph_to_json(g: &Graph) -> Json {
    let v = Json::Arr(g.vlabels().iter().map(|&l| Json::U64(l as u64)).collect());
    let e = Json::Arr(
        g.edges()
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::U64(e.u as u64),
                    Json::U64(e.v as u64),
                    Json::U64(e.label as u64),
                ])
            })
            .collect(),
    );
    Json::obj([("v", v), ("e", e)])
}

/// Parses a graph; rejects out-of-range endpoints and duplicate edges.
pub fn graph_from_json(j: &Json) -> Result<Graph, WireError> {
    let vlabels: Vec<u32> = j
        .get("v")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("graph.v must be an array of vertex labels"))?
        .iter()
        .map(|l| {
            l.as_u64()
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| bad("graph.v entries must be u32 labels"))
        })
        .collect::<Result<_, _>>()?;
    let mut b = GraphBuilder::with_vertices(vlabels);
    let edges = j
        .get("e")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("graph.e must be an array of [u, v, label] triples"))?;
    for e in edges {
        let t = e
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| bad("graph.e entries must be [u, v, label] triples"))?;
        let idx = |i: usize| -> Result<u32, WireError> {
            t[i].as_u64()
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| bad("graph.e entries must be u32 triples"))
        };
        b.edge(idx(0)?, idx(1)?, idx(2)?)
            .map_err(|e| bad(&format!("graph.e: {e:?}")))?;
    }
    Ok(b.build())
}

/// Serializes a query spec.
pub fn query_to_json(q: &QuerySpec) -> Json {
    match q {
        QuerySpec::Id(id) => Json::obj([("id", Json::U64(id.get() as u64))]),
        QuerySpec::Graph(g) => Json::obj([("graph", graph_to_json(g))]),
    }
}

/// Parses a query spec: exactly one of `id` / `graph`.
pub fn query_from_json(j: &Json) -> Result<QuerySpec, WireError> {
    match (j.get("id"), j.get("graph")) {
        (Some(id), None) => {
            let id = id
                .as_u64()
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| bad("query.id must be a u32 graph id"))?;
            Ok(QuerySpec::Id(GraphId(id)))
        }
        (None, Some(g)) => Ok(QuerySpec::Graph(graph_from_json(g)?)),
        _ => Err(bad("query must carry exactly one of \"id\" / \"graph\"")),
    }
}

/// Serializes the request options (everything but the query spec).
pub fn request_to_json(req: &SearchRequest) -> Json {
    let ranker = match req.ranker {
        Ranker::Mapped => Json::Str("mapped".into()),
        Ranker::Exact => Json::Str("exact".into()),
        Ranker::Refined { candidates } => Json::obj([(
            "refined",
            Json::obj([("candidates", Json::U64(candidates as u64))]),
        )]),
        Ranker::Approx { ef, verify } => Json::obj([(
            "approx",
            Json::obj([
                ("ef", Json::U64(ef as u64)),
                ("verify", verify.map_or(Json::Null, |v| Json::U64(v as u64))),
            ]),
        )]),
        // `Ranker` is non-exhaustive: a ranker this crate does not
        // know has no faithful wire form; ship its debug name so the
        // peer rejects it loudly instead of silently re-ranking.
        ref other => Json::Str(format!("{other:?}")),
    };
    let mapping = match req.mapping {
        MappingKind::Weighted => "weighted",
        // Binary, and the on-the-wire default for any future mapping
        // (`MappingKind` is non-exhaustive).
        _ => "binary",
    };
    Json::obj([
        ("k", Json::U64(req.k as u64)),
        ("ranker", ranker),
        ("mapping", Json::Str(mapping.into())),
        ("budget", req.budget.map_or(Json::Null, Json::U64)),
    ])
}

/// Parses request options from the body object; absent keys keep the
/// [`SearchRequest`] defaults.
pub fn request_from_json(j: &Json) -> Result<SearchRequest, WireError> {
    let mut req = SearchRequest::default();
    if let Some(k) = j.get("k") {
        req.k = k
            .as_usize()
            .ok_or_else(|| bad("k must be a non-negative integer"))?;
    }
    if let Some(r) = j.get("ranker") {
        req.ranker = match r {
            Json::Str(s) if s == "mapped" => Ranker::Mapped,
            Json::Str(s) if s == "exact" => Ranker::Exact,
            Json::Obj(_) if r.get("refined").is_some() => {
                let candidates = r
                    .get("refined")
                    .and_then(|r| r.get("candidates"))
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad("ranker.refined.candidates must be an integer"))?;
                Ranker::Refined { candidates }
            }
            Json::Obj(_) if r.get("approx").is_some() => {
                let a = r.get("approx").expect("guarded");
                let ef = a
                    .get("ef")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad("ranker.approx.ef must be an integer"))?;
                let verify =
                    match a.get("verify") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(v.as_usize().ok_or_else(|| {
                            bad("ranker.approx.verify must be an integer or null")
                        })?),
                    };
                Ranker::Approx { ef, verify }
            }
            _ => return Err(bad(
                "ranker must be \"mapped\", \"exact\", {\"refined\": ...}, or {\"approx\": ...}",
            )),
        };
    }
    if let Some(m) = j.get("mapping") {
        req.mapping = match m.as_str() {
            Some("binary") => MappingKind::Binary,
            Some("weighted") => MappingKind::Weighted,
            _ => return Err(bad("mapping must be \"binary\" or \"weighted\"")),
        };
    }
    match j.get("budget") {
        None => {}
        Some(Json::Null) => req.budget = None,
        Some(b) => {
            req.budget = Some(
                b.as_u64()
                    .ok_or_else(|| bad("budget must be an integer or null"))?,
            )
        }
    }
    Ok(req)
}

/// Serializes stats; durations go as integer nanoseconds so they
/// round-trip exactly.
pub fn stats_to_json(s: &SearchStats) -> Json {
    let mut fields = vec![
        ("candidates_scanned", Json::U64(s.candidates_scanned as u64)),
        ("early_abandoned", Json::U64(s.early_abandoned as u64)),
        ("tombstones_skipped", Json::U64(s.tombstones_skipped as u64)),
        ("words_scanned", Json::U64(s.words_scanned as u64)),
        ("epoch", Json::U64(s.epoch)),
        ("live_graphs", Json::U64(s.live_graphs as u64)),
        ("vf2_calls", Json::U64(s.vf2_calls as u64)),
        ("vf2_pruned", Json::U64(s.vf2_pruned as u64)),
        ("mcs_calls", Json::U64(s.mcs_calls as u64)),
        ("match_time_ns", Json::U64(duration_ns(s.match_time))),
        ("wall_time_ns", Json::U64(duration_ns(s.wall_time))),
        (
            "kernel",
            s.kernel
                .map_or(Json::Null, |k| Json::Str(k.name().to_string())),
        ),
        ("fused_batch", Json::Bool(s.fused_batch)),
        ("approximate", Json::Bool(s.approximate)),
        ("ef", Json::U64(s.ef as u64)),
        ("beam_visited", Json::U64(s.beam_visited as u64)),
    ];
    // Stage timings travel as an object of non-zero stages only, and
    // the key is omitted entirely when nothing was timed — older
    // clients never see it, quiet stats stay quiet.
    if !s.stages.is_empty() {
        fields.push((
            "stages",
            Json::Obj(
                s.stages
                    .iter()
                    .map(|(stage, ns)| (stage.name().to_string(), Json::U64(ns)))
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

/// `Duration` → whole nanoseconds, saturating at `u64::MAX` (584
/// years; a wall time cannot reach it).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Parses stats (absent keys default to zero/none, so older servers
/// stay readable if fields are added).
pub fn stats_from_json(j: &Json) -> Result<SearchStats, WireError> {
    let count = |key: &str| -> Result<usize, WireError> {
        match j.get(key) {
            None => Ok(0),
            Some(v) => v
                .as_usize()
                .ok_or_else(|| bad(&format!("stats.{key} must be an integer"))),
        }
    };
    let ns = |key: &str| -> Result<Duration, WireError> {
        match j.get(key) {
            None => Ok(Duration::ZERO),
            Some(v) => v
                .as_u64()
                .map(Duration::from_nanos)
                .ok_or_else(|| bad(&format!("stats.{key} must be integer nanoseconds"))),
        }
    };
    let kernel = match j.get("kernel") {
        None | Some(Json::Null) => None,
        Some(k) => Some(
            k.as_str()
                .and_then(KernelKind::parse)
                .ok_or_else(|| bad("stats.kernel must be a known kernel name or null"))?,
        ),
    };
    Ok(SearchStats {
        candidates_scanned: count("candidates_scanned")?,
        early_abandoned: count("early_abandoned")?,
        tombstones_skipped: count("tombstones_skipped")?,
        words_scanned: count("words_scanned")?,
        epoch: j
            .get("epoch")
            .map_or(Ok(0), |v| v.as_u64().ok_or_else(|| bad("stats.epoch")))?,
        live_graphs: count("live_graphs")?,
        vf2_calls: count("vf2_calls")?,
        vf2_pruned: count("vf2_pruned")?,
        mcs_calls: count("mcs_calls")?,
        match_time: ns("match_time_ns")?,
        wall_time: ns("wall_time_ns")?,
        kernel,
        fused_batch: j.get("fused_batch").map_or(Ok(false), |v| {
            v.as_bool().ok_or_else(|| bad("stats.fused_batch"))
        })?,
        approximate: j.get("approximate").map_or(Ok(false), |v| {
            v.as_bool().ok_or_else(|| bad("stats.approximate"))
        })?,
        ef: count("ef")?,
        beam_visited: count("beam_visited")?,
        stages: stages_from_json(j.get("stages"))?,
    })
}

/// Parses the optional `stages` object. Unknown stage names are
/// skipped (a newer server may time stages this build doesn't know),
/// absence reads as all-zero.
fn stages_from_json(j: Option<&Json>) -> Result<gdim_obs::StageTimes, WireError> {
    let mut stages = gdim_obs::StageTimes::new();
    let Some(j) = j else {
        return Ok(stages);
    };
    let pairs = match j {
        Json::Obj(pairs) => pairs,
        _ => return Err(bad("stats.stages must be an object")),
    };
    for (name, v) in pairs {
        let ns = v
            .as_u64()
            .ok_or_else(|| bad(&format!("stats.stages.{name} must be integer nanoseconds")))?;
        if let Some(stage) = gdim_obs::Stage::parse(name) {
            stages.add_ns(stage, ns);
        }
    }
    Ok(stages)
}

/// Serializes a full response.
pub fn response_to_json(resp: &SearchResponse) -> Json {
    let hits = Json::Arr(
        resp.hits
            .iter()
            .map(|h| {
                Json::obj([
                    ("id", Json::U64(h.id.get() as u64)),
                    ("distance", Json::F64(h.distance)),
                ])
            })
            .collect(),
    );
    Json::obj([("hits", hits), ("stats", stats_to_json(&resp.stats))])
}

/// Parses a full response.
pub fn response_from_json(j: &Json) -> Result<SearchResponse, WireError> {
    let hits = j
        .get("hits")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("response.hits must be an array"))?
        .iter()
        .map(|h| {
            let id = h
                .get("id")
                .and_then(Json::as_u64)
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| bad("hit.id must be a u32"))?;
            let distance = h
                .get("distance")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("hit.distance must be a number"))?;
            Ok(Hit {
                id: GraphId(id),
                distance,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let stats = match j.get("stats") {
        None => SearchStats::default(),
        Some(s) => stats_from_json(s)?,
    };
    Ok(SearchResponse { hits, stats })
}

/// The wire error body: `{"error": {"code", "message"}}`.
pub fn error_body(code: &str, message: &str) -> Json {
    Json::obj([(
        "error",
        Json::obj([
            ("code", Json::Str(code.to_string())),
            ("message", Json::Str(message.to_string())),
        ]),
    )])
}

/// The HTTP status a [`GdimError`] answers with: caller faults are
/// 4xx (404 for addressing a graph that does not exist, 409 for a
/// rebuild race, 400 otherwise), server faults 500. Pinned by a unit
/// test below — changing a mapping is a wire-contract change.
pub fn gdim_error_status(e: &GdimError) -> u16 {
    match e {
        GdimError::GraphOutOfRange { .. } => 404,
        GdimError::StaleRebuild { .. } => 409,
        _ if e.is_caller_fault() => 400,
        _ => 500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn chem(n: usize, seed: u64) -> Vec<Graph> {
        gdim_datagen::chem_db(n, &gdim_datagen::ChemConfig::default(), seed)
    }

    #[test]
    fn graphs_round_trip_exactly() {
        for g in chem(8, 11) {
            let j = graph_to_json(&g);
            let back = graph_from_json(&parse(&j.to_string_compact()).unwrap()).unwrap();
            assert_eq!(back.vlabels(), g.vlabels());
            assert_eq!(back.edges(), g.edges());
        }
    }

    #[test]
    fn malformed_graphs_are_rejected() {
        for bad_graph in [
            "{}",
            "{\"v\": [0], \"e\": [[0, 5, 0]]}", // endpoint out of range
            "{\"v\": [0, 1], \"e\": [[0, 1]]}", // not a triple
            "{\"v\": [0, 1], \"e\": [[0, 0, 1]]}", // self loop
            "{\"v\": \"x\", \"e\": []}",        // labels not an array
            "{\"v\": [0, 1], \"e\": [[0, 1, 1], [1, 0, 2]]}", // duplicate edge
        ] {
            let j = parse(bad_graph).unwrap();
            assert!(graph_from_json(&j).is_err(), "{bad_graph}");
        }
    }

    #[test]
    fn requests_round_trip_and_default() {
        let reqs = [
            SearchRequest::default(),
            SearchRequest::topk(0),
            SearchRequest::topk(7)
                .with_ranker(Ranker::Exact)
                .with_mapping(MappingKind::Weighted)
                .with_budget(12345),
            SearchRequest::topk(3).with_ranker(Ranker::Refined { candidates: 9 }),
            SearchRequest::new(8).ranker(Ranker::Approx {
                ef: 64,
                verify: None,
            }),
            SearchRequest::new(5)
                .ranker(Ranker::Approx {
                    ef: 128,
                    verify: Some(40),
                })
                .mapping(MappingKind::Weighted),
        ];
        for req in reqs {
            let j = parse(&request_to_json(&req).to_string_compact()).unwrap();
            assert_eq!(request_from_json(&j).unwrap(), req);
        }
        // An empty object is a complete request: all defaults.
        let empty = parse("{}").unwrap();
        assert_eq!(request_from_json(&empty).unwrap(), SearchRequest::default());
    }

    #[test]
    fn query_specs_round_trip_and_reject_ambiguity() {
        let byid = QuerySpec::Id(GraphId(42));
        let j = parse(&query_to_json(&byid).to_string_compact()).unwrap();
        assert_eq!(query_from_json(&j).unwrap(), byid);
        let g = chem(1, 3).pop().unwrap();
        let inline = QuerySpec::Graph(g);
        let j = parse(&query_to_json(&inline).to_string_compact()).unwrap();
        match (query_from_json(&j).unwrap(), inline) {
            (QuerySpec::Graph(a), QuerySpec::Graph(b)) => {
                assert_eq!(a.vlabels(), b.vlabels());
                assert_eq!(a.edges(), b.edges());
            }
            other => panic!("wrong spec kind: {other:?}"),
        }
        for ambiguous in ["{}", "{\"id\": 1, \"graph\": {\"v\": [], \"e\": []}}"] {
            assert!(query_from_json(&parse(ambiguous).unwrap()).is_err());
        }
    }

    #[test]
    fn responses_round_trip_bit_faithfully() {
        let resp = SearchResponse {
            hits: vec![
                Hit {
                    id: GraphId(0),
                    distance: 0.0,
                },
                Hit {
                    id: GraphId(9),
                    distance: 1.0 / 3.0,
                },
                Hit {
                    id: GraphId(7),
                    distance: f64::from_bits(0x3FD5555555555557),
                },
            ],
            stats: SearchStats {
                candidates_scanned: 90,
                early_abandoned: 4,
                tombstones_skipped: 6,
                words_scanned: 360,
                epoch: 3,
                live_graphs: 94,
                vf2_calls: 11,
                vf2_pruned: 13,
                mcs_calls: 2,
                match_time: Duration::from_nanos(123_456_789),
                wall_time: Duration::from_nanos(987_654_321),
                kernel: Some(KernelKind::Unrolled),
                fused_batch: true,
                approximate: true,
                ef: 64,
                beam_visited: 512,
                stages: {
                    let mut s = gdim_obs::StageTimes::new();
                    s.add_ns(gdim_obs::Stage::AnnBeam, 700_000);
                    s.add_ns(gdim_obs::Stage::Refine, 41);
                    s
                },
            },
        };
        let wire = response_to_json(&resp).to_string_compact();
        let back = response_from_json(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back.hits.len(), resp.hits.len());
        for (a, b) in back.hits.iter().zip(&resp.hits) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "bit-faithful");
        }
        let (s, t) = (&back.stats, &resp.stats);
        assert_eq!(
            (
                s.candidates_scanned,
                s.early_abandoned,
                s.tombstones_skipped,
                s.words_scanned
            ),
            (
                t.candidates_scanned,
                t.early_abandoned,
                t.tombstones_skipped,
                t.words_scanned
            )
        );
        assert_eq!(
            (
                s.epoch,
                s.live_graphs,
                s.vf2_calls,
                s.vf2_pruned,
                s.mcs_calls
            ),
            (
                t.epoch,
                t.live_graphs,
                t.vf2_calls,
                t.vf2_pruned,
                t.mcs_calls
            )
        );
        assert_eq!(s.match_time, t.match_time);
        assert_eq!(s.wall_time, t.wall_time);
        assert_eq!(s.kernel, t.kernel);
        assert_eq!(s.fused_batch, t.fused_batch);
        assert_eq!(
            (s.approximate, s.ef, s.beam_visited),
            (t.approximate, t.ef, t.beam_visited)
        );
        assert_eq!(s.stages, t.stages, "stage timings round-trip exactly");
        assert!(wire.contains("\"stages\":{\"ann_beam\":700000,\"refine\":41}"));
    }

    /// An old client predating the approximate tier speaks the same
    /// protocol: its requests carry no `approx` spelling and its
    /// response parser may drop the new stats keys — both sides must
    /// keep working (the wire contract is additive-only).
    #[test]
    fn old_client_payloads_still_parse() {
        // A request exactly as a pre-ANN client would send it.
        let old_req = "{\"k\": 7, \"ranker\": {\"refined\": {\"candidates\": 12}}, \
             \"mapping\": \"weighted\", \"budget\": 900}";
        let req = request_from_json(&parse(old_req).unwrap()).unwrap();
        assert_eq!(
            req,
            SearchRequest::new(7)
                .ranker(Ranker::Refined { candidates: 12 })
                .mapping(MappingKind::Weighted)
                .budget(900)
        );
        // A response as an old server would emit it: no approximate /
        // ef / beam_visited keys. They default off.
        let old_resp = "{\"hits\": [{\"id\": 3, \"distance\": 0.25}], \
             \"stats\": {\"candidates_scanned\": 4, \"mcs_calls\": 1}}";
        let resp = response_from_json(&parse(old_resp).unwrap()).unwrap();
        assert!(!resp.stats.approximate);
        assert_eq!(resp.stats.ef, 0);
        assert_eq!(resp.stats.beam_visited, 0);
        assert_eq!(resp.hits.len(), 1);
    }

    #[test]
    fn gdim_error_statuses_are_pinned() {
        use std::io;
        let table: [(GdimError, u16); 11] = [
            (GdimError::GraphOutOfRange { id: 1, len: 0 }, 404),
            (
                GdimError::DimensionOutOfRange {
                    id: 0,
                    num_features: 0,
                },
                400,
            ),
            (
                GdimError::WeightsMismatch {
                    expected: 1,
                    got: 2,
                },
                400,
            ),
            (GdimError::ShardOutOfRange { id: 9, shards: 2 }, 400),
            (GdimError::StaleRebuild { missed: 3 }, 409),
            (GdimError::Io(io::Error::other("x")), 500),
            (GdimError::Corrupt("x".into()), 500),
            (
                GdimError::UnsupportedVersion {
                    found: 9,
                    supported: 2,
                },
                500,
            ),
            // Durability faults indict the server's disk state, never
            // the request.
            (
                GdimError::TornLog {
                    trusted: 8,
                    total: 20,
                    detail: "x".into(),
                },
                500,
            ),
            (
                GdimError::CorruptCheckpoint {
                    generation: 3,
                    detail: "x".into(),
                },
                500,
            ),
            (GdimError::DurablePoisoned { detail: "x".into() }, 500),
        ];
        for (err, status) in table {
            assert_eq!(gdim_error_status(&err), status, "{}", err.code());
        }
    }

    #[test]
    fn error_bodies_carry_code_and_message() {
        let j = error_body("graph_out_of_range", "graph id 9 out of range");
        let e = j.get("error").unwrap();
        assert_eq!(e.get("code").unwrap().as_str(), Some("graph_out_of_range"));
        assert!(e.get("message").unwrap().as_str().unwrap().contains('9'));
    }
}

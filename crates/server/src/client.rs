//! A small blocking HTTP/1.1 client for the gdim wire protocol —
//! keep-alive aware, hand-rolled over `std::net` like everything else
//! here. Shared by the CLI, the integration tests, and the load
//! harness, so they all exercise the same byte-level protocol.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{parse, Json};

/// Default socket read timeout — generous, because exact-ranker
/// searches and sync rebuilds legitimately take a while.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

/// A keep-alive HTTP client pinned to one server address.
///
/// The connection is reused across requests; when the server closed
/// it between requests (keep-alive expiry, server restart), the next
/// request transparently reconnects and retries **once** — only safe
/// here because nothing had been read for that attempt yet.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl Client {
    /// A client for `addr`; resolves the first address and connects
    /// eagerly so misconfiguration fails fast.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let mut c = Client {
            addr,
            stream: None,
            timeout: DEFAULT_TIMEOUT,
        };
        c.reconnect()?;
        Ok(c)
    }

    /// Overrides the read timeout (applies from the next reconnect).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self.stream = None;
        self
    }

    /// The server address this client is pinned to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn reconnect(&mut self) -> io::Result<&mut TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        self.stream = Some(stream);
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// `GET path` → `(status, parsed JSON body)`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, Json)> {
        self.request("GET", path, None)
    }

    /// `GET path` → `(status, raw body text)` — no JSON parse, for
    /// non-JSON endpoints like `/metrics` (Prometheus text).
    pub fn get_text(&mut self, path: &str) -> io::Result<(u16, String)> {
        let reused = self.stream.is_some();
        match self.try_request_text("GET", path, None) {
            Ok(reply) => Ok(reply),
            Err(_) if reused => {
                self.stream = None;
                self.try_request_text("GET", path, None)
            }
            Err(e) => Err(e),
        }
    }

    /// `POST path` with a JSON body → `(status, parsed JSON body)`.
    /// `Json::Null` sends an empty body.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        let payload = match body {
            Json::Null => String::new(),
            other => other.to_string_compact(),
        };
        self.request("POST", path, Some(&payload))
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, Json)> {
        let reused = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(reply) => Ok(reply),
            // A dead keep-alive connection surfaces as an I/O error
            // before any response bytes arrive; retry once on a fresh
            // connection. A fresh-connection failure is real.
            Err(_) if reused => {
                self.stream = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, Json)> {
        let (status, payload) = self.try_request_text(method, path, body)?;
        let json = parse(&payload).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response JSON: {e}"),
            )
        })?;
        Ok((status, json))
    }

    fn try_request_text(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let addr = self.addr;
        let stream = match self.stream.as_mut() {
            Some(s) => s,
            None => self.reconnect()?,
        };
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        let (status, keep_alive, payload) = read_response(stream)?;
        if !keep_alive {
            self.stream = None;
        }
        Ok((status, payload))
    }
}

/// Reads one HTTP response: `(status, keep_alive, body)`. Bodies must
/// be `Content-Length` sized — which the gdim server guarantees.
fn read_response(stream: &mut TcpStream) -> io::Result<(u16, bool, String)> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8 * 1024];
    // Read until the head terminator.
    let head_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    // "HTTP/1.1 200 OK" — the middle token is the status.
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok((status, keep_alive, body))
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

//! A hand-rolled JSON value model, serializer, and parser — the wire
//! encoding of the serving layer, with **no serde** (every dependency
//! in this workspace is vendored; a JSON crate would be the first
//! external one).
//!
//! Design constraints, in order:
//!
//! 1. **Bit-faithful numbers.** Served distances are `f64`s that must
//!    round-trip exactly (the protocol's bit-identity contract). Rust's
//!    `{}` formatting emits the shortest decimal that parses back to
//!    the same bits, and `str::parse::<f64>` is correctly rounded, so
//!    serialize-then-parse is the identity on finite floats. Integers
//!    keep their own variants ([`Json::U64`] / [`Json::I64`]) so `u64`
//!    counters (epochs, nanosecond timestamps) never squeeze through
//!    an `f64` and lose low bits.
//! 2. **Bounded parsing.** The parser enforces a nesting-depth cap, so
//!    a hostile request cannot trigger unbounded recursion; byte-size
//!    caps live one layer down, in the HTTP body limits.
//! 3. **Deterministic output.** Objects preserve insertion order
//!    (`Vec` of pairs, not a hash map), so equal values serialize to
//!    equal bytes — which lets tests compare wire strings directly.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any real
/// request (ours nest 4–5 levels), shallow enough that recursion can
/// never approach the stack limit.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`/`e`, no sign).
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// Any other number literal (fractional, exponent, or out of
    /// integer range), plus negative zero.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order, lookups are linear
    /// (wire objects have a handful of keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float: accepts any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(u) => Some(u as f64),
            Json::I64(i) => Some(i as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a `u64`: integer literals only (a fractional
    /// number is not silently truncated).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(u) => Some(u),
            Json::I64(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes to a compact string (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(u) => {
                let mut buf = itoa_buffer();
                out.push_str(write_u64(*u, &mut buf));
            }
            Json::I64(i) => {
                out.push_str(&i.to_string());
            }
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn itoa_buffer() -> [u8; 20] {
    [0u8; 20]
}

/// Formats a `u64` into a stack buffer (the hot path of stats
/// serialization; avoids a heap `String` per counter).
fn write_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    std::str::from_utf8(&buf[at..]).expect("ascii digits")
}

/// Writes a float with Rust's shortest-round-trip formatting. JSON has
/// no NaN/Infinity literal; non-finite values serialize as `null`
/// (served distances are finite by construction — √(h/p) of
/// non-negative finite inputs — so this path is a safety net, not a
/// code path requests exercise).
fn write_f64(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null");
    } else {
        // Integral floats print without a fraction ("3", "-3", "-0")
        // and re-parse as integer variants (negative zero excepted —
        // the parser keeps its sign as F64); `as_f64` reads every
        // numeric variant identically, so values stay bit-faithful.
        let _ = write!(out, "{x}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.at += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.at += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.at += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 advanced past the digits; skip the
                            // generic advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).expect("input is valid utf-8");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.at..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.at = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !fractional {
            if let Some(digits) = text.strip_prefix('-') {
                // "-0" keeps the sign as an f64 so negative zero
                // round-trips bit-faithfully.
                if digits.chars().all(|c| c == '0') {
                    return Ok(Json::F64(-0.0));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            offset: start,
            message: "malformed number".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        parse(&v.to_string_compact()).expect("round trip parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::I64(i64::MIN),
            Json::F64(0.25),
            Json::F64(1.0 / 3.0),
            Json::Str("hello \"world\"\n\t\\ λ €".to_string()),
            Json::Str(String::new()),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn floats_round_trip_bit_faithfully() {
        for bits in [
            0x3FD5555555555555u64, // 1/3
            0x3FF0000000000001,    // 1 + ulp
            0x0000000000000001,    // smallest subnormal
            0x7FEFFFFFFFFFFFFF,    // f64::MAX
            0x8000000000000000,    // -0.0
            0x4049_0FDB_5444_2D18, // ~pi * 10ish, arbitrary
        ] {
            let x = f64::from_bits(bits);
            let back = round_trip(&Json::F64(x));
            let got = match back {
                Json::F64(y) => y,
                Json::U64(u) => u as f64,
                Json::I64(i) => i as f64,
                other => panic!("non-numeric round trip: {other:?}"),
            };
            assert_eq!(got.to_bits(), x.to_bits(), "bits 0x{bits:016x}");
        }
    }

    #[test]
    fn integral_floats_may_come_back_as_integers_with_equal_value() {
        // 3.0 serializes as "3" (shortest form); the parser reads it
        // as U64(3). as_f64 recovers the identical value.
        let v = round_trip(&Json::F64(3.0));
        assert_eq!(v.as_f64(), Some(3.0));
        assert_eq!(v.as_f64().unwrap().to_bits(), 3.0f64.to_bits());
        let neg = round_trip(&Json::F64(-3.0));
        assert_eq!(neg.as_f64().unwrap().to_bits(), (-3.0f64).to_bits());
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let v = Json::obj([
            (
                "zeta",
                Json::Arr(vec![Json::U64(1), Json::Null, Json::Bool(false)]),
            ),
            ("alpha", Json::obj([("nested", Json::Str("x".into()))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
        // Key order is preserved, so equal values have equal bytes.
        let s = v.to_string_compact();
        assert!(s.find("zeta").unwrap() < s.find("alpha").unwrap());
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("Aé😀")
        );
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "\"bad \\q escape\"",
            "nul",
            "-",
            "\"\\ud800\"", // lone high surrogate
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = parse("{\"n\": 3, \"x\": 2.5, \"s\": \"hi\", \"b\": true}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("x").unwrap().as_u64(), None, "no silent truncation");
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string_compact(), "null");
    }
}

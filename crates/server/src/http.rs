//! A small, incremental HTTP/1.1 **request** parser and response
//! writer — just enough protocol for the serving layer, hand-rolled
//! over `std` so the workspace stays dependency-free.
//!
//! Scope (deliberately narrow, like the exemplar embedded servers):
//!
//! * methods `GET` / `POST`; request bodies sized by `Content-Length`
//!   only (no chunked transfer coding — a typed error, not a hang);
//! * `HTTP/1.1` keep-alive semantics (1.1 persists by default, 1.0
//!   closes by default, `Connection:` header overrides either way);
//! * **bounded everything**: the request head (request line + headers)
//!   and the body each have hard byte caps, so a hostile or broken
//!   peer cannot balloon memory; overflow is a typed error the server
//!   answers with the right 4xx before closing;
//! * incremental feeding: [`HeadParser`] consumes bytes as they arrive
//!   and says how many it used, so a read loop can hand it arbitrary
//!   chunk boundaries (including one byte at a time — pinned by test).

use std::fmt;

/// Hard cap on the request head (request line + all headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body; configurable per server.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// The request methods the server routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET` — read-only endpoints (`/health`, `/stats`).
    Get,
    /// `POST` — everything that carries a JSON body.
    Post,
}

impl Method {
    /// The canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// A parsed request head: everything before the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// The request method.
    pub method: Method,
    /// The request target (path only; any `?query` is kept verbatim).
    pub path: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header name/value pairs, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Parsed `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the connection should persist after this exchange
    /// (version default, overridden by a `Connection:` header).
    pub keep_alive: bool,
}

impl RequestHead {
    /// First header value with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Typed parse failures. Each maps to one HTTP status
/// ([`HttpError::status`]), so the server can answer precisely before
/// closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A method this server does not implement.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// A header line without a `:` or with an empty name.
    BadHeader,
    /// A `Content-Length` that is not a decimal integer (or conflicts
    /// with a repeated one).
    BadContentLength,
    /// `Transfer-Encoding` present — bodies must be `Content-Length`
    /// sized here.
    UnsupportedTransferEncoding,
    /// The request head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeds the server's body cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
    /// The peer closed mid-request (a torn head or short body).
    Torn,
}

impl HttpError {
    /// The HTTP status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine
            | HttpError::BadHeader
            | HttpError::BadContentLength
            | HttpError::Torn => 400,
            HttpError::UnsupportedMethod(_) => 405,
            HttpError::UnsupportedVersion(_) => 505,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge { .. } => 413,
        }
    }

    /// A stable machine-readable code for the wire error body (the
    /// protocol-level sibling of `GdimError::code`).
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::BadRequestLine => "bad_request_line",
            HttpError::UnsupportedMethod(_) => "method_not_allowed",
            HttpError::UnsupportedVersion(_) => "http_version_not_supported",
            HttpError::BadHeader => "bad_header",
            HttpError::BadContentLength => "bad_content_length",
            HttpError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            HttpError::HeadTooLarge => "head_too_large",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::Torn => "torn_request",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::BadContentLength => write!(f, "malformed content-length"),
            HttpError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "transfer-encoding is not supported; size bodies with content-length"
                )
            }
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            HttpError::Torn => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Incremental request-head parser: feed it bytes as they arrive until
/// it yields a [`RequestHead`].
///
/// The parser buffers at most [`MAX_HEAD_BYTES`]; the head is complete
/// at the first empty line (`\r\n\r\n`, with a lone-`\n` tolerance).
/// [`HeadParser::feed`] reports how many of the offered bytes it
/// consumed — bytes past the head boundary are left for the caller,
/// which is what lets a read loop hand over raw socket chunks without
/// caring where requests end.
#[derive(Debug, Default)]
pub struct HeadParser {
    buf: Vec<u8>,
}

impl HeadParser {
    /// A fresh parser (one per request).
    pub fn new() -> Self {
        HeadParser::default()
    }

    /// Offers `bytes`; returns the number consumed, plus the parsed
    /// head once the terminating empty line has been seen.
    ///
    /// After `Ok((_, Some(head)))` the parser is exhausted — make a new
    /// one for the next request on the connection.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(usize, Option<RequestHead>), HttpError> {
        // Find the head terminator across the old/new byte boundary.
        // Scanning restarts at most 3 bytes back, so feeding the head
        // one byte at a time stays linear.
        let scan_from = self.buf.len().saturating_sub(3);
        let mut take = bytes.len();
        let mut complete = false;
        {
            // Look for "\r\n\r\n" in buf + bytes without concatenating.
            let total = self.buf.len() + bytes.len();
            let at = |i: usize| -> u8 {
                if i < self.buf.len() {
                    self.buf[i]
                } else {
                    bytes[i - self.buf.len()]
                }
            };
            let mut i = scan_from;
            while i + 3 < total {
                if at(i) == b'\r' && at(i + 1) == b'\n' && at(i + 2) == b'\r' && at(i + 3) == b'\n'
                {
                    take = i + 4 - self.buf.len();
                    complete = true;
                    break;
                }
                i += 1;
            }
        }
        if self.buf.len() + take > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        self.buf.extend_from_slice(&bytes[..take]);
        if !complete {
            return Ok((take, None));
        }
        let head = self.parse_complete()?;
        Ok((take, Some(head)))
    }

    fn parse_complete(&self) -> Result<RequestHead, HttpError> {
        let text = std::str::from_utf8(&self.buf).map_err(|_| HttpError::BadHeader)?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => return Err(HttpError::BadRequestLine),
            };
        let method = match method {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => return Err(HttpError::UnsupportedMethod(other.to_string())),
        };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => return Err(HttpError::UnsupportedVersion(other.to_string())),
        };
        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        let mut keep_alive = http11;
        for line in lines {
            if line.is_empty() {
                break; // the terminating empty line
            }
            let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name.is_empty() {
                return Err(HttpError::BadHeader);
            }
            match name.as_str() {
                "content-length" => {
                    let parsed: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
                    // Repeated, conflicting lengths are request smuggling
                    // bait; repeated identical ones are tolerated.
                    if content_length.is_some_and(|prev| prev != parsed) {
                        return Err(HttpError::BadContentLength);
                    }
                    content_length = Some(parsed);
                }
                "transfer-encoding" if !value.eq_ignore_ascii_case("identity") => {
                    return Err(HttpError::UnsupportedTransferEncoding);
                }
                "connection" => {
                    // Token list; "close" / "keep-alive" decide.
                    for token in value.split(',') {
                        let token = token.trim();
                        if token.eq_ignore_ascii_case("close") {
                            keep_alive = false;
                        } else if token.eq_ignore_ascii_case("keep-alive") {
                            keep_alive = true;
                        }
                    }
                }
                _ => {}
            }
            headers.push((name, value));
        }
        Ok(RequestHead {
            method,
            path: target.to_string(),
            http11,
            headers,
            content_length: content_length.unwrap_or(0),
            keep_alive,
        })
    }
}

/// The reason phrases of the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes one response: status line, `Content-Type:
/// application/json`, explicit `Content-Length`, and a `Connection`
/// header matching `keep_alive`.
pub fn response_bytes(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    response_bytes_with(status, "application/json", body, keep_alive, &[])
}

/// [`response_bytes`] with an explicit content type and extra headers
/// — what `GET /metrics` (text exposition) and the request-id echo
/// need. Header names/values are emitted verbatim; callers must keep
/// them free of CR/LF.
pub fn response_bytes_with(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        connection
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<(usize, Option<RequestHead>), HttpError> {
        HeadParser::new().feed(bytes)
    }

    #[test]
    fn parses_a_complete_head_and_reports_consumption() {
        let raw = b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let (used, head) = parse_all(raw).unwrap();
        let head = head.expect("complete head");
        assert_eq!(used, raw.len() - 5, "body bytes are left to the caller");
        assert_eq!(head.method, Method::Post);
        assert_eq!(head.path, "/search");
        assert!(head.http11);
        assert_eq!(head.content_length, 5);
        assert!(head.keep_alive, "1.1 persists by default");
        assert_eq!(head.header("host"), Some("x"));
        assert_eq!(head.header("HOST"), Some("x"), "lookup is case-insensitive");
    }

    #[test]
    fn byte_at_a_time_feeding_matches_one_shot() {
        let raw = b"GET /stats HTTP/1.1\r\nA: 1\r\nB: two words\r\n\r\n";
        let (_, expect) = parse_all(raw).unwrap();
        let mut p = HeadParser::new();
        let mut head = None;
        for (i, b) in raw.iter().enumerate() {
            let (used, done) = p.feed(std::slice::from_ref(b)).unwrap();
            assert_eq!(used, 1, "byte {i} consumed");
            if let Some(h) = done {
                head = Some(h);
                assert_eq!(i, raw.len() - 1, "completes exactly at the final byte");
            }
        }
        assert_eq!(Some(expect.unwrap()), head);
    }

    #[test]
    fn split_feeding_across_the_terminator_consumes_exactly_the_head() {
        let raw = b"GET / HTTP/1.1\r\n\r\nEXTRA";
        let mut p = HeadParser::new();
        let (used1, none) = p.feed(&raw[..10]).unwrap();
        assert_eq!((used1, none.is_none()), (10, true));
        let (used2, head) = p.feed(&raw[10..]).unwrap();
        assert!(head.is_some());
        assert_eq!(used1 + used2, raw.len() - 5, "EXTRA stays unconsumed");
    }

    #[test]
    fn connection_and_version_semantics() {
        let (_, h) = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!h.unwrap().keep_alive, "1.0 closes by default");
        let (_, h) = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(h.unwrap().keep_alive);
        let (_, h) = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!h.unwrap().keep_alive);
    }

    #[test]
    fn typed_errors_for_malformed_heads() {
        assert_eq!(
            parse_all(b"BREW /tea HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedMethod("BREW".into())
        );
        assert_eq!(
            parse_all(b"GET / HTTP/2\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedVersion("HTTP/2".into())
        );
        assert_eq!(
            parse_all(b"GET/HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::BadRequestLine
        );
        assert_eq!(
            parse_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err(),
            HttpError::BadHeader
        );
        assert_eq!(
            parse_all(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse_all(b"GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n")
                .unwrap_err(),
            HttpError::BadContentLength
        );
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn the_head_cap_is_enforced_incrementally() {
        let mut p = HeadParser::new();
        let line = b"GET / HTTP/1.1\r\n";
        p.feed(line).unwrap();
        // Keep feeding header bytes until the cap trips — the buffer
        // never exceeds MAX_HEAD_BYTES.
        let filler = vec![b'a'; 4096];
        let mut total = line.len();
        loop {
            match p.feed(&filler) {
                Ok((used, None)) => total += used,
                Ok((_, Some(_))) => panic!("no terminator was ever fed"),
                Err(e) => {
                    assert_eq!(e, HttpError::HeadTooLarge);
                    assert!(total <= MAX_HEAD_BYTES);
                    break;
                }
            }
        }
    }

    #[test]
    fn error_statuses_and_codes_are_pinned() {
        let table: [(HttpError, u16, &str); 9] = [
            (HttpError::BadRequestLine, 400, "bad_request_line"),
            (
                HttpError::UnsupportedMethod("X".into()),
                405,
                "method_not_allowed",
            ),
            (
                HttpError::UnsupportedVersion("HTTP/2".into()),
                505,
                "http_version_not_supported",
            ),
            (HttpError::BadHeader, 400, "bad_header"),
            (HttpError::BadContentLength, 400, "bad_content_length"),
            (
                HttpError::UnsupportedTransferEncoding,
                501,
                "unsupported_transfer_encoding",
            ),
            (HttpError::HeadTooLarge, 431, "head_too_large"),
            (
                HttpError::BodyTooLarge {
                    declared: 9,
                    limit: 1,
                },
                413,
                "body_too_large",
            ),
            (HttpError::Torn, 400, "torn_request"),
        ];
        for (err, status, code) in table {
            assert_eq!(err.status(), status, "{code}");
            assert_eq!(err.code(), code);
        }
    }

    #[test]
    fn response_bytes_carry_length_and_connection() {
        let bytes = response_bytes(200, "{\"ok\":true}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let closed = String::from_utf8(response_bytes(404, "{}", false)).unwrap();
        assert!(closed.contains("connection: close"));
    }
}

//! Per-server observability state: labeled request counters, latency
//! and per-stage histograms, the in-flight gauge, the slow-query ring,
//! and request-id generation — everything `GET /metrics` and the
//! enriched `GET /stats` read from.
//!
//! ## Counter reset semantics
//!
//! Every counter and histogram here is **process-lifetime**: it starts
//! at zero when the server boots and is never reset by rebuilds,
//! checkpoints, or epoch swaps. Scrapers should treat restarts (a
//! counter going backwards) the way Prometheus does — as a new
//! process generation. The `boot` component of request ids changes on
//! every boot for the same reason, so ids from different generations
//! never collide in downstream logs.
//!
//! All hot-path recording is lock-free (relaxed atomics); the only
//! locks are taken at registration time (once, at boot) and on the
//! rare error path where a new `{endpoint, status}` error series first
//! appears.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use gdim_obs::{
    global, Counter, Gauge, Histogram, Registry, RequestRecord, RequestRing, Stage, StageTimes,
    STAGE_COUNT,
};

use crate::json::Json;

/// The endpoint labels, in routing order. Index into this array is the
/// index into every per-endpoint instrument vector; unknown paths land
/// on the final `"other"` slot so scrapes of bogus paths still count.
pub(crate) const ENDPOINTS: [&str; 11] = [
    "health",
    "stats",
    "metrics",
    "search",
    "search_batch",
    "insert",
    "remove",
    "rebuild",
    "checkpoint",
    "shutdown",
    "other",
];

/// Index of the catch-all `"other"` endpoint label.
pub(crate) const EP_OTHER: usize = ENDPOINTS.len() - 1;

/// Maps a request path (`"/search"`) to its [`ENDPOINTS`] index.
pub(crate) fn endpoint_index(path: &str) -> usize {
    let name = path.strip_prefix('/').unwrap_or(path);
    ENDPOINTS
        .iter()
        .position(|e| *e == name)
        .unwrap_or(EP_OTHER)
}

/// One server's observability state. Shared by every worker thread via
/// the connection context; all recording methods take `&self`.
pub(crate) struct ServerMetrics {
    /// The server-local registry rendered first by `GET /metrics`
    /// (the process-wide [`global`] registry is appended after it).
    registry: Registry,
    /// `gdim_requests_total{endpoint=…}`, indexed like [`ENDPOINTS`].
    requests: Vec<Arc<Counter>>,
    /// Per-endpoint error-response tallies for `/stats` (the labeled
    /// per-status breakdown lives in the registry as
    /// `gdim_error_responses_total{endpoint,status}`).
    errors: Vec<AtomicU64>,
    /// `gdim_request_latency_ns{endpoint=…}`, wall time per request.
    latency: Vec<Arc<Histogram>>,
    /// `gdim_stage_ns{stage=…}`, indexed by [`Stage::index`].
    stage_ns: Vec<Arc<Histogram>>,
    /// `gdim_in_flight_requests` — incremented before routing,
    /// decremented after the response bytes are written.
    pub(crate) in_flight: Arc<Gauge>,
    /// `gdim_slow_requests_total` — requests at or over the slow
    /// threshold.
    slow: Arc<Counter>,
    /// `gdim_uptime_ns` — refreshed at scrape time.
    uptime: Arc<Gauge>,
    /// `gdim_index_epoch` / `gdim_live_graphs` /
    /// `gdim_shard_imbalance_milli` — index-shape gauges refreshed at
    /// scrape time from the current snapshot.
    epoch: Arc<Gauge>,
    live: Arc<Gauge>,
    imbalance: Arc<Gauge>,
    /// Recent completed requests; `slowest()` powers the slow-query
    /// log in `/stats`.
    pub(crate) ring: RequestRing,
    /// Server boot instant — the zero point for `uptime_ns`.
    pub(crate) started: Instant,
    /// Per-boot discriminator baked into generated request ids.
    boot: u32,
    /// Monotonic request sequence (id generation + trace sampling).
    seq: AtomicU64,
    /// Slow threshold in ns (`ServerConfig::slow_ms`).
    slow_ns: u64,
    /// Record stage histograms + ring for every Nth request (1 = all).
    sample: u64,
}

impl ServerMetrics {
    /// Builds the full instrument set. Every `{endpoint}` series is
    /// registered eagerly so the first scrape already shows all
    /// families at zero — scrapers never have to special-case a cold
    /// server.
    pub(crate) fn new(slow_ms: u64, ring_capacity: usize, trace_sample: u64) -> ServerMetrics {
        let registry = Registry::new();
        let mut requests = Vec::with_capacity(ENDPOINTS.len());
        let mut errors = Vec::with_capacity(ENDPOINTS.len());
        let mut latency = Vec::with_capacity(ENDPOINTS.len());
        for ep in ENDPOINTS {
            requests.push(registry.counter(
                "gdim_requests_total",
                "Requests handled, by endpoint (process-lifetime, resets on restart)",
                &[("endpoint", ep)],
            ));
            errors.push(AtomicU64::new(0));
            latency.push(registry.histogram(
                "gdim_request_latency_ns",
                "Request wall time from head parse to response write (ns)",
                &[("endpoint", ep)],
            ));
        }
        let mut stage_ns = Vec::with_capacity(STAGE_COUNT);
        for stage in Stage::ALL {
            stage_ns.push(registry.histogram(
                "gdim_stage_ns",
                "Time spent per query pipeline stage (ns)",
                &[("stage", stage.name())],
            ));
        }
        let boot = {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap_or(Duration::ZERO)
                .as_nanos() as u64;
            (nanos ^ (u64::from(std::process::id()) << 32)) as u32
        };
        ServerMetrics {
            requests,
            errors,
            latency,
            stage_ns,
            in_flight: registry.gauge(
                "gdim_in_flight_requests",
                "Requests currently being routed or written",
                &[],
            ),
            slow: registry.counter(
                "gdim_slow_requests_total",
                "Requests at or over the slow-query threshold",
                &[],
            ),
            uptime: registry.gauge("gdim_uptime_ns", "Time since server boot (ns)", &[]),
            epoch: registry.gauge("gdim_index_epoch", "Current index generation", &[]),
            live: registry.gauge("gdim_live_graphs", "Live graphs across all shards", &[]),
            imbalance: registry.gauge(
                "gdim_shard_imbalance_milli",
                "Largest shard over mean shard size, in thousandths (1000 = balanced)",
                &[],
            ),
            registry,
            ring: RequestRing::new(ring_capacity),
            started: Instant::now(),
            boot,
            seq: AtomicU64::new(0),
            slow_ns: slow_ms.saturating_mul(1_000_000),
            sample: trace_sample.max(1),
        }
    }

    /// A fresh request id: `{boot:08x}-{seq:x}`. Unique within a boot,
    /// and the boot component keeps ids from colliding across
    /// restarts.
    pub(crate) fn next_request_id(&self) -> String {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{:x}", self.boot, seq)
    }

    /// Records one completed request: counters + latency always;
    /// stage histograms and the slow-query ring on the sampling
    /// cadence (plus always for slow requests, so the ring never
    /// misses the requests it exists to catch). Returns the record if
    /// the request crossed the slow threshold, so the caller can log
    /// it.
    pub(crate) fn observe(
        &self,
        ep: usize,
        status: u16,
        id: String,
        wall: Duration,
        stages: StageTimes,
        approximate: bool,
    ) -> Option<RequestRecord> {
        let wall_ns = wall.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.requests[ep].inc();
        self.latency[ep].record(wall_ns);
        if status >= 400 {
            self.errors[ep].fetch_add(1, Ordering::Relaxed);
            // Rare path: first sight of an {endpoint, status} pair
            // registers the series (one lock), later hits are a map
            // walk + relaxed add.
            self.registry
                .counter(
                    "gdim_error_responses_total",
                    "Error responses, by endpoint and HTTP status",
                    &[("endpoint", ENDPOINTS[ep]), ("status", &status.to_string())],
                )
                .inc();
        }
        let slow = self.slow_ns > 0 && wall_ns >= self.slow_ns;
        if slow {
            self.slow.inc();
        }
        let seq = self.seq.load(Ordering::Relaxed);
        let sampled = self.sample == 1 || seq.is_multiple_of(self.sample);
        if sampled || slow {
            for (stage, ns) in stages.iter() {
                self.stage_ns[stage.index()].record(ns);
            }
            let record = RequestRecord {
                id,
                endpoint: ENDPOINTS[ep],
                status,
                wall_ns,
                stages,
                approximate,
                seq: 0,
            };
            let slow_copy = slow.then(|| record.clone());
            self.ring.push(record);
            return slow_copy;
        }
        None
    }

    /// Renders the full Prometheus exposition: scrape-time gauges are
    /// refreshed first, then this server's registry, then the
    /// process-wide registry (WAL, checkpoint, shard-scan metrics).
    pub(crate) fn render(&self, epoch: u64, shard_lens: &[usize]) -> String {
        self.refresh_gauges(epoch, shard_lens);
        let mut out = self.registry.render();
        out.push_str(&global().render());
        out
    }

    /// Updates the scrape-time gauges (uptime, index shape).
    fn refresh_gauges(&self, epoch: u64, shard_lens: &[usize]) {
        let uptime = self.started.elapsed().as_nanos().min(i64::MAX as u128) as i64;
        self.uptime.set(uptime);
        self.epoch.set(epoch.min(i64::MAX as u64) as i64);
        let live: usize = shard_lens.iter().sum();
        self.live.set(live.min(i64::MAX as usize) as i64);
        self.imbalance.set(imbalance_milli(shard_lens));
    }

    /// `/stats` view: per-endpoint request/error counts and latency
    /// quantiles for endpoints that saw traffic, plus uptime and the
    /// slow-query log.
    pub(crate) fn stats_json(&self) -> Vec<(&'static str, Json)> {
        let uptime = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut endpoints: Vec<(String, Json)> = Vec::new();
        for (i, name) in ENDPOINTS.iter().enumerate() {
            let total = self.requests[i].get();
            if total == 0 {
                continue;
            }
            let snap = self.latency[i].snapshot();
            endpoints.push((
                (*name).to_string(),
                Json::obj([
                    ("requests", Json::U64(total)),
                    ("errors", Json::U64(self.errors[i].load(Ordering::Relaxed))),
                    ("p50_ns", Json::U64(snap.p50())),
                    ("p90_ns", Json::U64(snap.p90())),
                    ("p99_ns", Json::U64(snap.p99())),
                    ("p999_ns", Json::U64(snap.p999())),
                ]),
            ));
        }
        let slow: Vec<Json> = self
            .ring
            .slowest(8)
            .into_iter()
            .map(|r| request_record_json(&r))
            .collect();
        vec![
            ("uptime_ns", Json::U64(uptime)),
            ("slow_requests", Json::U64(self.slow.get())),
            ("trace_dropped", Json::U64(self.ring.dropped())),
            ("endpoints", Json::Obj(endpoints)),
            ("slow_queries", Json::Arr(slow)),
        ]
    }
}

/// Largest shard over mean shard size, in thousandths. 1000 means
/// perfectly balanced; an empty or all-empty index reads 1000 too
/// (nothing is imbalanced about nothing).
pub(crate) fn imbalance_milli(shard_lens: &[usize]) -> i64 {
    let total: usize = shard_lens.iter().sum();
    if shard_lens.is_empty() || total == 0 {
        return 1000;
    }
    let max = *shard_lens.iter().max().expect("non-empty") as f64;
    let mean = total as f64 / shard_lens.len() as f64;
    (max / mean * 1000.0).round() as i64
}

/// A [`RequestRecord`] as the JSON object `/stats` exposes in
/// `slow_queries`.
pub(crate) fn request_record_json(r: &RequestRecord) -> Json {
    let stages: Vec<(String, Json)> = r
        .stages
        .iter()
        .map(|(s, ns)| (s.name().to_string(), Json::U64(ns)))
        .collect();
    Json::obj([
        ("id", Json::Str(r.id.clone())),
        ("endpoint", Json::Str(r.endpoint.to_string())),
        ("status", Json::U64(u64::from(r.status))),
        ("wall_ns", Json::U64(r.wall_ns)),
        ("approximate", Json::Bool(r.approximate)),
        ("stages", Json::Obj(stages)),
    ])
}

/// The one-line slow-query log format. Kept a pure function so tests
/// can pin the layout the runbook greps for.
pub(crate) fn slow_log_line(r: &RequestRecord) -> String {
    format!(
        "gdim-server: slow request id={} endpoint={} status={} wall_ns={} stages=[{}]",
        r.id, r.endpoint, r.status, r.wall_ns, r.stages
    )
}

/// The one-line 5xx error log format: carries the request id that the
/// client received in `X-Gdim-Request-Id`, so a log line and a client
/// error report are joinable on the id.
pub(crate) fn error_log_line(id: &str, endpoint: &str, status: u16, body: &Json) -> String {
    format!(
        "gdim-server: error id={id} endpoint={endpoint} status={status} body={}",
        body.to_string_compact()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_index_maps_known_paths_and_catches_all() {
        assert_eq!(ENDPOINTS[endpoint_index("/search")], "search");
        assert_eq!(ENDPOINTS[endpoint_index("/metrics")], "metrics");
        assert_eq!(ENDPOINTS[endpoint_index("/nope")], "other");
        assert_eq!(ENDPOINTS[endpoint_index("/")], "other");
    }

    #[test]
    fn observe_counts_and_flags_slow_requests() {
        let m = ServerMetrics::new(1, 8, 1); // slow at 1ms
        let ep = endpoint_index("/search");
        let fast = m.observe(
            ep,
            200,
            m.next_request_id(),
            Duration::from_micros(10),
            StageTimes::new(),
            false,
        );
        assert!(fast.is_none());
        let mut stages = StageTimes::new();
        stages.add(Stage::Scan, Duration::from_millis(2));
        let slow = m.observe(
            ep,
            200,
            m.next_request_id(),
            Duration::from_millis(2),
            stages,
            false,
        );
        let slow = slow.expect("2ms crosses the 1ms threshold");
        assert_eq!(slow.endpoint, "search");
        assert!(slow_log_line(&slow).contains("scan="));
        assert_eq!(m.requests[ep].get(), 2);
        assert_eq!(m.slow.get(), 1);
        assert_eq!(m.ring.slowest(4).len(), 2, "sampled records hit the ring");
    }

    #[test]
    fn error_responses_register_labeled_series() {
        let m = ServerMetrics::new(0, 8, 1); // slow logging off
        let ep = endpoint_index("/insert");
        m.observe(
            ep,
            409,
            m.next_request_id(),
            Duration::from_micros(5),
            StageTimes::new(),
            false,
        );
        assert_eq!(m.errors[ep].load(Ordering::Relaxed), 1);
        let text = m.render(0, &[]);
        assert!(
            text.contains("gdim_error_responses_total{endpoint=\"insert\",status=\"409\"} 1"),
            "missing labeled error series in:\n{text}"
        );
    }

    #[test]
    fn imbalance_is_1000_when_balanced_or_empty() {
        assert_eq!(imbalance_milli(&[]), 1000);
        assert_eq!(imbalance_milli(&[0, 0]), 1000);
        assert_eq!(imbalance_milli(&[5, 5, 5]), 1000);
        assert_eq!(imbalance_milli(&[30, 10, 20]), 1500);
    }

    #[test]
    fn request_ids_are_unique_and_boot_scoped() {
        let m = ServerMetrics::new(0, 8, 1);
        let a = m.next_request_id();
        let b = m.next_request_id();
        assert_ne!(a, b);
        let boot = a.split('-').next().unwrap();
        assert_eq!(boot.len(), 8);
        assert!(b.starts_with(boot));
    }

    #[test]
    fn error_log_line_is_joinable_on_the_id() {
        let body = Json::obj([("error", Json::Str("boom".into()))]);
        let line = error_log_line("cafe0001-2a", "search", 500, &body);
        assert_eq!(
            line,
            "gdim-server: error id=cafe0001-2a endpoint=search status=500 \
             body={\"error\":\"boom\"}"
        );
    }
}
